"""DRAM data-retention failure behavior.

This substrate exists for the retention-based TRNG baselines the paper
compares against (Keller+ [65], Sutar+ [141], Section 8.2): disable
refresh for tens of seconds, read back, and harvest entropy from cells
whose charge decayed past the sensing threshold.

Model: each cell's retention time is log-normally distributed (the
standard empirical finding of retention studies [91, 112] cited by the
paper), halving roughly every 10°C.  Cells decay toward a frozen
"discharge value" set by their true-/anti-cell orientation.  A small
population of variable-retention-time (VRT) cells adds per-trial jitter,
which is where the (slow) entropy of retention TRNGs comes from.
"""

from __future__ import annotations

import numpy as np

from repro.dram.geometry import DeviceGeometry
from repro.dram.variation import DomainTag, VariationField
from repro.noise import NoiseSource

#: Median retention time at the reference temperature, seconds.
MEDIAN_RETENTION_S = 64.0

#: Log10 standard deviation of per-cell retention times.
RETENTION_LOG10_SIGMA = 0.45

#: Retention halves every this many °C above reference.
RETENTION_HALVING_C = 10.0

#: Reference temperature for the retention distribution.
RETENTION_REFERENCE_C = 45.0

#: Fraction of cells with variable retention time (per-trial jitter).
VRT_FRACTION = 0.01

#: Relative per-trial jitter applied to a VRT cell's retention time.
VRT_JITTER_REL = 0.35


class RetentionModel:
    """Per-cell retention times and refresh-pause decay for one device."""

    def __init__(self, geometry: DeviceGeometry, variation: VariationField) -> None:
        self._geometry = geometry
        self._variation = variation

    def retention_times_s(self, bank: int, row: int, cols, temperature_c: float) -> np.ndarray:
        """Nominal per-cell retention time in seconds at ``temperature_c``."""
        z = self._variation.cell_normal(DomainTag.RETENTION, bank, row, cols)
        log10_t = np.log10(MEDIAN_RETENTION_S) + RETENTION_LOG10_SIGMA * z
        temp_shift = (temperature_c - RETENTION_REFERENCE_C) / RETENTION_HALVING_C
        return np.power(10.0, log10_t) / np.power(2.0, temp_shift)

    def discharge_values(self, bank: int, row: int, cols) -> np.ndarray:
        """Value each cell decays toward (true-cell → 0, anti-cell → 1)."""
        u = self._variation.cell_uniform(DomainTag.CELL_POLARITY, bank, row, cols)
        return (u < 0.5).astype(np.uint8)

    def is_vrt_cell(self, bank: int, row: int, cols) -> np.ndarray:
        """Mask of variable-retention-time cells."""
        u = self._variation.cell_uniform(DomainTag.RETENTION_VRT, bank, row, cols)
        return u < VRT_FRACTION

    def decay_row(
        self,
        bank: int,
        row: int,
        stored_bits: np.ndarray,
        pause_s: float,
        temperature_c: float,
        noise: NoiseSource,
    ) -> np.ndarray:
        """Row contents after ``pause_s`` seconds without refresh.

        Cells whose (jittered, for VRT cells) retention time elapsed flip
        to their discharge value; others keep their stored bits.
        """
        if pause_s < 0:
            raise ValueError(f"pause_s must be non-negative, got {pause_s}")
        stored_bits = np.asarray(stored_bits, dtype=np.uint8)
        cols = np.arange(self._geometry.cols_per_row)
        retention = self.retention_times_s(bank, row, cols, temperature_c)
        vrt = self.is_vrt_cell(bank, row, cols)
        if vrt.any():
            jitter = 1.0 + noise.gaussian(int(vrt.sum()), VRT_JITTER_REL)
            retention = retention.copy()
            retention[vrt] = retention[vrt] * np.maximum(jitter, 0.05)
        decayed = retention < pause_s
        discharge = self.discharge_values(bank, row, cols)
        return np.where(decayed, discharge, stored_bits).astype(np.uint8)
