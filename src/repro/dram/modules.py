"""Declarative catalog of named DRAM parts and their speedgrades.

The paper's population study spans 282 LPDDR4 chips plus 4 DDR3 chips
across three manufacturers (Section 5); this module is the catalog that
lets the simulator instantiate that kind of fleet from *data* instead of
two hardcoded presets.  The idiom follows litedram/misoc's
``SDRAMModule`` subclasses: each part declares its timings in
**nanoseconds** plus geometry/density metadata, and a speedgrade (clock
bin) quantizes those nanoseconds into whole command-clock cycles via
``ceil(t_ns / clk_period)`` with JEDEC ``max(cycles, floor)`` guards.

Derivation contract
-------------------
:meth:`DramModule.timing_parameters` produces the existing
:class:`~repro.dram.timing.TimingParameters` — the only timing currency
the device model, memory controller and backends speak — so catalog
parts slot into every layer with **zero behavior change**.  The two
legacy presets are reproduced exactly: ``get_module("LPDDR4")
.timing_parameters("3200") == LPDDR4_3200`` and ``get_module("DDR3")
.timing_parameters("1600") == DDR3_1600`` hold field-for-field (pinned
by tests, including seeded bit-identity of ``generate_fast`` output).

Cycle floors are applied in the nanosecond domain: when
``floor_cycles`` at the derivation clock exceeds the declared
nanoseconds, the parameter is raised to ``cycles_to_ns(floor, clock)``
so that :meth:`TimingParameters.cycles` lands exactly on the floor.
That keeps ``TimingParameters`` the single source of truth — no second
quantization path exists.

Part values are calibration-grade: representative of public JEDEC bins
and vendor datasheets, not copied from any one sheet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.dram.geometry import DeviceGeometry
from repro.dram.timing import (
    DDR3_1600,
    DDR4_2400,
    LPDDR4_3200,
    TimingParameters,
)
from repro.errors import ConfigurationError, UnknownModuleError
from repro.units import cycles_to_ns, ns_to_cycles

__all__ = [
    "FAMILIES",
    "MODULES",
    "DramModule",
    "SpeedGrade",
    "catalog_markdown",
    "get_module",
    "list_modules",
    "resolve_timings",
]

#: DRAM families the catalog models, in display order.
FAMILIES: Tuple[str, ...] = ("DDR3", "DDR4", "LPDDR4", "LPDDR4X")

#: The ns-denominated fields a module declares (mirrors
#: :class:`~repro.dram.timing.TimingParameters` sans the optional
#: bank-group long variants, handled separately).
_NS_FIELDS: Tuple[str, ...] = (
    "trcd_ns",
    "tras_ns",
    "trp_ns",
    "tcl_ns",
    "tcwl_ns",
    "tccd_ns",
    "trtp_ns",
    "twr_ns",
    "twtr_ns",
    "trrd_ns",
    "tfaw_ns",
    "trefi_ns",
    "trfc_ns",
)

#: Optional ns fields (present only on bank-grouped families).
_OPTIONAL_NS_FIELDS: Tuple[str, ...] = ("tccd_l_ns", "trrd_l_ns")


@dataclass(frozen=True)
class SpeedGrade:
    """One clock bin of a part: the rated clock plus ns overrides.

    ``label`` is the data-rate suffix of the bin (``"3200"`` in
    ``MT53E512M32-3200``).  ``overrides`` are ``(field, ns)`` pairs
    replacing the module's base (rated-bin) nanoseconds — slower bins
    carry *looser* latencies, so overrides are only ever upward, which
    is what keeps per-speedgrade cycle counts monotone.
    """

    label: str
    clock_mhz: float
    data_rate_mtps: float
    overrides: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("speedgrade label must be non-empty")
        if self.clock_mhz <= 0 or self.data_rate_mtps <= 0:
            raise ConfigurationError(
                f"speedgrade {self.label}: clock_mhz and data_rate_mtps "
                f"must be positive"
            )
        known = set(_NS_FIELDS) | set(_OPTIONAL_NS_FIELDS)
        for name, value in self.overrides:
            if name not in known:
                raise ConfigurationError(
                    f"speedgrade {self.label}: unknown timing field {name!r}"
                )
            if value <= 0:
                raise ConfigurationError(
                    f"speedgrade {self.label}: {name} must be positive, "
                    f"got {value}"
                )


@dataclass(frozen=True)
class DramModule:
    """One named DRAM part: ns timings, geometry and its speedgrades.

    Timings are declared at the *rated* (fastest) bin; slower bins
    loosen individual fields through their
    :attr:`SpeedGrade.overrides`.  ``cycle_floors`` are ``(field,
    min_cycles)`` JEDEC guards — e.g. tCCD is "max(4 nCK, 5 ns)" on
    DDR3 — enforced at whatever clock the timings are derived for.
    """

    name: str
    family: str
    density_mbit: int
    banks: int
    rows_per_bank: int
    cols_per_row: int
    burst_length: int
    trcd_ns: float
    tras_ns: float
    trp_ns: float
    tcl_ns: float
    tcwl_ns: float
    tccd_ns: float
    trtp_ns: float
    twr_ns: float
    twtr_ns: float
    trrd_ns: float
    tfaw_ns: float
    trefi_ns: float
    trfc_ns: float
    tccd_l_ns: Optional[float] = None
    trrd_l_ns: Optional[float] = None
    bank_groups: int = 1
    word_bits: int = 512
    cycle_floors: Tuple[Tuple[str, int], ...] = ()
    speedgrades: Tuple[SpeedGrade, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ConfigurationError(
                f"{self.name}: family must be one of {FAMILIES}, "
                f"got {self.family!r}"
            )
        if self.density_mbit <= 0:
            raise ConfigurationError(
                f"{self.name}: density_mbit must be positive"
            )
        if not self.speedgrades:
            raise ConfigurationError(
                f"{self.name}: a part needs at least one speedgrade"
            )
        labels = [grade.label for grade in self.speedgrades]
        if len(labels) != len(set(labels)):
            raise ConfigurationError(
                f"{self.name}: duplicate speedgrade labels {labels}"
            )
        known = set(_NS_FIELDS) | set(_OPTIONAL_NS_FIELDS)
        for field_name, floor in self.cycle_floors:
            if field_name not in known:
                raise ConfigurationError(
                    f"{self.name}: unknown cycle-floor field {field_name!r}"
                )
            if floor <= 0:
                raise ConfigurationError(
                    f"{self.name}: cycle floor for {field_name} must be "
                    f"positive, got {floor}"
                )
        for grade in self.speedgrades:
            for field_name, _ in grade.overrides:
                if (
                    field_name in _OPTIONAL_NS_FIELDS
                    and getattr(self, field_name) is None
                ):
                    raise ConfigurationError(
                        f"{self.name}: grade {grade.label} overrides "
                        f"{field_name} but the part does not declare it"
                    )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def rated_grade(self) -> SpeedGrade:
        """The fastest bin the part is sold at (highest data rate)."""
        return max(self.speedgrades, key=lambda grade: grade.data_rate_mtps)

    @property
    def grade_labels(self) -> Tuple[str, ...]:
        """Labels of every bin, slowest to fastest."""
        ordered = sorted(self.speedgrades, key=lambda g: g.data_rate_mtps)
        return tuple(grade.label for grade in ordered)

    def grade(self, label: Optional[str] = None) -> SpeedGrade:
        """The bin named ``label`` (default: the rated bin)."""
        if label is None:
            return self.rated_grade
        for grade in self.speedgrades:
            if grade.label == label:
                return grade
        raise UnknownModuleError(
            f"{self.name}-{label}",
            tuple(f"{self.name}-{g.label}" for g in self.speedgrades),
        )

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def grade_ns(self, grade: SpeedGrade) -> Dict[str, float]:
        """The part's ns timings with ``grade``'s overrides applied."""
        values: Dict[str, float] = {
            name: getattr(self, name) for name in _NS_FIELDS
        }
        for name in _OPTIONAL_NS_FIELDS:
            declared = getattr(self, name)
            if declared is not None:
                values[name] = declared
        for name, value in grade.overrides:
            values[name] = value
        return values

    def timing_parameters(
        self,
        grade: Optional[str] = None,
        clock_mhz: Optional[float] = None,
    ) -> TimingParameters:
        """Derive :class:`TimingParameters` for one bin of this part.

        ``clock_mhz`` derates the part below its bin (running a -3200
        part on a 1600 MT/s bus); overclocking past the bin is a
        configuration error — that is what the faster bin is for.  The
        data rate scales with the clock (double data rate), and every
        cycle floor is re-evaluated at the derivation clock, so a
        derated part's constraints stay JEDEC-legal in cycles.
        """
        chosen = self.grade(grade)
        clock = chosen.clock_mhz if clock_mhz is None else clock_mhz
        if clock <= 0:
            raise ConfigurationError(
                f"{self.name}: clock_mhz must be positive, got {clock}"
            )
        if clock > chosen.clock_mhz:
            raise ConfigurationError(
                f"{self.name}-{chosen.label} is binned for "
                f"{chosen.clock_mhz:g} MHz; cannot derive timings at "
                f"{clock:g} MHz (pick a faster speedgrade)"
            )
        data_rate = chosen.data_rate_mtps * (clock / chosen.clock_mhz)
        values = self.grade_ns(chosen)
        for name, floor in self.cycle_floors:
            if name not in values:
                continue
            floor_ns = cycles_to_ns(floor, clock)
            if values[name] < floor_ns:
                values[name] = floor_ns
        return TimingParameters(
            name=f"{self.name}-{chosen.label}",
            clock_mhz=clock,
            data_rate_mtps=data_rate,
            burst_length=self.burst_length,
            bank_groups=self.bank_groups,
            **values,
        )

    def derived_cycles(
        self,
        grade: Optional[str] = None,
        clock_mhz: Optional[float] = None,
    ) -> Dict[str, int]:
        """Every timing constraint in whole cycles at the derived clock.

        Convenience view over :meth:`timing_parameters` — the numbers a
        memory controller would program into its timing registers, and
        the ones ``docs/catalog.md`` tabulates.
        """
        params = self.timing_parameters(grade=grade, clock_mhz=clock_mhz)
        cycles: Dict[str, int] = {}
        for name in _NS_FIELDS:
            cycles[name] = params.cycles(name)
        for name in _OPTIONAL_NS_FIELDS:
            if getattr(params, name) is not None:
                cycles[name] = params.cycles(name)
        return cycles

    def geometry(self, subarray_rows: int = 512) -> DeviceGeometry:
        """This part's :class:`DeviceGeometry` (full-size — mind the cost).

        The returned geometry describes the real array; characterization
        runs usually want the factory's default characterization-sized
        geometry instead and scale regions explicitly.  ``subarray_rows``
        is vendor-specific and is overridden by the manufacturer profile
        when the device is built.
        """
        return DeviceGeometry(
            banks=self.banks,
            rows_per_bank=self.rows_per_bank,
            cols_per_row=self.cols_per_row,
            subarray_rows=subarray_rows,
            word_bits=self.word_bits,
        )

    @property
    def density_gbit(self) -> float:
        """Density in gigabits (display convenience)."""
        return self.density_mbit / 1024.0


def _refi(window_ms: float, rows: int) -> float:
    """Average refresh interval in ns for a ``window_ms`` retention window."""
    return window_ms * 1e6 / rows


def _ddr3(
    name: str,
    density_mbit: int,
    rows_per_bank: int,
    trfc_ns: float,
    grades: Tuple[SpeedGrade, ...],
    cols_per_row: int = 8192,
    **overrides: float,
) -> DramModule:
    """A DDR3 part from the family's shared JEDEC frame."""
    base = dict(
        family="DDR3",
        banks=8,
        cols_per_row=cols_per_row,
        burst_length=8,
        trcd_ns=13.75,
        tras_ns=35.0,
        trp_ns=13.75,
        tcl_ns=13.75,
        tcwl_ns=10.0,
        tccd_ns=5.0,
        trtp_ns=7.5,
        twr_ns=15.0,
        twtr_ns=7.5,
        trrd_ns=6.0,
        tfaw_ns=30.0,
        trefi_ns=7800.0,
        cycle_floors=(("tccd_ns", 4), ("trtp_ns", 4), ("twtr_ns", 4)),
    )
    base.update(overrides)
    return DramModule(
        name=name,
        density_mbit=density_mbit,
        rows_per_bank=rows_per_bank,
        trfc_ns=trfc_ns,
        speedgrades=grades,
        **base,  # type: ignore[arg-type]
    )


def _ddr4(
    name: str,
    density_mbit: int,
    rows_per_bank: int,
    trfc_ns: float,
    grades: Tuple[SpeedGrade, ...],
    cols_per_row: int = 8192,
    with_floors: bool = True,
    **overrides: float,
) -> DramModule:
    """A DDR4 part (bank groups, short/long tCCD/tRRD)."""
    base = dict(
        family="DDR4",
        banks=8,
        cols_per_row=cols_per_row,
        burst_length=8,
        trcd_ns=14.16,
        tras_ns=32.0,
        trp_ns=14.16,
        tcl_ns=14.16,
        tcwl_ns=10.0,
        tccd_ns=3.33,
        trtp_ns=7.5,
        twr_ns=15.0,
        twtr_ns=7.5,
        trrd_ns=3.3,
        tfaw_ns=21.0,
        trefi_ns=7800.0,
        tccd_l_ns=5.0,
        trrd_l_ns=4.9,
        bank_groups=4,
        cycle_floors=(
            (("tccd_ns", 4), ("trrd_ns", 4), ("tccd_l_ns", 5))
            if with_floors
            else ()
        ),
    )
    base.update(overrides)
    return DramModule(
        name=name,
        density_mbit=density_mbit,
        rows_per_bank=rows_per_bank,
        trfc_ns=trfc_ns,
        speedgrades=grades,
        **base,  # type: ignore[arg-type]
    )


def _lpddr4(
    name: str,
    density_mbit: int,
    rows_per_bank: int,
    trfc_ns: float,
    grades: Tuple[SpeedGrade, ...],
    family: str = "LPDDR4",
    cols_per_row: int = 16384,
    **overrides: float,
) -> DramModule:
    """An LPDDR4/LPDDR4X part from the family's shared JEDEC frame."""
    base = dict(
        family=family,
        banks=8,
        cols_per_row=cols_per_row,
        burst_length=16,
        trcd_ns=18.0,
        tras_ns=42.0,
        trp_ns=18.0,
        tcl_ns=18.0,
        tcwl_ns=9.0,
        tccd_ns=5.0,
        trtp_ns=7.5,
        twr_ns=18.0,
        twtr_ns=10.0,
        trrd_ns=10.0,
        tfaw_ns=40.0,
        trefi_ns=3904.0,
        cycle_floors=(("tccd_ns", 8), ("twtr_ns", 8)),
    )
    base.update(overrides)
    return DramModule(
        name=name,
        density_mbit=density_mbit,
        rows_per_bank=rows_per_bank,
        trfc_ns=trfc_ns,
        speedgrades=grades,
        **base,  # type: ignore[arg-type]
    )


#: DDR3 bins: 1066F / 1333H / 1600K (CL-binned latencies loosen downward).
_DDR3_GRADES = (
    SpeedGrade(
        "1066",
        533.0,
        1066.0,
        overrides=(
            ("trcd_ns", 15.0),
            ("trp_ns", 15.0),
            ("tcl_ns", 15.0),
            ("tras_ns", 37.5),
            ("trrd_ns", 7.5),
            ("tfaw_ns", 37.5),
            ("tcwl_ns", 11.25),
        ),
    ),
    SpeedGrade(
        "1333",
        667.0,
        1333.0,
        overrides=(
            ("trcd_ns", 14.0),
            ("trp_ns", 14.0),
            ("tcl_ns", 14.0),
            ("tras_ns", 36.0),
            ("trrd_ns", 6.5),
            ("tfaw_ns", 33.75),
            ("tcwl_ns", 10.5),
        ),
    ),
    SpeedGrade("1600", 800.0, 1600.0),
)

#: DDR4 bins: 2133P / 2400R / 2666V / 2933Y / 3200AA.
_DDR4_GRADES = (
    SpeedGrade(
        "2133",
        1066.0,
        2133.0,
        overrides=(
            ("trcd_ns", 14.5),
            ("trp_ns", 14.5),
            ("tcl_ns", 14.5),
            ("tras_ns", 33.0),
            ("tfaw_ns", 25.0),
            ("trrd_ns", 3.7),
            ("trrd_l_ns", 5.3),
        ),
    ),
    SpeedGrade("2400", 1200.0, 2400.0),
    SpeedGrade(
        "2666",
        1333.0,
        2666.0,
        overrides=(
            ("trcd_ns", 14.16),
            ("tfaw_ns", 21.0),
        ),
    ),
    SpeedGrade(
        "2933",
        1466.0,
        2933.0,
        overrides=(("trcd_ns", 14.16),),
    ),
    SpeedGrade("3200", 1600.0, 3200.0),
)

#: LPDDR4 bins: 1866 / 2400 / 3200 (latency in ns is flat across bins;
#: the clock is what moves).
_LPDDR4_GRADES = (
    SpeedGrade(
        "1866",
        933.0,
        1866.0,
        overrides=(("trcd_ns", 18.5), ("trp_ns", 18.5), ("tcl_ns", 18.5)),
    ),
    SpeedGrade(
        "2400",
        1200.0,
        2400.0,
        overrides=(("trcd_ns", 18.25), ("trp_ns", 18.25), ("tcl_ns", 18.25)),
    ),
    SpeedGrade("3200", 1600.0, 3200.0),
)

#: LPDDR4X bins: 3200 / 3733 / 4267.
_LPDDR4X_GRADES = (
    SpeedGrade(
        "3200",
        1600.0,
        3200.0,
        overrides=(("trcd_ns", 18.0), ("trp_ns", 18.0), ("tcl_ns", 18.0)),
    ),
    SpeedGrade(
        "3733",
        1866.0,
        3733.0,
        overrides=(("trcd_ns", 17.7), ("trp_ns", 17.7), ("tcl_ns", 17.7)),
    ),
    SpeedGrade("4267", 2133.0, 4267.0),
)


def _catalog() -> Dict[str, DramModule]:
    """Build the part catalog (module-load time, immutable afterwards)."""
    modules = [
        # ------------------------------------------------------------------
        # JEDEC reference bins: generic parts whose rated grades reproduce
        # the legacy presets byte-for-byte (pinned by tests).
        # ------------------------------------------------------------------
        _ddr3("DDR3", 4096, 32768, 160.0, _DDR3_GRADES),
        _ddr4(
            "DDR4",
            8192,
            32768,
            350.0,
            _DDR4_GRADES[:2],
            with_floors=False,
        ),
        _lpddr4("LPDDR4", 8192, 32768, 180.0, _LPDDR4_GRADES),
        _lpddr4(
            "LPDDR4X",
            8192,
            32768,
            180.0,
            _LPDDR4X_GRADES,
            family="LPDDR4X",
        ),
        # ------------------------------------------------------------------
        # DDR3 vendor parts (the paper's 4 cross-validation devices).
        # ------------------------------------------------------------------
        _ddr3("MT41K256M16", 4096, 32768, 160.0, _DDR3_GRADES[1:]),
        _ddr3("MT41K512M8", 4096, 65536, 160.0, _DDR3_GRADES, cols_per_row=4096),
        _ddr3("K4B4G1646E", 4096, 32768, 160.0, _DDR3_GRADES[1:]),
        _ddr3("H5TQ4G63CFR", 4096, 32768, 160.0, _DDR3_GRADES),
        _ddr3("IS43TR16256A", 4096, 32768, 160.0, _DDR3_GRADES[:2]),
        # ------------------------------------------------------------------
        # DDR4 vendor parts (cross-technology studies).
        # ------------------------------------------------------------------
        _ddr4("MT40A512M16", 8192, 32768, 350.0, _DDR4_GRADES[1:]),
        _ddr4("MT40A1G8", 8192, 65536, 350.0, _DDR4_GRADES[1:4], cols_per_row=4096),
        _ddr4("K4A8G165WC", 8192, 32768, 350.0, _DDR4_GRADES[2:]),
        _ddr4("H5AN8G16NAFR", 8192, 32768, 350.0, _DDR4_GRADES[:3]),
        _ddr4("W634GU6NB", 4096, 16384, 260.0, _DDR4_GRADES[:2]),
        # ------------------------------------------------------------------
        # LPDDR4 vendor parts (the paper's primary 282-device class).
        # ------------------------------------------------------------------
        _lpddr4("MT53B512M32", 16384, 65536, 280.0, _LPDDR4_GRADES),
        _lpddr4("MT53E512M32", 16384, 65536, 280.0, _LPDDR4_GRADES[1:]),
        _lpddr4("K4F8E304HB", 8192, 32768, 180.0, _LPDDR4_GRADES),
        _lpddr4("K4F6E304HB", 16384, 65536, 280.0, _LPDDR4_GRADES[1:]),
        _lpddr4("H9HCNNNBKUML", 8192, 32768, 180.0, _LPDDR4_GRADES),
        _lpddr4("H9HCNNN8KUML", 4096, 16384, 130.0, _LPDDR4_GRADES[:2]),
        # ------------------------------------------------------------------
        # LPDDR4X vendor parts (the low-VDDQ successors).
        # ------------------------------------------------------------------
        _lpddr4(
            "MT53E1G32D2",
            32768,
            65536,
            380.0,
            _LPDDR4X_GRADES,
            family="LPDDR4X",
        ),
        _lpddr4(
            "K4UBE3D4AA",
            32768,
            65536,
            380.0,
            _LPDDR4X_GRADES[1:],
            family="LPDDR4X",
        ),
        _lpddr4(
            "H9HKNNNCRMBV",
            16384,
            32768,
            280.0,
            _LPDDR4X_GRADES,
            family="LPDDR4X",
        ),
        _lpddr4(
            "MT53D1024M32",
            32768,
            65536,
            380.0,
            _LPDDR4X_GRADES[:2],
            family="LPDDR4X",
        ),
    ]
    catalog: Dict[str, DramModule] = {}
    for module in modules:
        if module.name in catalog:
            raise ConfigurationError(f"duplicate catalog part {module.name}")
        catalog[module.name] = module
    return catalog


#: The part catalog: name → :class:`DramModule`, insertion-ordered by
#: family then part.  Treat as read-only.
MODULES: Dict[str, DramModule] = _catalog()


def get_module(name: str) -> DramModule:
    """Look up a catalog part by name; typo-safe.

    Raises :class:`~repro.errors.UnknownModuleError` (carrying
    ``.name`` and ``.available``) for unknown parts, before any device
    work can start.
    """
    try:
        return MODULES[name]
    except KeyError:
        raise UnknownModuleError(name, tuple(MODULES)) from None


def list_modules(family: Optional[str] = None) -> List[DramModule]:
    """All catalog parts, optionally filtered to one family."""
    if family is not None and family not in FAMILIES:
        raise ConfigurationError(
            f"family must be one of {FAMILIES}, got {family!r}"
        )
    return [
        module
        for module in MODULES.values()
        if family is None or module.family == family
    ]


def resolve_timings(
    spec: Union[str, DramModule, TimingParameters],
    clock_mhz: Optional[float] = None,
) -> TimingParameters:
    """Resolve a part spec into :class:`TimingParameters`.

    Accepted forms: a ``TimingParameters`` (passed through), a
    :class:`DramModule` (rated grade), ``"PART"`` (rated grade) or
    ``"PART-GRADE"`` (that bin), e.g. ``"MT53E512M32-2400"``.
    ``clock_mhz`` derates the chosen bin.
    """
    if isinstance(spec, TimingParameters):
        if clock_mhz is not None:
            raise ConfigurationError(
                "clock_mhz derating needs a catalog part, not a "
                "TimingParameters preset"
            )
        return spec
    if isinstance(spec, DramModule):
        return spec.timing_parameters(clock_mhz=clock_mhz)
    if spec in MODULES:
        return MODULES[spec].timing_parameters(clock_mhz=clock_mhz)
    part, dash, grade = spec.rpartition("-")
    if dash and part in MODULES:
        return MODULES[part].timing_parameters(
            grade=grade, clock_mhz=clock_mhz
        )
    available: List[str] = []
    for module in MODULES.values():
        available.extend(
            f"{module.name}-{label}" for label in module.grade_labels
        )
    raise UnknownModuleError(spec, tuple(available))


# ---------------------------------------------------------------------------
# Documentation rendering (docs/catalog.md is this output, verbatim)
# ---------------------------------------------------------------------------

#: Columns of the per-part timing table: (TimingParameters field, label).
_DOC_TIMINGS: Tuple[Tuple[str, str], ...] = (
    ("trcd_ns", "tRCD"),
    ("trp_ns", "tRP"),
    ("tras_ns", "tRAS"),
    ("trefi_ns", "tREFI"),
)


def _fmt_ns(value: float) -> str:
    """Render a nanosecond figure without trailing-zero noise."""
    text = f"{value:.2f}".rstrip("0").rstrip(".")
    return f"{text} ns"


def catalog_markdown() -> str:
    """Render the full part/speedgrade reference as Markdown.

    ``drange catalog --format markdown`` emits exactly this text, and
    ``docs/catalog.md`` commits it; ``tests/dram/test_catalog_docs.py``
    regenerates the document and fails on any drift, so the reference
    tables can never disagree with the catalog code.
    """
    lines = [
        "# DRAM module catalog",
        "",
        "<!-- GENERATED FILE - DO NOT EDIT BY HAND.",
        "     Regenerate with:  python -m repro catalog --format markdown",
        "     Drift is caught by tests/dram/test_catalog_docs.py.  -->",
        "",
        "Every part `repro.dram.modules` declares, one row per "
        "speedgrade.  Timings",
        "are declared in nanoseconds and quantized to command-clock "
        "cycles at the",
        "bin's rated clock via `ceil(t_ns / clk_period)` with JEDEC "
        "`max(cycles,",
        "floor)` guards — the `N ck` column is what a controller "
        "would program.",
        "The generic `DDR3` / `DDR4` / `LPDDR4` / `LPDDR4X` parts "
        "reproduce the",
        "legacy `TimingParameters` presets exactly at their rated bins.",
        "",
    ]
    for family in FAMILIES:
        members = list_modules(family)
        if not members:
            continue
        lines.append(f"## {family}")
        lines.append("")
        lines.append(
            "| part | speedgrade | clock | density | geometry "
            "(b×r×c) | tRCD | tRP | tRAS | tREFI |"
        )
        lines.append(
            "|------|-----------|-------|---------|-----------------"
            "|------|-----|------|-------|"
        )
        for module in members:
            for label in module.grade_labels:
                grade = module.grade(label)
                params = module.timing_parameters(grade=label)
                cells = [
                    f"`{module.name}`",
                    f"-{label}",
                    f"{grade.clock_mhz:g} MHz",
                    f"{module.density_gbit:g} Gb",
                    f"{module.banks}×{module.rows_per_bank}"
                    f"×{module.cols_per_row}",
                ]
                for field_name, _ in _DOC_TIMINGS:
                    ns_value = getattr(params, field_name)
                    cells.append(
                        f"{_fmt_ns(ns_value)} / "
                        f"{params.cycles(field_name)} ck"
                    )
                lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    lines.append(
        f"{sum(len(m.speedgrades) for m in MODULES.values())} "
        f"speedgrade rows across {len(MODULES)} parts."
    )
    lines.append("")
    return "\n".join(lines)
