"""DRAM device geometry: the spatial hierarchy of cells.

A :class:`DeviceGeometry` captures how a chip's cells are organized —
banks, rows, columns, subarray height and access (word) granularity —
and provides the address arithmetic the rest of the model relies on.

The paper's characterization (Section 5.1) shows that activation-failure
structure follows the *subarray* organization: weak sense-amplifier
columns repeat across the 512 or 1024 rows sharing a local row buffer,
and failure probability grows with the row's distance from the sense
amplifiers.  Subarray height is therefore a first-class geometry field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError, ConfigurationError


@dataclass(frozen=True)
class CellCoord:
    """Coordinate of a single DRAM cell within one device."""

    bank: int
    row: int
    col: int

    def word_index(self, word_bits: int) -> int:
        """Index of the DRAM word (access granularity) containing this cell."""
        return self.col // word_bits

    def bit_in_word(self, word_bits: int) -> int:
        """Bit offset of this cell within its DRAM word."""
        return self.col % word_bits


@dataclass(frozen=True)
class DeviceGeometry:
    """Static geometry of one DRAM chip.

    Parameters
    ----------
    banks:
        Number of independently operable banks (8 for LPDDR4/DDR3).
    rows_per_bank:
        Rows per bank.  Real LPDDR4 chips have tens of thousands; tests
        and benchmarks use smaller regions, which is legitimate because
        the variation field is lazily generated per coordinate.
    cols_per_row:
        Cells (bits) per row per chip.
    subarray_rows:
        Rows sharing one local row buffer (512 or 1024 in the paper).
    word_bits:
        Bits covered by one DRAM word — the access granularity at which
        activation failures can be induced (Section 5.1: only the first
        word accessed after an ACT can fail).  The paper's words are
        64-byte cache lines, i.e. 512 bits.
    """

    banks: int = 8
    rows_per_bank: int = 4096
    cols_per_row: int = 1024
    subarray_rows: int = 512
    word_bits: int = 512

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ConfigurationError(f"banks must be positive, got {self.banks}")
        if self.rows_per_bank <= 0:
            raise ConfigurationError(
                f"rows_per_bank must be positive, got {self.rows_per_bank}"
            )
        if self.cols_per_row <= 0:
            raise ConfigurationError(
                f"cols_per_row must be positive, got {self.cols_per_row}"
            )
        if self.subarray_rows <= 0:
            raise ConfigurationError(
                f"subarray_rows must be positive, got {self.subarray_rows}"
            )
        if self.word_bits <= 0:
            raise ConfigurationError(f"word_bits must be positive, got {self.word_bits}")
        if self.cols_per_row % self.word_bits != 0:
            raise ConfigurationError(
                "cols_per_row must be a multiple of word_bits: "
                f"{self.cols_per_row} % {self.word_bits} != 0"
            )
        if self.rows_per_bank % self.subarray_rows != 0:
            raise ConfigurationError(
                "rows_per_bank must be a multiple of subarray_rows: "
                f"{self.rows_per_bank} % {self.subarray_rows} != 0"
            )

    @property
    def words_per_row(self) -> int:
        """DRAM words in one row."""
        return self.cols_per_row // self.word_bits

    @property
    def words_per_bank(self) -> int:
        """DRAM words in one bank."""
        return self.words_per_row * self.rows_per_bank

    @property
    def subarrays_per_bank(self) -> int:
        """Number of subarrays stacked in one bank."""
        return self.rows_per_bank // self.subarray_rows

    @property
    def cells_per_bank(self) -> int:
        """Total cells in one bank."""
        return self.rows_per_bank * self.cols_per_row

    @property
    def cells_per_device(self) -> int:
        """Total cells in the device."""
        return self.cells_per_bank * self.banks

    def subarray_of(self, row: int) -> int:
        """Subarray index containing ``row``."""
        self.validate_row(row)
        return row // self.subarray_rows

    def row_within_subarray(self, row: int) -> int:
        """Row offset within its subarray (distance proxy to sense amps)."""
        self.validate_row(row)
        return row % self.subarray_rows

    def validate_bank(self, bank: int) -> None:
        """Raise :class:`AddressError` unless ``bank`` is in range."""
        if not 0 <= bank < self.banks:
            raise AddressError(f"bank {bank} out of range [0, {self.banks})")

    def validate_row(self, row: int) -> None:
        """Raise :class:`AddressError` unless ``row`` is in range."""
        if not 0 <= row < self.rows_per_bank:
            raise AddressError(f"row {row} out of range [0, {self.rows_per_bank})")

    def validate_col(self, col: int) -> None:
        """Raise :class:`AddressError` unless ``col`` is in range."""
        if not 0 <= col < self.cols_per_row:
            raise AddressError(f"col {col} out of range [0, {self.cols_per_row})")

    def validate_word(self, word: int) -> None:
        """Raise :class:`AddressError` unless ``word`` indexes a row word."""
        if not 0 <= word < self.words_per_row:
            raise AddressError(f"word {word} out of range [0, {self.words_per_row})")

    def validate(self, coord: CellCoord) -> None:
        """Raise :class:`AddressError` unless ``coord`` lies in the device."""
        self.validate_bank(coord.bank)
        self.validate_row(coord.row)
        self.validate_col(coord.col)

    def word_cols(self, word: int) -> range:
        """Column range covered by word index ``word`` within a row."""
        self.validate_word(word)
        start = word * self.word_bits
        return range(start, start + self.word_bits)
