"""The activation-failure model: process variation → failure probability.

This composes the frozen variation fields (:mod:`repro.dram.variation`)
with the analytic electrical model (:mod:`repro.dram.cell`) under a
manufacturer profile, producing the per-cell probability that a READ at
a given (possibly reduced) tRCD returns the wrong value.

The model reproduces the structure the paper characterizes:

* weak sense-amplifier *columns* repeating through a subarray (Fig. 4),
* failure probability growing with row distance from the sense amps
  within a subarray (Fig. 4),
* data-pattern dependence through cell polarity and neighbor coupling
  (Fig. 5),
* temperature dependence with per-cell spread (Fig. 6),
* and time-invariance — probabilities are a pure function of frozen
  variation plus operating conditions (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram import cell as cell_model
from repro.dram.geometry import DeviceGeometry
from repro.dram.manufacturer import ManufacturerProfile
from repro.dram.variation import DomainTag, VariationField

#: Ambient characterization temperature of the paper's testing chamber.
REFERENCE_TEMP_C = 45.0

#: Floor for sense-amplifier strength after variation is applied.
MIN_SA_STRENGTH = 0.05


@dataclass(frozen=True)
class OperatingPoint:
    """Conditions under which a reduced-latency access happens.

    ``vdd_ratio`` is the supply voltage relative to nominal; reduced
    voltage slows sense amplification (the mechanism behind the
    reduced-voltage DRAM study [30] the paper cites), raising failure
    probabilities the same direction as higher temperature.
    """

    trcd_ns: float
    temperature_c: float = REFERENCE_TEMP_C
    vdd_ratio: float = 1.0


class ActivationFailureModel:
    """Per-cell activation-failure probabilities for one device.

    The model is stateless and deterministic given ``(variation,
    profile)``; all stochasticity lives in the noise draws made by the
    bank when it actually performs a read.
    """

    def __init__(
        self,
        geometry: DeviceGeometry,
        profile: ManufacturerProfile,
        variation: VariationField,
    ) -> None:
        if geometry.subarray_rows != profile.subarray_rows:
            raise ValueError(
                "geometry subarray_rows "
                f"({geometry.subarray_rows}) must match manufacturer profile "
                f"({profile.subarray_rows})"
            )
        self._geometry = geometry
        self._profile = profile
        self._variation = variation
        self._row_cache = {}

    @property
    def geometry(self) -> DeviceGeometry:
        """Device geometry this model is bound to."""
        return self._geometry

    @property
    def profile(self) -> ManufacturerProfile:
        """Manufacturer profile this model is bound to."""
        return self._profile

    def sense_amp_strength(self, bank: int, subarray, cols) -> np.ndarray:
        """Relative strength of the local sense amp serving each column.

        Weakness *clusters*: a weak sense amp drags its immediate
        neighbors down with decaying probability, reflecting the paper's
        Figure 4 (groups of failing column bits inside one DRAM word)
        and Figure 7 (words holding up to 4 RNG cells).
        """
        profile = self._profile
        cols = np.asarray(cols, dtype=np.int64)
        base = 1.0 + profile.sa_sigma * self._variation.column_normal(
            DomainTag.SENSE_AMP, bank, subarray, cols
        )

        def seed_weak(offset: int) -> np.ndarray:
            shifted = np.maximum(cols - offset, 0)
            return (
                self._variation.column_uniform(
                    DomainTag.SA_WEAKNESS, bank, subarray, shifted
                )
                < profile.weak_col_fraction
            ) & (cols - offset >= 0)

        spread = self._variation.column_uniform(
            DomainTag.SA_SPREAD, bank, subarray, cols
        )
        weak = seed_weak(0)
        weak |= seed_weak(1) & (spread < 0.5)
        weak |= seed_weak(2) & (spread < 0.25)
        strength = np.where(weak, base * profile.weak_col_factor, base)
        return np.maximum(strength, MIN_SA_STRENGTH)

    def development_tau(
        self,
        bank: int,
        row: int,
        cols,
        temperature_c: float,
        vdd_ratio: float = 1.0,
    ) -> np.ndarray:
        """Effective development time constant for cells of one row.

        ``vdd_ratio`` scales amplification strength quadratically with
        supply voltage (regeneration current ∝ V²), so undervolting
        lengthens τ and raises failure probabilities.
        """
        if vdd_ratio <= 0:
            raise ValueError(f"vdd_ratio must be positive, got {vdd_ratio}")
        geometry = self._geometry
        profile = self._profile
        subarray = geometry.subarray_of(row)
        row_frac = (
            geometry.row_within_subarray(row) / geometry.subarray_rows
        ) ** profile.row_distance_exponent
        strength = self.sense_amp_strength(bank, subarray, cols)
        temp_coeff = profile.temp_coeff_per_c + profile.temp_sens_sigma * (
            self._variation.cell_normal(DomainTag.CELL_TEMP_SENS, bank, row, cols)
        )
        temp_factor = np.maximum(
            1.0 + temp_coeff * (temperature_c - REFERENCE_TEMP_C), 0.1
        )
        tau = (
            profile.tau0_ns
            / strength
            * (1.0 + profile.row_distance_coeff * row_frac)
            * temp_factor
            / max(vdd_ratio, 0.5) ** 2
        )
        return np.maximum(tau, cell_model.MIN_TAU_NS)

    def cell_margin(self, bank: int, row: int, cols) -> np.ndarray:
        """Per-cell required sensing margin (frozen at manufacturing)."""
        profile = self._profile
        return profile.margin_mean + profile.margin_sigma * self._variation.cell_normal(
            DomainTag.CELL_OFFSET, bank, row, cols
        )

    def weak_values(self, bank: int, row: int, cols) -> np.ndarray:
        """The stored value (0/1) under which each cell *can* fail.

        Polarity depends on the cell's severity class: cells that would
        fail near-deterministically draw from ``severe_weak1_prob``,
        marginal cells from ``marginal_weak1_prob``.  This is what makes
        coverage-maximizing and RNG-cell-maximizing patterns differ per
        manufacturer (Section 5.2).
        """
        profile = self._profile
        worst_case_prob = self._polarity_free_probability(
            bank, row, cols, OperatingPoint(trcd_ns=10.0)
        )
        severe = worst_case_prob > profile.severe_threshold
        weak1_prob = np.where(
            severe, profile.severe_weak1_prob, profile.marginal_weak1_prob
        )
        u = self._variation.cell_uniform(DomainTag.CELL_POLARITY, bank, row, cols)
        return (u < weak1_prob).astype(np.uint8)

    def _polarity_free_probability(
        self, bank: int, row: int, cols, op: OperatingPoint
    ) -> np.ndarray:
        """Failure probability ignoring polarity, under worst-case coupling.

        "Worst case" means both neighbors store the opposite value, the
        pattern arrangement that maximizes the failure probability; this
        is the severity yardstick for polarity assignment, safely above
        any probability an actual pattern can realize for the cell.
        """
        profile = self._profile
        t_sense = cell_model.effective_sense_time(op.trcd_ns, profile.charge_share_ns)
        tau = self.development_tau(bank, row, cols, op.temperature_c)
        development = cell_model.bitline_development(t_sense, tau) - profile.neigh_coeff
        margin = self.cell_margin(bank, row, cols)
        return cell_model.failure_probability(
            margin, development, profile.sigma_noise, profile.plateau_k
        )

    def _row_statics(
        self, bank: int, row: int, temperature_c: float, vdd_ratio: float = 1.0
    ):
        """Cached pattern-independent per-row fields.

        ``tau``, ``margin`` and the weak-polarity map depend only on the
        frozen variation and the temperature — not on the stored data —
        so characterization sweeps over many data patterns reuse them.
        """
        key = (bank, row, round(float(temperature_c), 4), round(float(vdd_ratio), 4))
        cached = self._row_cache.get(key)
        if cached is None:
            cols = np.arange(self._geometry.cols_per_row)
            cached = (
                self.development_tau(bank, row, cols, temperature_c, vdd_ratio),
                self.cell_margin(bank, row, cols),
                self.weak_values(bank, row, cols),
            )
            if len(self._row_cache) >= 8192:
                self._row_cache.clear()
            self._row_cache[key] = cached
        return cached

    def precharge_residual(self, trp_ns: float, spec_trp_ns: float) -> float:
        """Residual bitline bias left by a too-short precharge.

        The paper's footnote 4 leaves other timing parameters to future
        work; this implements the natural extension for tRP: the
        equalizer needs time to drive the bitlines back to Vdd/2, so a
        PRE shorter than spec leaves a fraction of the previous swing —
        ``trp_residual_max · exp(−(tRP − start)/tau)`` — biasing the
        next activation toward (or away from) the previously latched
        row's data.
        """
        if trp_ns >= spec_trp_ns:
            return 0.0
        profile = self._profile
        elapsed = max(trp_ns - profile.trp_eq_start_ns, 0.0)
        return float(
            profile.trp_residual_max * np.exp(-elapsed / profile.trp_eq_tau_ns)
        )

    def failure_probabilities(
        self,
        bank: int,
        row: int,
        cols: np.ndarray,
        stored_row_bits: np.ndarray,
        op: OperatingPoint,
        residual: np.ndarray = None,
    ) -> np.ndarray:
        """Probability each addressed cell reads back flipped.

        Parameters
        ----------
        bank, row, cols:
            Address of the cells being read (``cols`` is an int array).
        stored_row_bits:
            The *entire row's* stored bits (length ``cols_per_row``),
            needed because neighbor values couple into the margin.
        op:
            tRCD and temperature in force for this access.
        residual:
            Optional signed per-column development shift from an
            incompletely equalized precharge (+ helps the stored value,
            − fights it); see :meth:`precharge_residual`.
        """
        geometry = self._geometry
        profile = self._profile
        cols = np.asarray(cols, dtype=np.int64)
        stored_row_bits = np.asarray(stored_row_bits, dtype=np.uint8)
        if stored_row_bits.shape != (geometry.cols_per_row,):
            raise ValueError(
                "stored_row_bits must cover the full row "
                f"({geometry.cols_per_row} cells), got shape {stored_row_bits.shape}"
            )

        t_sense = cell_model.effective_sense_time(op.trcd_ns, profile.charge_share_ns)
        tau_row, margin_row, weak_row = self._row_statics(
            bank, row, op.temperature_c, op.vdd_ratio
        )
        tau = tau_row[cols]
        development = cell_model.bitline_development(t_sense, tau)
        margin = margin_row[cols]

        stored = stored_row_bits[cols]
        weak = weak_row[cols]
        # Cells storing their strong polarity gain a large margin of
        # safety: in practice they do not fail at the tRCD values the
        # paper explores.
        development = development + np.where(
            stored == weak, 0.0, profile.strong_value_boost
        )

        # Neighbor coupling: adjacent bitlines swinging the opposite way
        # slow this cell's development.  frac_diff in {0, 0.5, 1}.
        left = stored_row_bits[np.maximum(cols - 1, 0)]
        right = stored_row_bits[np.minimum(cols + 1, geometry.cols_per_row - 1)]
        frac_diff = ((left != stored).astype(np.float64) + (right != stored)) / 2.0
        development = development - profile.neigh_coeff * (2.0 * frac_diff - 1.0)

        if residual is not None:
            development = development + np.asarray(residual, dtype=np.float64)

        return cell_model.failure_probability(
            margin, development, profile.sigma_noise, profile.plateau_k
        )

    def word_failure_probabilities(
        self,
        bank: int,
        row: int,
        word: int,
        stored_row_bits: np.ndarray,
        op: OperatingPoint,
    ) -> np.ndarray:
        """Failure probabilities for the cells of one DRAM word."""
        cols = np.asarray(self._geometry.word_cols(word))
        return self.failure_probabilities(bank, row, cols, stored_row_bits, op)
