"""Per-manufacturer DRAM behavior profiles.

The paper characterizes devices from three anonymized major manufacturers
(A, B, C) and finds vendor-specific behavior in three places:

* **Subarray height** (Section 5.1, footnote 2): 512 or 1024 rows per
  local row buffer depending on the manufacturer.
* **Data-pattern dependence** (Section 5.2): the pattern that *covers*
  the most failing cells is solid 0s for A and B but walking 0s for C,
  while the pattern that finds the most ~50%-probability (RNG) cells is
  solid 0s for A and C and checkered 0s for B.
* **Temperature sensitivity** (Section 5.3): A's ΔFprob under +5°C hugs
  the x=y line; B and C show more spread, all with positive correlation.

Each :class:`ManufacturerProfile` packages the electrical-model
coefficients that reproduce those observations.  The coefficients are
calibration constants of the reproduction, not paper-reported values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Manufacturer(enum.Enum):
    """The three anonymized DRAM vendors of the paper."""

    A = "A"
    B = "B"
    C = "C"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ManufacturerProfile:
    """Electrical-model coefficients for one vendor's devices.

    Attributes
    ----------
    subarray_rows:
        Rows per subarray (drives the repeating structure in Figure 4).
    tau0_ns:
        Nominal bitline-development time constant for a healthy sense amp.
    charge_share_ns:
        Dead time between ACT and the start of useful amplification.
    sigma_noise:
        Std. dev. of sensing noise in normalized bitline-swing units;
        this is the physical entropy D-RaNGe harvests.
    sa_sigma:
        Relative spread of healthy sense-amplifier strength.
    weak_col_fraction:
        Fraction of (subarray, column) sense amps that are "weak" —
        the failure-prone columns visible in Figure 4.
    weak_col_factor:
        Strength multiplier applied to weak sense amps (< 1).
    margin_mean / margin_sigma:
        Per-cell required sensing margin distribution (normalized units).
    row_distance_coeff:
        Extra development time for the subarray's farthest row, as a
        fraction of tau (signal-propagation delay along the bitline).
    row_distance_exponent:
        Shape of the distance effect along the subarray: 1.0 is linear;
        values < 1 saturate toward the far end (vendor-specific bitline
        architecture).
    strong_value_boost:
        Margin headroom a cell gains when storing its *strong* polarity;
        large enough that strong-polarity reads essentially never fail.
    neigh_coeff:
        Margin penalty when adjacent cells store the opposite value
        (bitline–bitline coupling); large for B, which is why checkered
        patterns surface B's RNG cells.
    severe_weak1_prob:
        Probability that a *severely* failing cell (deterministic-ish
        failure) is weak when storing 1 rather than 0.  High for C, so
        1-rich patterns (walking 0s) cover C's failures.
    marginal_weak1_prob:
        Same, for *marginal* (~50%) cells.  Low for A and C, so solid 0s
        finds their RNG cells.
    temp_coeff_per_c:
        Relative increase of the development time constant per °C —
        hotter devices fail more (Section 5.3).
    temp_sens_sigma:
        Per-cell spread of the temperature coefficient; controls how
        tightly ΔFprob tracks the x=y line in Figure 6.
    severe_threshold:
        Reference failure probability above which a cell counts as
        "severe" for polarity assignment.  C's is lower, pushing more of
        its failure population into the heavily weak-1 severe class.
    plateau_k:
        Metastable-plateau strength passed to the electrical model: how
        tightly near-crossing cells pin to a 50% outcome (see
        :func:`repro.dram.cell.failure_probability`).
    trp_residual_max / trp_eq_start_ns / trp_eq_tau_ns:
        Precharge-equalization model (the paper's footnote-4 future
        work): a PRE shorter than spec leaves the bitlines biased toward
        the previously latched row by
        ``trp_residual_max · exp(−(tRP − start)/tau)`` of full swing.
    """

    manufacturer: Manufacturer
    subarray_rows: int
    tau0_ns: float = 2.2
    charge_share_ns: float = 3.0
    sigma_noise: float = 0.05
    sa_sigma: float = 0.10
    weak_col_fraction: float = 0.008
    weak_col_factor: float = 0.35
    margin_mean: float = 0.55
    margin_sigma: float = 0.05
    row_distance_coeff: float = 0.5
    row_distance_exponent: float = 1.0
    strong_value_boost: float = 0.5
    neigh_coeff: float = 0.012
    severe_weak1_prob: float = 0.2
    marginal_weak1_prob: float = 0.2
    temp_coeff_per_c: float = 0.008
    temp_sens_sigma: float = 0.002
    severe_threshold: float = 0.8
    plateau_k: float = 2.5
    trp_residual_max: float = 0.5
    trp_eq_start_ns: float = 5.0
    trp_eq_tau_ns: float = 3.0

    def __post_init__(self) -> None:
        if self.subarray_rows not in (512, 1024):
            raise ConfigurationError(
                f"subarray_rows must be 512 or 1024, got {self.subarray_rows}"
            )
        if not 0.0 < self.weak_col_fraction < 1.0:
            raise ConfigurationError(
                f"weak_col_fraction must be in (0, 1), got {self.weak_col_fraction}"
            )
        if not 0.0 < self.weak_col_factor < 1.0:
            raise ConfigurationError(
                f"weak_col_factor must be in (0, 1), got {self.weak_col_factor}"
            )
        if not 0.0 < self.severe_threshold < 1.0:
            raise ConfigurationError(
                f"severe_threshold must be in (0, 1), got {self.severe_threshold}"
            )
        for probability_name in ("severe_weak1_prob", "marginal_weak1_prob"):
            value = getattr(self, probability_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{probability_name} must be in [0, 1], got {value}"
                )
        for positive_name in (
            "tau0_ns",
            "charge_share_ns",
            "sigma_noise",
            "sa_sigma",
            "margin_sigma",
        ):
            value = getattr(self, positive_name)
            if value <= 0:
                raise ConfigurationError(f"{positive_name} must be positive, got {value}")

    @property
    def name(self) -> str:
        """Short vendor label ("A", "B" or "C")."""
        return self.manufacturer.value


#: Vendor A: 512-row subarrays, mild coupling, tight temperature behavior.
PROFILE_A = ManufacturerProfile(
    manufacturer=Manufacturer.A,
    subarray_rows=512,
    neigh_coeff=0.008,
    severe_weak1_prob=0.20,
    marginal_weak1_prob=0.20,
    temp_coeff_per_c=0.005,
    temp_sens_sigma=0.0015,
)

#: Vendor B: 512-row subarrays, strong neighbor coupling (checkered
#: patterns expose its marginal cells), looser temperature behavior.
PROFILE_B = ManufacturerProfile(
    manufacturer=Manufacturer.B,
    subarray_rows=512,
    weak_col_factor=0.35,
    row_distance_coeff=0.283,
    row_distance_exponent=0.4,
    neigh_coeff=0.030,
    severe_weak1_prob=0.10,
    marginal_weak1_prob=0.50,
    severe_threshold=0.52,
    temp_coeff_per_c=0.009,
    temp_sens_sigma=0.005,
)

#: Vendor C: 1024-row subarrays; severe failures are weak-when-storing-1
#: (1-rich walking-0 patterns cover them) while marginal cells are
#: weak-when-storing-0 (solid 0s finds its RNG cells).
PROFILE_C = ManufacturerProfile(
    manufacturer=Manufacturer.C,
    subarray_rows=1024,
    row_distance_coeff=0.9,
    neigh_coeff=0.008,
    severe_weak1_prob=0.90,
    marginal_weak1_prob=0.15,
    severe_threshold=0.52,
    temp_coeff_per_c=0.010,
    temp_sens_sigma=0.006,
)

#: Lookup from :class:`Manufacturer` to its profile.
MANUFACTURERS = {
    Manufacturer.A: PROFILE_A,
    Manufacturer.B: PROFILE_B,
    Manufacturer.C: PROFILE_C,
}


def profile_for(manufacturer) -> ManufacturerProfile:
    """Resolve a :class:`ManufacturerProfile` from an enum member or label."""
    if isinstance(manufacturer, ManufacturerProfile):
        return manufacturer
    if isinstance(manufacturer, Manufacturer):
        return MANUFACTURERS[manufacturer]
    if isinstance(manufacturer, str):
        try:
            return MANUFACTURERS[Manufacturer(manufacturer.upper())]
        except ValueError:
            raise ConfigurationError(f"unknown manufacturer {manufacturer!r}") from None
    raise ConfigurationError(f"cannot interpret {manufacturer!r} as a manufacturer")
