"""DRAM system topology: ranks and channels built from chips.

A rank is a set of chips operated in lock-step (Section 2.1.1): one
logical command goes to every chip, and the data bus concatenates each
chip's word.  A channel hosts one or more ranks behind a shared command
and data bus.  D-RaNGe's throughput scales with channel-level
parallelism (Figure 8's per-channel numbers are multiplied by the
channel count for the headline 717.4 Mb/s), so the topology layer is
what the throughput model enumerates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.dram.device import DramDevice
from repro.errors import ConfigurationError


class Rank:
    """Chips operated in lock-step behind one chip-select."""

    def __init__(self, devices: Sequence[DramDevice]) -> None:
        if not devices:
            raise ConfigurationError("a rank requires at least one device")
        first = devices[0]
        for device in devices[1:]:
            if device.geometry != first.geometry:
                raise ConfigurationError(
                    "all devices in a rank must share a geometry"
                )
            if device.timings != first.timings:
                raise ConfigurationError(
                    "all devices in a rank must share timing parameters"
                )
        self._devices = list(devices)

    @property
    def devices(self) -> Sequence[DramDevice]:
        """Chips of this rank, in data-bus order."""
        return tuple(self._devices)

    @property
    def geometry(self):
        """Per-chip geometry (identical across the rank)."""
        return self._devices[0].geometry

    @property
    def timings(self):
        """Timing preset (identical across the rank)."""
        return self._devices[0].timings

    @property
    def data_bits(self) -> int:
        """Width of one rank-level word on the data bus."""
        return self.geometry.word_bits * len(self._devices)

    def activate(self, bank: int, row: int, trcd_ns: Optional[float] = None) -> None:
        """Lock-step ACT across every chip."""
        for device in self._devices:
            device.bank(bank).activate(row, trcd_ns=trcd_ns)

    def precharge(self, bank: int) -> None:
        """Lock-step PRE across every chip."""
        for device in self._devices:
            device.bank(bank).precharge()

    def read(self, bank: int, word: int, trcd_ns: Optional[float] = None) -> np.ndarray:
        """Lock-step READ; returns the concatenated rank-level word."""
        parts = []
        for device in self._devices:
            op = device.operating_point(trcd_ns) if trcd_ns is not None else None
            parts.append(device.bank(bank).read(word, op=op))
        return np.concatenate(parts)

    def write(self, bank: int, word: int, bits: np.ndarray) -> None:
        """Lock-step WRITE of a rank-level word split across chips."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.data_bits,):
            raise ValueError(
                f"rank word must have shape ({self.data_bits},), got {bits.shape}"
            )
        chip_bits = self.geometry.word_bits
        for i, device in enumerate(self._devices):
            device.bank(bank).write(word, bits[i * chip_bits : (i + 1) * chip_bits])


class Channel:
    """One memory channel: ranks sharing a command/data bus."""

    def __init__(self, ranks: Sequence[Rank], index: int = 0) -> None:
        if not ranks:
            raise ConfigurationError("a channel requires at least one rank")
        self._ranks = list(ranks)
        self._index = index

    @property
    def index(self) -> int:
        """Channel index within the system."""
        return self._index

    @property
    def ranks(self) -> Sequence[Rank]:
        """Ranks behind this channel's bus."""
        return tuple(self._ranks)

    @property
    def timings(self):
        """Timing preset of the channel (rank 0's preset)."""
        return self._ranks[0].timings

    def rank(self, index: int) -> Rank:
        """Access rank ``index``."""
        if not 0 <= index < len(self._ranks):
            raise ConfigurationError(
                f"rank {index} out of range [0, {len(self._ranks)})"
            )
        return self._ranks[index]

    @property
    def devices(self) -> List[DramDevice]:
        """All chips reachable through this channel."""
        out: List[DramDevice] = []
        for rank in self._ranks:
            out.extend(rank.devices)
        return out


def single_device_channel(device: DramDevice, index: int = 0) -> Channel:
    """Convenience: wrap one chip as a one-rank channel (x16 LPDDR4 style)."""
    return Channel([Rank([device])], index=index)
