"""QUAC-TRNG physics: multi-row activation charge sharing.

QUAC-TRNG (PAPERS.md) generalizes D-RaNGe's timing-violation idea to a
*spatial* violation: an ``ACT-PRE-ACT`` sequence interrupts the first
activation with an early precharge and re-activates a second row before
the bitlines restore, leaving four rows (two row-address bits glitched)
simultaneously connected to the bitlines.  Each column becomes a charge
-sharing contest between the four cells:

* with a **balanced** stored pattern (two 1s, two 0s per column) the
  aggregate deviation from Vdd/2 is dominated by per-cell capacitance
  mismatch, sense-amplifier offset and thermal noise — the sensed bit
  is random;
* with an **imbalanced** column the majority value wins near
  deterministically.

The model composes the same frozen variation fields the activation
-failure model uses (:mod:`repro.dram.variation`), so the QUAC and
D-RaNGe mechanisms see one consistent piece of silicon: a weak sense
amplifier drags both mechanisms, as it would on a real chip.

All stochasticity stays in the caller's noise draws; this module is
pure and deterministic given ``(variation, profile)``, which is what
lets :class:`QuacPlane` cache probabilities under the device epoch
contract exactly like :class:`~repro.dram.plane.ProbabilityPlane`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.special import ndtr

from repro.dram.failures import (
    REFERENCE_TEMP_C,
    ActivationFailureModel,
    OperatingPoint,
)
from repro.dram.geometry import DeviceGeometry
from repro.dram.manufacturer import ManufacturerProfile
from repro.dram.variation import DomainTag, VariationField

#: Rows opened by one precharge-interrupt activation (QUAC = quadruple).
QUAC_ROWS = 4

#: Bitline swing contributed per cell, in thermal-noise units.  Large
#: enough that a one-cell majority (net charge ±2 cells) is decided
#: near-deterministically, as QUAC-TRNG measures on real chips.
CHARGE_GAIN = 2.0

#: Per-cell capacitance mismatch (fractional sigma): the frozen silicon
#: component of a balanced column's bias.
CAP_SIGMA = 0.1

#: Per-column sense-amplifier input offset sigma, in thermal-noise units.
OFFSET_SIGMA = 0.6

#: Thermal-noise growth per °C above the reference temperature.
TEMP_NOISE_COEFF = 0.008

#: Bounded size of the per-group probability cache.
MAX_CACHED_GROUPS = 2048


class QuacModel:
    """Per-column sensing probabilities for multi-row activations.

    Stateless and deterministic given ``(variation, profile)``; the
    sense-amplifier strength field is shared with the activation
    -failure model so both mechanisms express the same weak columns.
    """

    def __init__(
        self,
        geometry: DeviceGeometry,
        profile: ManufacturerProfile,
        variation: VariationField,
        failure_model: ActivationFailureModel,
    ) -> None:
        self._geometry = geometry
        self._profile = profile
        self._variation = variation
        self._failure_model = failure_model

    @property
    def geometry(self) -> DeviceGeometry:
        """Device geometry this model is bound to."""
        return self._geometry

    def validate_group(self, rows: Tuple[int, ...]) -> int:
        """Check a row group is a legal charge-sharing set; return its subarray.

        The rows must be distinct and live in one subarray (they must
        share local sense amplifiers for their cells to meet on the
        same bitlines).
        """
        if len(rows) < 2:
            raise ValueError(f"a QUAC group needs at least 2 rows, got {rows}")
        if len(set(rows)) != len(rows):
            raise ValueError(f"QUAC group rows must be distinct, got {rows}")
        subarrays = set()
        for row in rows:
            self._geometry.validate_row(row)
            subarrays.add(self._geometry.subarray_of(row))
        if len(subarrays) != 1:
            raise ValueError(
                f"QUAC group rows {rows} straddle subarrays {sorted(subarrays)}"
            )
        return subarrays.pop()

    def one_probabilities(
        self,
        bank: int,
        rows: Tuple[int, ...],
        stored_bits: np.ndarray,
        op: OperatingPoint,
    ) -> np.ndarray:
        """P(sense amp resolves 1) for every column of a row group.

        ``stored_bits`` is the ``(len(rows), cols_per_row)`` matrix of
        the participating rows' stored values at activation time.  Each
        cell pulls its bitline toward its stored value with a weight
        set by its (frozen) capacitance; the sense amplifier resolves
        the sign of the aggregate against its own offset plus thermal
        noise.
        """
        subarray = self.validate_group(rows)
        geometry = self._geometry
        stored = np.asarray(stored_bits, dtype=np.float64)
        if stored.shape != (len(rows), geometry.cols_per_row):
            raise ValueError(
                f"stored_bits must have shape ({len(rows)}, "
                f"{geometry.cols_per_row}), got {stored.shape}"
            )
        cols = np.arange(geometry.cols_per_row)
        # Signed charge: each cell contributes ±(1 + cap mismatch).
        signed = np.zeros(geometry.cols_per_row, dtype=np.float64)
        for i, row in enumerate(rows):
            weight = 1.0 + CAP_SIGMA * self._variation.cell_normal(
                DomainTag.QUAC_DRIVE, bank, row, cols
            )
            signed += (2.0 * stored[i] - 1.0) * weight
        offset = self._variation.column_normal(
            DomainTag.QUAC_OFFSET, bank, subarray, cols
        )
        strength = self._failure_model.sense_amp_strength(bank, subarray, cols)
        # Undervolting weakens the restore drive quadratically (same law
        # as the activation-failure model's development_tau).
        drive = max(op.vdd_ratio, 0.5) ** 2
        noise = max(1.0 + TEMP_NOISE_COEFF * (op.temperature_c - REFERENCE_TEMP_C), 0.1)
        margin = (CHARGE_GAIN * signed * drive + OFFSET_SIGMA * offset) * strength
        probs: np.ndarray = ndtr(margin / noise)
        return probs


class QuacPlane:
    """Epoch-synced cache of QUAC sensing probabilities for one device.

    Mirrors :class:`~repro.dram.plane.ProbabilityPlane`: probabilities
    are a pure function of (stored pattern, variation, operating
    point), so they stay valid exactly until ``device.state_epoch``
    moves — any write, temperature/voltage change, power cycle, or
    fault-schedule change invalidates every cached group.  Every lookup
    re-records the epoch it served under (the EPOCH001 contract for
    this class), so a stale entry can never be returned.
    """

    def __init__(self, device: object) -> None:
        self._device = device
        self._probs: Dict[Tuple[int, Tuple[int, ...], Tuple[float, float, float]], np.ndarray] = {}
        self._epoch_seen = -1
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    @property
    def hits(self) -> int:
        """Lookups served from cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to recompute."""
        return self._misses

    @property
    def invalidations(self) -> int:
        """Times an epoch move dropped the cached groups."""
        return self._invalidations

    def probabilities(
        self, bank: int, rows: Tuple[int, ...], op: OperatingPoint
    ) -> np.ndarray:
        """Cached P(sense=1) per column for ``rows`` of ``bank`` under ``op``.

        The returned array is shared and read-only; callers that mutate
        must copy.
        """
        device = self._device
        epoch = int(device.state_epoch)  # type: ignore[attr-defined]
        if epoch != self._epoch_seen:
            if self._probs:
                self._invalidations += 1
            self._probs.clear()
        self._epoch_seen = epoch
        rows = tuple(int(r) for r in rows)
        key = (
            int(bank),
            rows,
            (
                round(float(op.trcd_ns), 4),
                round(float(op.temperature_c), 4),
                round(float(op.vdd_ratio), 4),
            ),
        )
        probs = self._probs.get(key)
        if probs is None:
            self._misses += 1
            plane = device.plane  # type: ignore[attr-defined]
            stored = np.stack([plane.row_stored(bank, row) for row in rows])
            model = device.quac_model  # type: ignore[attr-defined]
            probs = model.one_probabilities(bank, rows, stored, op)
            probs.flags.writeable = False
            if len(self._probs) >= MAX_CACHED_GROUPS:
                self._probs.clear()
            self._probs[key] = probs
        else:
            self._hits += 1
        return probs
