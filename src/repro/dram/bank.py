"""Behavioral model of one DRAM bank.

A :class:`Bank` holds stored data (lazily initialized from the startup
model, sparsely by row) and executes the ACT / READ / WRITE / PRE
protocol.  Timing is *not* simulated here — commands are behavioral and
instantaneous; the cycle-accurate consequences of a command stream are
the business of :mod:`repro.sim.engine`.  What the bank does model is
the paper's failure semantics:

* A READ issued under a reduced tRCD can return flipped bits, but only
  for the **first** word accessed after the ACT (Section 5.1: no
  subsequent access to an already-open row fails, because the row has
  had time to restore).
* Optionally (``corrupt_on_failure``), a failed read also corrupts the
  stored array value — the hazard that motivates Algorithm 2's
  write-back step.  The default is off, matching the paper's observation
  that per-cell failure probabilities stay stable across Algorithm 1
  iterations without rewriting the pattern.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.dram.failures import ActivationFailureModel, OperatingPoint
from repro.dram.geometry import DeviceGeometry
from repro.dram.startup import StartupModel
from repro.errors import ProtocolError
from repro.noise import NoiseSource


class Bank:
    """One DRAM bank: open-row state machine plus stored data."""

    def __init__(
        self,
        index: int,
        geometry: DeviceGeometry,
        failure_model: ActivationFailureModel,
        startup_model: StartupModel,
        noise: NoiseSource,
        corrupt_on_failure: bool = False,
        spec_trcd_ns: float = 18.0,
        spec_trp_ns: float = 18.0,
    ) -> None:
        geometry.validate_bank(index)
        if spec_trcd_ns <= 0:
            raise ValueError(f"spec_trcd_ns must be positive, got {spec_trcd_ns}")
        if spec_trp_ns <= 0:
            raise ValueError(f"spec_trp_ns must be positive, got {spec_trp_ns}")
        self._spec_trcd_ns = spec_trcd_ns
        self._spec_trp_ns = spec_trp_ns
        self._index = index
        self._geometry = geometry
        self._failure_model = failure_model
        self._startup_model = startup_model
        self._noise = noise
        self._corrupt_on_failure = corrupt_on_failure
        self._rows: Dict[int, np.ndarray] = {}
        self._epoch = 0
        self._open_row: Optional[int] = None
        self._activation_trcd_ns: Optional[float] = None
        self._first_access_pending = False
        # Precharge-residual state (the tRP-violation extension): the
        # last latched row's data and the magnitude left un-equalized.
        self._last_latched: Optional[np.ndarray] = None
        self._residual_magnitude = 0.0

    @property
    def index(self) -> int:
        """This bank's index within its device."""
        return self._index

    @property
    def open_row(self) -> Optional[int]:
        """Currently open row, or ``None`` when precharged."""
        return self._open_row

    @property
    def geometry(self) -> DeviceGeometry:
        """Geometry shared with the owning device."""
        return self._geometry

    @property
    def state_epoch(self) -> int:
        """Monotonic counter bumped on every stored-state mutation.

        Probability caches (:class:`~repro.dram.plane.ProbabilityPlane`)
        key their validity on this counter: any WRITE, direct row
        replacement, failure-induced corruption, or power cycle
        invalidates whatever was derived from the previous contents.
        Lazy row materialization does *not* bump it — a row's contents
        cannot have been cached before its first materialization.
        """
        return self._epoch

    def stored_row(self, row: int) -> np.ndarray:
        """The stored bits of ``row`` (lazily powered up), as a copy."""
        return self._row_bits(row).copy()

    def _row_bits(self, row: int) -> np.ndarray:
        self._geometry.validate_row(row)
        bits = self._rows.get(row)
        if bits is None:
            bits = self._startup_model.power_up_row(self._index, row, self._noise)
            # Lazy materialization is epoch-neutral by design: the row's
            # startup content is a pure function of (bank, row, model), so
            # nothing a plan could have cached is invalidated by caching
            # it here too (see the state_epoch docstring above).
            self._rows[row] = bits  # repro: noqa[EPOCH001]
        return bits

    def activate(self, row: int, trcd_ns: Optional[float] = None) -> None:
        """Open ``row``; ``trcd_ns`` is the ACT→READ gap the controller
        will honor, carried here so the first READ knows whether it is a
        reduced-latency (failure-prone) access."""
        if self._open_row is not None:
            raise ProtocolError(
                f"bank {self._index}: ACT to row {row} while row "
                f"{self._open_row} is open (missing PRE)"
            )
        self._geometry.validate_row(row)
        self._open_row = row
        self._activation_trcd_ns = trcd_ns
        self._first_access_pending = True

    def precharge(self, trp_ns: Optional[float] = None) -> None:
        """Close the open row (idempotent, as PRE to an idle bank is a nop).

        ``trp_ns`` below the spec value models a deliberately truncated
        precharge: the bitlines keep a residual bias toward the row that
        was just latched, which perturbs the *next* activation — the
        tRP-violation entropy source of the paper's footnote 4.
        """
        if self._open_row is not None:
            latched = self._rows.get(self._open_row)
            effective_trp = self._spec_trp_ns if trp_ns is None else trp_ns
            magnitude = self._failure_model.precharge_residual(
                effective_trp, self._spec_trp_ns
            )
            if magnitude > 0.0 and latched is not None:
                self._last_latched = latched.copy()
                self._residual_magnitude = magnitude
            else:
                self._last_latched = None
                self._residual_magnitude = 0.0
        self._open_row = None
        self._activation_trcd_ns = None
        self._first_access_pending = False

    def read(
        self,
        word: int,
        op: Optional[OperatingPoint] = None,
    ) -> np.ndarray:
        """Read one DRAM word from the open row.

        ``op`` describes the access conditions; when ``op.trcd_ns`` is
        below the device's spec *and* this is the first access after the
        ACT, the returned bits are drawn through the activation-failure
        model.  Returns a fresh uint8 array of length ``word_bits``.
        """
        if self._open_row is None:
            raise ProtocolError(f"bank {self._index}: READ with no open row")
        self._geometry.validate_word(word)
        row = self._open_row
        row_bits = self._row_bits(row)
        cols = np.arange(
            word * self._geometry.word_bits, (word + 1) * self._geometry.word_bits
        )
        stored = row_bits[cols].copy()

        effective_op = self._effective_op(op)
        has_residual = self._residual_magnitude > 0.0
        failure_eligible = self._first_access_pending and (
            (effective_op is not None and effective_op.trcd_ns < self._spec_trcd_ns)
            or has_residual
        )
        self._first_access_pending = False
        if not failure_eligible:
            return stored

        if effective_op is None:
            effective_op = OperatingPoint(trcd_ns=self._spec_trcd_ns)
        residual = None
        if has_residual:
            # + where the residual agrees with the stored value (helps
            # development), − where it fights it.
            agrees = self._last_latched[cols] == stored
            residual = np.where(
                agrees, self._residual_magnitude, -self._residual_magnitude
            )
        probs = self._failure_model.failure_probabilities(
            self._index, row, cols, row_bits, effective_op, residual=residual
        )
        flips = self._noise.bernoulli(probs)
        read_bits = np.where(flips, 1 - stored, stored).astype(np.uint8)
        if self._corrupt_on_failure and flips.any():
            row_bits[cols[flips]] = read_bits[flips]
            self._epoch += 1
        return read_bits

    def multi_activate(self, rows, sensed_bits: np.ndarray) -> None:
        """Latch a multi-row activation (QUAC's ACT-PRE-ACT sequence).

        ``rows`` are the simultaneously opened rows (all in the same
        subarray — they share local sense amplifiers); ``sensed_bits``
        is the per-column resolution of the charge-sharing contest,
        computed by the caller through the QUAC model.  The sense
        amplifiers then restore the *sensed* value into every
        participating row, destroying the stored pattern — which is why
        the QUAC sampling loop must re-initialize its rows each
        iteration.  Leaves ``rows[0]`` open for the subsequent READs.
        """
        rows = tuple(int(r) for r in rows)
        if self._open_row is not None:
            raise ProtocolError(
                f"bank {self._index}: MACT while row {self._open_row} is open (missing PRE)"
            )
        if len(rows) < 2:
            raise ProtocolError("MACT requires at least two rows")
        if len(set(rows)) != len(rows):
            raise ProtocolError("MACT rows must be distinct")
        subarrays = set()
        for row in rows:
            self._geometry.validate_row(row)
            subarrays.add(self._geometry.subarray_of(row))
        if len(subarrays) != 1:
            raise ProtocolError(
                f"MACT rows {rows} straddle subarrays {sorted(subarrays)}; "
                f"charge sharing needs one set of local sense amps"
            )
        sensed = np.asarray(sensed_bits, dtype=np.uint8)
        if sensed.shape != (self._geometry.cols_per_row,):
            raise ValueError(
                f"sensed bits must have shape ({self._geometry.cols_per_row},), "
                f"got {sensed.shape}"
            )
        if not np.isin(sensed, (0, 1)).all():
            raise ValueError("sensed bits must be 0/1")
        for row in rows:
            self._rows[row] = sensed.copy()
        self._epoch += 1
        self._open_row = rows[0]
        self._activation_trcd_ns = None
        # The sensed value is fully restored by the (second, full-length)
        # activation, so the following READs are deterministic.
        self._first_access_pending = False
        self._last_latched = None
        self._residual_magnitude = 0.0

    def write(self, word: int, bits: np.ndarray) -> None:
        """Write one DRAM word into the open row."""
        if self._open_row is None:
            raise ProtocolError(f"bank {self._index}: WRITE with no open row")
        self._geometry.validate_word(word)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self._geometry.word_bits,):
            raise ValueError(
                f"word data must have shape ({self._geometry.word_bits},), "
                f"got {bits.shape}"
            )
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("word data must be 0/1 bits")
        row_bits = self._row_bits(self._open_row)
        start = word * self._geometry.word_bits
        row_bits[start : start + self._geometry.word_bits] = bits
        self._epoch += 1
        # A write lands after the row is fully restored, so it cannot be
        # the failure-prone first access anymore.
        self._first_access_pending = False

    def write_row(self, row: int, bits: np.ndarray) -> None:
        """Directly replace a whole row's stored bits (test/bench setup).

        This bypasses the open-row protocol the way a test host writes a
        pattern at full latency before an experiment.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self._geometry.cols_per_row,):
            raise ValueError(
                f"row data must have shape ({self._geometry.cols_per_row},), "
                f"got {bits.shape}"
            )
        self._geometry.validate_row(row)
        self._rows[row] = bits.copy()
        self._epoch += 1

    def power_cycle(self) -> None:
        """Drop all stored state, as a power loss would.

        The next read of any row re-latches power-up values (with fresh
        randomness for the metastable startup cells) — the behavior the
        startup-value TRNG baseline harvests.
        """
        self._rows.clear()
        self._epoch += 1
        self._open_row = None
        self._activation_trcd_ns = None
        self._first_access_pending = False
        self._last_latched = None
        self._residual_magnitude = 0.0

    def refresh_row(self, row: int) -> None:
        """Full-latency ACT+PRE pair restoring the row's charge.

        Charge decay itself is only modeled by the retention baseline,
        so behaviorally this just validates the protocol state.
        """
        if self._open_row is not None:
            raise ProtocolError(
                f"bank {self._index}: refresh while row {self._open_row} is open"
            )
        self._geometry.validate_row(row)
        # Materialize the row so its contents are pinned from now on.
        self._row_bits(row)

    def _effective_op(self, op: Optional[OperatingPoint]) -> Optional[OperatingPoint]:
        """Fold the ACT-time tRCD override into the access conditions.

        If the ACT carried an explicit tRCD (the controller reduced the
        timing register before activating), that value governs the first
        READ regardless of what the READ-side caller believes.
        """
        if self._activation_trcd_ns is None:
            return op
        if op is None:
            return OperatingPoint(trcd_ns=self._activation_trcd_ns)
        return OperatingPoint(
            trcd_ns=self._activation_trcd_ns, temperature_c=op.temperature_c
        )
