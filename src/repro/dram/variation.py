"""Frozen manufacturing-variation fields, lazily evaluated per coordinate.

The paper's key stability observation (Section 5.4) is that a cell's
activation-failure probability is fixed by process variation at
manufacturing time and does not drift over 15 days of testing.  We model
that by deriving every per-cell, per-column and per-subarray parameter
from a *pure hash* of ``(device_seed, domain, coordinates)``:

* the field is deterministic — re-reading a cell any number of times, in
  any order, on any day, sees the same manufacturing parameters;
* it needs O(1) memory — a simulated 8-bank × 64K-row device never
  materializes its billions of cell parameters; only the cells actually
  probed are evaluated;
* distinct devices (seeds) get statistically independent fields.

The hash is a vectorized SplitMix64 finalizer chain, a standard
avalanche-quality mixer, applied with NumPy uint64 arithmetic.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MAX_PLUS_1 = float(2**64)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """One SplitMix64 finalization round (vectorized, uint64 in/out)."""
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN).astype(np.uint64)
        z = ((z ^ (z >> np.uint64(30))) * _MIX1).astype(np.uint64)
        z = ((z ^ (z >> np.uint64(27))) * _MIX2).astype(np.uint64)
        return z ^ (z >> np.uint64(31))


def hash_u64(*components) -> np.ndarray:
    """Hash broadcastable integer components into uint64 values.

    Each component is absorbed with a SplitMix64 round, so the result has
    full avalanche in every input.  Components may be scalars or arrays;
    they broadcast together like NumPy operands.
    """
    state = np.uint64(0x5DEECE66D)
    acc = None
    for component in components:
        arr = np.asarray(component, dtype=np.uint64)
        if acc is None:
            acc = _splitmix64(arr + state)
        else:
            with np.errstate(over="ignore"):
                acc = _splitmix64((acc * _GOLDEN).astype(np.uint64) + arr)
    if acc is None:
        raise ValueError("hash_u64 requires at least one component")
    return acc


def uniform_field(*components) -> np.ndarray:
    """Deterministic uniform(0, 1) field keyed by the hashed components.

    The output is strictly inside (0, 1) so it can feed ``ndtri`` safely.
    """
    raw = hash_u64(*components)
    u = (raw.astype(np.float64) + 0.5) / _U64_MAX_PLUS_1
    return u


def normal_field(*components) -> np.ndarray:
    """Deterministic standard-normal field keyed by the hashed components.

    Uses the inverse-CDF transform of :func:`uniform_field`, which keeps
    the field a pure function of its coordinates (no stream state).
    """
    return ndtri(uniform_field(*components))


class DomainTag:
    """Namespacing constants separating independent variation fields.

    Two fields over the same coordinates must not be correlated, so each
    physical quantity hashes in its own tag.
    """

    CELL_OFFSET = 0x01
    SENSE_AMP = 0x02
    SA_WEAKNESS = 0x03
    CELL_TEMP_SENS = 0x04
    CELL_COUPLING = 0x05
    RETENTION = 0x06
    STARTUP_BIAS = 0x07
    SUBARRAY_SKEW = 0x08
    CELL_POLARITY = 0x09
    STARTUP_NOISE = 0x0A
    RETENTION_VRT = 0x0B
    SA_SPREAD = 0x0C
    QUAC_OFFSET = 0x0D
    QUAC_DRIVE = 0x0E


class VariationField:
    """All frozen variation fields of one device, keyed by its seed.

    This object is cheap to construct and stateless; it is the single
    authority on manufacturing randomness for a device, shared by the
    activation-failure, retention and startup models so that e.g. the
    retention baseline and D-RaNGe see one consistent piece of silicon.
    """

    def __init__(self, device_seed: int) -> None:
        self._seed = np.uint64(device_seed & 0xFFFFFFFFFFFFFFFF)

    @property
    def device_seed(self) -> int:
        """The seed identifying this device's silicon."""
        return int(self._seed)

    def cell_normal(self, tag: int, bank, row, col) -> np.ndarray:
        """Standard-normal per-cell field for domain ``tag``."""
        return normal_field(self._seed, np.uint64(tag), bank, row, col)

    def cell_uniform(self, tag: int, bank, row, col) -> np.ndarray:
        """Uniform(0,1) per-cell field for domain ``tag``."""
        return uniform_field(self._seed, np.uint64(tag), bank, row, col)

    def column_normal(self, tag: int, bank, subarray, col) -> np.ndarray:
        """Standard-normal per-(subarray, column) field for domain ``tag``.

        Sense-amplifier strength lives here: one local sense amp serves a
        whole column of a subarray, which is what makes failures repeat
        down entire columns in Figure 4.
        """
        return normal_field(self._seed, np.uint64(tag), bank, subarray, col)

    def column_uniform(self, tag: int, bank, subarray, col) -> np.ndarray:
        """Uniform(0,1) per-(subarray, column) field for domain ``tag``."""
        return uniform_field(self._seed, np.uint64(tag), bank, subarray, col)

    def subarray_normal(self, tag: int, bank, subarray) -> np.ndarray:
        """Standard-normal per-subarray field for domain ``tag``."""
        return normal_field(self._seed, np.uint64(tag), bank, subarray)
