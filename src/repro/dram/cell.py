"""Analytic DRAM cell / sense-amplifier electrical model.

This module holds the pure math of the reduced-tRCD failure mechanism,
in normalized units where 1.0 is the full bitline swing from Vdd/2 to a
rail.  The story (Section 2.1.4 and Section 6 of the paper):

1. ACT connects the cell to its bitline; after a charge-sharing dead
   time the sense amplifier develops the bitline exponentially toward
   the stored value's rail.
2. A READ issued ``tRCD`` after ACT samples the datapath.  If the
   developed swing has not yet cleared the cell's required sensing
   margin, the sampled value is decided by sensing noise — the entropy
   source.
3. The probability of sampling the wrong value is therefore
   ``Phi((margin - development) / sigma_noise)``.

Cells whose margin sits within a noise-width of the development level at
the chosen tRCD fail ~50% of the time: those are D-RaNGe's RNG cells.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

#: Smallest effective sensing time; prevents division blowups when the
#: applied tRCD is at or below the charge-sharing dead time.
MIN_SENSE_TIME_NS = 0.05

#: Smallest admissible development time constant.
MIN_TAU_NS = 0.05


def effective_sense_time(trcd_ns: float, charge_share_ns: float) -> float:
    """Time the sense amp has to develop the bitline before the READ."""
    return max(trcd_ns - charge_share_ns, MIN_SENSE_TIME_NS)


def bitline_development(t_sense_ns, tau_ns) -> np.ndarray:
    """Normalized bitline swing after ``t_sense_ns`` of amplification.

    Exponential settling: ``1 - exp(-t / tau)``.  Accepts scalars or
    arrays (broadcast); returns values in [0, 1).
    """
    tau = np.maximum(np.asarray(tau_ns, dtype=np.float64), MIN_TAU_NS)
    t = np.maximum(np.asarray(t_sense_ns, dtype=np.float64), 0.0)
    return -np.expm1(-t / tau)


def failure_probability(
    margin, development, sigma_noise: float, plateau_k: float = 2.5
) -> np.ndarray:
    """Probability the READ samples the wrong value.

    ``margin`` is the swing the cell needs for a deterministically
    correct read; ``development`` is the swing actually reached; noise
    is Gaussian with std ``sigma_noise``.

    ``plateau_k`` models the *metastable plateau*: when the residual
    offset ``z = (margin − development)/sigma`` is small compared to the
    noise, the sense amplifier's resolution is decided almost entirely
    by symmetric thermal noise, so the outcome probability pins to 1/2
    far more tightly than a plain ``Phi(z)`` would predict.  The
    effective offset is compressed as ``z · exp(−k / z²)``: essentially
    zero inside the noise floor, asymptotically ``z`` outside it.  This
    is what makes identified RNG cells *unbiased* (Section 6.1: no
    post-processing needed; Section 7.1: every NIST test passes).
    ``plateau_k = 0`` recovers the plain Gaussian model.
    """
    if sigma_noise <= 0:
        raise ValueError(f"sigma_noise must be positive, got {sigma_noise}")
    z = (np.asarray(margin, dtype=np.float64) - development) / sigma_noise
    if plateau_k > 0.0:
        z_sq = np.maximum(z * z, 1e-12)
        z = z * np.exp(-plateau_k / z_sq)
    return ndtr(z)


def shannon_entropy_bernoulli(p) -> np.ndarray:
    """Binary Shannon entropy H(p) in bits, vectorized, H(0)=H(1)=0."""
    p = np.asarray(p, dtype=np.float64)
    out = np.zeros_like(p)
    interior = (p > 0.0) & (p < 1.0)
    pi = p[interior]
    out[interior] = -(pi * np.log2(pi) + (1.0 - pi) * np.log2(1.0 - pi))
    return out
