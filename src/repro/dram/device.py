"""The DRAM device (chip) model and device-population factory.

A :class:`DramDevice` bundles geometry, a manufacturer profile, the
frozen variation field, the activation-failure / startup / retention
models, a noise source, and eight banks.  It exposes both the raw
command-level interface (via its banks) and vectorized characterization
fast paths used by the profiling and sampling layers.

A :class:`DeviceFactory` mints statistically independent devices from a
master seed, standing in for the paper's population of 282 LPDDR4 chips
and 4 DDR3 chips.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.dram.bank import Bank
from repro.dram.datapattern import DataPattern
from repro.dram.failures import ActivationFailureModel, OperatingPoint
from repro.dram.geometry import DeviceGeometry
from repro.dram.manufacturer import Manufacturer, ManufacturerProfile, profile_for
from repro.dram.retention import RetentionModel
from repro.dram.startup import StartupModel
from repro.dram.timing import LPDDR4_3200, TimingParameters
from repro.dram.variation import VariationField, hash_u64
from repro.errors import ConfigurationError
from repro.noise import NoiseSource


class DramDevice:
    """One DRAM chip with frozen manufacturing variation.

    Parameters
    ----------
    device_seed:
        Seed of the frozen variation field — the device's "silicon".
    manufacturer:
        Profile (or label) selecting vendor-specific behavior.
    geometry:
        Optional override; defaults to a characterization-sized geometry
        matched to the vendor's subarray height.
    timings:
        The spec timing preset this device was binned for.
    noise:
        Source of per-access randomness; pass a seeded source for
        reproducible tests.
    corrupt_on_failure:
        Whether failed reads corrupt the stored array (ablation knob).
    """

    def __init__(
        self,
        device_seed: int,
        manufacturer="A",
        geometry: Optional[DeviceGeometry] = None,
        timings: TimingParameters = LPDDR4_3200,
        noise: Optional[NoiseSource] = None,
        corrupt_on_failure: bool = False,
        serial: Optional[str] = None,
    ) -> None:
        self._profile = profile_for(manufacturer)
        if geometry is None:
            geometry = DeviceGeometry(subarray_rows=self._profile.subarray_rows)
        if geometry.subarray_rows != self._profile.subarray_rows:
            geometry = replace(geometry, subarray_rows=self._profile.subarray_rows)
        self._geometry = geometry
        self._timings = timings
        self._noise = noise if noise is not None else NoiseSource()
        self._variation = VariationField(device_seed)
        self._failure_model = ActivationFailureModel(
            geometry, self._profile, self._variation
        )
        self._startup_model = StartupModel(geometry, self._variation)
        self._retention_model = RetentionModel(geometry, self._variation)
        self._temperature_c = 45.0
        self._vdd_ratio = 1.0
        self._serial = serial or f"{self._profile.name}-{device_seed & 0xFFFF:05d}"
        self._banks = [
            Bank(
                index=i,
                geometry=geometry,
                failure_model=self._failure_model,
                startup_model=self._startup_model,
                noise=self._noise,
                corrupt_on_failure=corrupt_on_failure,
                spec_trcd_ns=timings.trcd_ns,
                spec_trp_ns=timings.trp_ns,
            )
            for i in range(geometry.banks)
        ]

    # ------------------------------------------------------------------
    # Identity and state
    # ------------------------------------------------------------------

    @property
    def serial(self) -> str:
        """Human-readable device identifier, e.g. ``"B-00042"``."""
        return self._serial

    @property
    def manufacturer(self) -> Manufacturer:
        """This device's vendor."""
        return self._profile.manufacturer

    @property
    def profile(self) -> ManufacturerProfile:
        """Vendor behavior profile."""
        return self._profile

    @property
    def geometry(self) -> DeviceGeometry:
        """Device geometry."""
        return self._geometry

    @property
    def timings(self) -> TimingParameters:
        """Spec timing preset (the reference tRCD lives here)."""
        return self._timings

    @property
    def variation(self) -> VariationField:
        """Frozen manufacturing-variation field."""
        return self._variation

    @property
    def failure_model(self) -> ActivationFailureModel:
        """Analytic activation-failure model bound to this device."""
        return self._failure_model

    @property
    def startup_model(self) -> StartupModel:
        """Power-up value model bound to this device."""
        return self._startup_model

    @property
    def retention_model(self) -> RetentionModel:
        """Retention-failure model bound to this device."""
        return self._retention_model

    @property
    def noise(self) -> NoiseSource:
        """This device's per-access noise source."""
        return self._noise

    @property
    def temperature_c(self) -> float:
        """Current DRAM temperature in °C."""
        return self._temperature_c

    def set_temperature(self, temperature_c: float) -> None:
        """Set the device temperature (the thermal chamber's job)."""
        if not -40.0 <= temperature_c <= 125.0:
            raise ConfigurationError(
                f"temperature {temperature_c}°C outside plausible operating range"
            )
        self._temperature_c = temperature_c

    @property
    def vdd_ratio(self) -> float:
        """Supply voltage relative to nominal (1.0 = spec VDD)."""
        return self._vdd_ratio

    def set_vdd_ratio(self, vdd_ratio: float) -> None:
        """Scale the supply voltage (reduced-voltage operation [30])."""
        if not 0.7 <= vdd_ratio <= 1.2:
            raise ConfigurationError(
                f"vdd_ratio {vdd_ratio} outside plausible operating range"
            )
        self._vdd_ratio = vdd_ratio

    def power_cycle(self) -> None:
        """Power-cycle the device: every bank loses its stored state."""
        for bank in self._banks:
            bank.power_cycle()

    def bank(self, index: int) -> Bank:
        """Access bank ``index``."""
        self._geometry.validate_bank(index)
        return self._banks[index]

    @property
    def banks(self) -> Sequence[Bank]:
        """All banks of the device."""
        return tuple(self._banks)

    def operating_point(self, trcd_ns: float) -> OperatingPoint:
        """Access conditions at the current temperature and voltage."""
        return OperatingPoint(
            trcd_ns=trcd_ns,
            temperature_c=self._temperature_c,
            vdd_ratio=self._vdd_ratio,
        )

    # ------------------------------------------------------------------
    # Command-level convenience
    # ------------------------------------------------------------------

    def probe_word(self, bank: int, row: int, word: int, trcd_ns: float) -> np.ndarray:
        """Behavioral ACT → READ → PRE of one word at ``trcd_ns``.

        This is what one inner-loop step of Algorithm 1 does to a closed
        row; returns the (possibly failure-flipped) read bits.
        """
        target = self.bank(bank)
        if target.open_row is not None:
            target.precharge()
        target.activate(row, trcd_ns=trcd_ns)
        bits = target.read(word, op=self.operating_point(trcd_ns))
        target.precharge()
        return bits

    def write_pattern(
        self,
        pattern: DataPattern,
        banks: Optional[Iterable[int]] = None,
        rows: Optional[Iterable[int]] = None,
    ) -> None:
        """Write ``pattern`` across a region at full (safe) latency."""
        bank_indices = list(banks) if banks is not None else range(self._geometry.banks)
        row_indices = (
            list(rows) if rows is not None else range(self._geometry.rows_per_bank)
        )
        num_cols = self._geometry.cols_per_row
        for bank_index in bank_indices:
            target = self.bank(bank_index)
            for row in row_indices:
                target.write_row(row, pattern.row_values(row, num_cols))

    # ------------------------------------------------------------------
    # Vectorized characterization fast paths
    # ------------------------------------------------------------------

    def row_failure_probabilities(
        self, bank: int, row: int, trcd_ns: float
    ) -> np.ndarray:
        """Failure probability of every cell in ``row`` as currently stored.

        Statistically identical to issuing many probe_word calls but
        computed analytically in one shot; the workhorse behind the
        characterization experiments.
        """
        target = self.bank(bank)
        stored = target.stored_row(row)
        cols = np.arange(self._geometry.cols_per_row)
        return self._failure_model.failure_probabilities(
            bank, row, cols, stored, self.operating_point(trcd_ns)
        )

    def sample_row_fail_counts(
        self, bank: int, row: int, trcd_ns: float, iterations: int
    ) -> np.ndarray:
        """Failure counts per cell over ``iterations`` probes of ``row``.

        Matches Algorithm 1's refresh-then-reduced-read loop: conditions
        are identical each iteration, so the counts are binomial draws
        from the per-cell probabilities.
        """
        probs = self.row_failure_probabilities(bank, row, trcd_ns)
        return self._noise.binomial(iterations, probs)

    def sample_cell_bits(
        self, bank: int, row: int, col: int, count: int, trcd_ns: float
    ) -> np.ndarray:
        """``count`` consecutive reduced-tRCD reads of one cell.

        Models Algorithm 2's steady state: the surrounding data pattern
        is held constant (write-back after every read), so each read is
        an independent Bernoulli flip of the stored bit.
        """
        self._geometry.validate_col(col)
        target = self.bank(bank)
        stored_row = target.stored_row(row)
        probs = self._failure_model.failure_probabilities(
            bank,
            row,
            np.asarray([col]),
            stored_row,
            self.operating_point(trcd_ns),
        )
        flips = self._noise.bernoulli(np.full(count, probs[0]))
        stored_bit = int(stored_row[col])
        return np.where(flips, 1 - stored_bit, stored_bit).astype(np.uint8)


class DeviceFactory:
    """Mints independent :class:`DramDevice` instances from a master seed.

    The paper characterizes 282 LPDDR4 devices — roughly balanced across
    manufacturers — plus 4 DDR3 devices.  ``DeviceFactory`` is the
    reproduction's stand-in for that drawer of chips.
    """

    def __init__(
        self,
        master_seed: int = 2019,
        timings: TimingParameters = LPDDR4_3200,
        noise_seed: Optional[int] = None,
        geometry: Optional[DeviceGeometry] = None,
    ) -> None:
        self._master_seed = master_seed
        self._timings = timings
        self._geometry = geometry
        self._noise_root = NoiseSource(noise_seed)

    def make_device(self, manufacturer, index: int = 0, **kwargs) -> DramDevice:
        """Create device ``index`` of ``manufacturer``'s population."""
        profile = profile_for(manufacturer)
        seed = int(
            hash_u64(
                np.uint64(self._master_seed),
                np.uint64(ord(profile.name[0])),
                np.uint64(index),
            )
        )
        return DramDevice(
            device_seed=seed,
            manufacturer=profile,
            geometry=kwargs.pop("geometry", self._geometry),
            timings=kwargs.pop("timings", self._timings),
            noise=kwargs.pop("noise", self._noise_root.spawn()),
            serial=f"{profile.name}-{index:05d}",
            **kwargs,
        )

    def population(self, per_manufacturer: int, **kwargs) -> List[DramDevice]:
        """A balanced device population across manufacturers A, B, C."""
        if per_manufacturer <= 0:
            raise ConfigurationError(
                f"per_manufacturer must be positive, got {per_manufacturer}"
            )
        devices = []
        for manufacturer in Manufacturer:
            for index in range(per_manufacturer):
                devices.append(self.make_device(manufacturer, index, **kwargs))
        return devices
