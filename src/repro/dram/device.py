"""The DRAM device (chip) model and device-population factory.

A :class:`DramDevice` bundles geometry, a manufacturer profile, the
frozen variation field, the activation-failure / startup / retention
models, a noise source, and eight banks.  It exposes both the raw
command-level interface (via its banks) and vectorized characterization
fast paths used by the profiling and sampling layers.

A :class:`DeviceFactory` mints statistically independent devices from a
master seed, standing in for the paper's population of 282 LPDDR4 chips
and 4 DDR3 chips.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.dram.bank import Bank
from repro.dram.datapattern import DataPattern
from repro.dram.failures import ActivationFailureModel, OperatingPoint
from repro.dram.geometry import DeviceGeometry
from repro.dram.manufacturer import Manufacturer, ManufacturerProfile, profile_for
from repro.dram.modules import DramModule, resolve_timings
from repro.dram.plane import ProbabilityPlane
from repro.dram.quac import QuacModel
from repro.dram.retention import RetentionModel
from repro.dram.startup import StartupModel
from repro.dram.timing import LPDDR4_3200, TimingParameters
from repro.dram.variation import VariationField, hash_u64
from repro.errors import ConfigurationError
from repro.noise import NoiseSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.backends.base import BackendProfile, TrngBackend


class DramDevice:
    """One DRAM chip with frozen manufacturing variation.

    Parameters
    ----------
    device_seed:
        Seed of the frozen variation field — the device's "silicon".
    manufacturer:
        Profile (or label) selecting vendor-specific behavior.
    geometry:
        Optional override; defaults to a characterization-sized geometry
        matched to the vendor's subarray height.
    timings:
        The spec timings this device was binned for: a
        :class:`TimingParameters` preset, a catalog part name
        (``"MT53E512M32"`` / ``"MT53E512M32-2400"``), or a
        :class:`~repro.dram.modules.DramModule` (rated grade).  A
        string/module spec resolves through the declarative catalog;
        a ``TimingParameters`` passes through unchanged, so existing
        callers see zero behavior change.
    noise:
        Source of per-access randomness; pass a seeded source for
        reproducible tests.
    corrupt_on_failure:
        Whether failed reads corrupt the stored array (ablation knob).
    """

    def __init__(
        self,
        device_seed: int,
        manufacturer="A",
        geometry: Optional[DeviceGeometry] = None,
        timings: Union[TimingParameters, DramModule, str] = LPDDR4_3200,
        noise: Optional[NoiseSource] = None,
        corrupt_on_failure: bool = False,
        serial: Optional[str] = None,
    ) -> None:
        timings = resolve_timings(timings)
        self._profile = profile_for(manufacturer)
        if geometry is None:
            geometry = DeviceGeometry(subarray_rows=self._profile.subarray_rows)
        if geometry.subarray_rows != self._profile.subarray_rows:
            geometry = replace(geometry, subarray_rows=self._profile.subarray_rows)
        self._geometry = geometry
        self._timings = timings
        self._noise = noise if noise is not None else NoiseSource()
        self._variation = VariationField(device_seed)
        self._failure_model = ActivationFailureModel(
            geometry, self._profile, self._variation
        )
        self._startup_model = StartupModel(geometry, self._variation)
        self._retention_model = RetentionModel(geometry, self._variation)
        self._temperature_c = 45.0
        self._vdd_ratio = 1.0
        self._epoch = 0
        self._plane: Optional[ProbabilityPlane] = None
        self._quac_model: Optional[QuacModel] = None
        self._serial = serial or f"{self._profile.name}-{device_seed & 0xFFFF:05d}"
        self._banks = [
            Bank(
                index=i,
                geometry=geometry,
                failure_model=self._failure_model,
                startup_model=self._startup_model,
                noise=self._noise,
                corrupt_on_failure=corrupt_on_failure,
                spec_trcd_ns=timings.trcd_ns,
                spec_trp_ns=timings.trp_ns,
            )
            for i in range(geometry.banks)
        ]

    # ------------------------------------------------------------------
    # Identity and state
    # ------------------------------------------------------------------

    @property
    def serial(self) -> str:
        """Human-readable device identifier, e.g. ``"B-00042"``."""
        return self._serial

    @property
    def manufacturer(self) -> Manufacturer:
        """This device's vendor."""
        return self._profile.manufacturer

    @property
    def profile(self) -> ManufacturerProfile:
        """Vendor behavior profile."""
        return self._profile

    @property
    def geometry(self) -> DeviceGeometry:
        """Device geometry."""
        return self._geometry

    @property
    def timings(self) -> TimingParameters:
        """Spec timing preset (the reference tRCD lives here)."""
        return self._timings

    @property
    def variation(self) -> VariationField:
        """Frozen manufacturing-variation field."""
        return self._variation

    @property
    def failure_model(self) -> ActivationFailureModel:
        """Analytic activation-failure model bound to this device."""
        return self._failure_model

    @property
    def startup_model(self) -> StartupModel:
        """Power-up value model bound to this device."""
        return self._startup_model

    @property
    def retention_model(self) -> RetentionModel:
        """Retention-failure model bound to this device."""
        return self._retention_model

    @property
    def noise(self) -> NoiseSource:
        """This device's per-access noise source."""
        return self._noise

    @property
    def temperature_c(self) -> float:
        """Current DRAM temperature in °C."""
        return self._temperature_c

    def set_temperature(self, temperature_c: float) -> None:
        """Set the device temperature (the thermal chamber's job)."""
        if not -40.0 <= temperature_c <= 125.0:
            raise ConfigurationError(
                f"temperature {temperature_c}°C outside plausible operating range"
            )
        if temperature_c != self._temperature_c:
            self._epoch += 1
            self._temperature_c = temperature_c

    @property
    def vdd_ratio(self) -> float:
        """Supply voltage relative to nominal (1.0 = spec VDD)."""
        return self._vdd_ratio

    def set_vdd_ratio(self, vdd_ratio: float) -> None:
        """Scale the supply voltage (reduced-voltage operation [30])."""
        if not 0.7 <= vdd_ratio <= 1.2:
            raise ConfigurationError(
                f"vdd_ratio {vdd_ratio} outside plausible operating range"
            )
        if vdd_ratio != self._vdd_ratio:
            self._epoch += 1
            self._vdd_ratio = vdd_ratio

    def power_cycle(self) -> None:
        """Power-cycle the device: every bank loses its stored state."""
        self._epoch += 1
        for bank in self._banks:
            bank.power_cycle()

    @property
    def state_epoch(self) -> int:
        """Monotonic counter over everything probability caches depend on.

        Combines the device-level epoch (temperature, voltage, power
        cycles) with every bank's stored-state epoch.  Compiled sampling
        plans and the :class:`~repro.dram.plane.ProbabilityPlane` record
        the epoch they were built at and treat any difference as stale.
        """
        return self._epoch + sum(bank.state_epoch for bank in self._banks)

    @property
    def plane(self) -> ProbabilityPlane:
        """The epoch-synced probability/stored-row cache for this device."""
        if self._plane is None:
            self._plane = ProbabilityPlane(self)
        return self._plane

    @property
    def quac_model(self) -> QuacModel:
        """Multi-row-activation charge-sharing model bound to this device.

        Shares the variation field and sense-amplifier strength with
        the activation-failure model, so the QUAC and D-RaNGe backends
        see the same silicon.
        """
        if self._quac_model is None:
            self._quac_model = QuacModel(
                self._geometry, self._profile, self._variation, self._failure_model
            )
        return self._quac_model

    def bank(self, index: int) -> Bank:
        """Access bank ``index``."""
        self._geometry.validate_bank(index)
        return self._banks[index]

    @property
    def banks(self) -> Sequence[Bank]:
        """All banks of the device."""
        return tuple(self._banks)

    def operating_point(self, trcd_ns: float) -> OperatingPoint:
        """Access conditions at the current temperature and voltage."""
        return OperatingPoint(
            trcd_ns=trcd_ns,
            temperature_c=self._temperature_c,
            vdd_ratio=self._vdd_ratio,
        )

    # ------------------------------------------------------------------
    # Command-level convenience
    # ------------------------------------------------------------------

    def probe_word(self, bank: int, row: int, word: int, trcd_ns: float) -> np.ndarray:
        """Behavioral ACT → READ → PRE of one word at ``trcd_ns``.

        This is what one inner-loop step of Algorithm 1 does to a closed
        row; returns the (possibly failure-flipped) read bits.
        """
        target = self.bank(bank)
        if target.open_row is not None:
            target.precharge()
        target.activate(row, trcd_ns=trcd_ns)
        bits = target.read(word, op=self.operating_point(trcd_ns))
        target.precharge()
        return bits

    def multi_activate(self, bank: int, rows: Iterable[int]) -> np.ndarray:
        """Behavioral QUAC op: ACT-PRE-ACT opening ``rows`` simultaneously.

        Resolves the per-column charge-sharing contest through the QUAC
        model (one Bernoulli draw per column), latches the sensed value
        into every participating row, and leaves ``rows[0]`` open for
        the subsequent READs.  Returns the sensed row as fresh bits.
        """
        target = self.bank(bank)
        rows_t = tuple(int(r) for r in rows)
        stored = np.stack([self.plane.row_stored(bank, row) for row in rows_t])
        probs = self.quac_model.one_probabilities(
            bank, rows_t, stored, self.operating_point(self._timings.trcd_ns)
        )
        sensed = self._noise.bernoulli(probs).astype(np.uint8)
        target.multi_activate(rows_t, sensed)
        return sensed

    def write_pattern(
        self,
        pattern: DataPattern,
        banks: Optional[Iterable[int]] = None,
        rows: Optional[Iterable[int]] = None,
    ) -> None:
        """Write ``pattern`` across a region at full (safe) latency."""
        bank_indices = list(banks) if banks is not None else range(self._geometry.banks)
        row_indices = (
            list(rows) if rows is not None else range(self._geometry.rows_per_bank)
        )
        num_cols = self._geometry.cols_per_row
        for bank_index in bank_indices:
            target = self.bank(bank_index)
            for row in row_indices:
                target.write_row(row, pattern.row_values(row, num_cols))

    # ------------------------------------------------------------------
    # Vectorized characterization fast paths
    # ------------------------------------------------------------------

    def row_failure_probabilities(
        self, bank: int, row: int, trcd_ns: float
    ) -> np.ndarray:
        """Failure probability of every cell in ``row`` as currently stored.

        Statistically identical to issuing many probe_word calls but
        computed analytically in one shot (and served from the
        :class:`~repro.dram.plane.ProbabilityPlane` while the stored
        state and operating point are unchanged); the workhorse behind
        the characterization experiments.
        """
        return self.plane.row_probabilities(
            bank, row, self.operating_point(trcd_ns)
        ).copy()

    def sample_row_fail_counts(
        self, bank: int, row: int, trcd_ns: float, iterations: int
    ) -> np.ndarray:
        """Failure counts per cell over ``iterations`` probes of ``row``.

        Matches Algorithm 1's refresh-then-reduced-read loop: conditions
        are identical each iteration, so the counts are binomial draws
        from the per-cell probabilities.
        """
        probs = self.plane.row_probabilities(
            bank, row, self.operating_point(trcd_ns)
        )
        return self._noise.binomial(iterations, probs)

    def sample_rows_fail_counts(
        self,
        bank: int,
        rows: Iterable[int],
        trcd_ns: float,
        iterations: int,
        out: Optional[np.ndarray] = None,
        noise: Optional[NoiseSource] = None,
    ) -> np.ndarray:
        """Failure counts for many rows of one bank in one binomial draw.

        Returns a ``(len(rows), cols_per_row)`` count matrix.  The draw
        consumes the noise stream exactly as per-row
        :meth:`sample_row_fail_counts` calls would, so seeded results
        are bit-identical to the per-row loop it replaces.

        ``out``, when given, receives the counts in place (it must be a
        ``(len(rows), cols_per_row)`` integer view) — the contract that
        lets parallel characterization workers write their tile of the
        caller's preallocated region array directly.  ``noise``
        substitutes a caller-owned stream (a
        :meth:`~repro.noise.NoiseSource.spawn_streams` child) for the
        device's own source; the device stream is left untouched.
        """
        op = self.operating_point(trcd_ns)
        plane = self.plane
        source = self._noise if noise is None else noise
        row_list = list(rows)
        cols = self._geometry.cols_per_row
        if not row_list:
            return (
                out
                if out is not None
                else np.zeros((0, cols), dtype=np.int64)
            )
        # One preallocated probability matrix, filled row-plane by
        # row-plane — no per-row intermediate list/stack churn.
        probs = np.empty((len(row_list), cols), dtype=np.float64)
        for i, row in enumerate(row_list):
            probs[i] = plane.row_probabilities(bank, row, op)
        counts = source.binomial(iterations, probs)
        if out is not None:
            out[...] = counts
            return out
        return counts

    def sample_cell_bits(
        self, bank: int, row: int, col: int, count: int, trcd_ns: float
    ) -> np.ndarray:
        """``count`` consecutive reduced-tRCD reads of one cell.

        Models Algorithm 2's steady state: the surrounding data pattern
        is held constant (write-back after every read), so each read is
        an independent Bernoulli flip of the stored bit.
        """
        self._geometry.validate_col(col)
        plane = self.plane
        stored_row = plane.row_stored(bank, row)
        probs = plane.row_probabilities(bank, row, self.operating_point(trcd_ns))
        flips = self._noise.bernoulli(np.full(count, probs[col]))
        stored_bit = int(stored_row[col])
        return np.where(flips, 1 - stored_bit, stored_bit).astype(np.uint8)

    # ------------------------------------------------------------------
    # Batched (compiled-plan) fast paths
    # ------------------------------------------------------------------

    def _validated_cells(self, cells: np.ndarray) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 2 or (cells.size and cells.shape[1] != 3):
            raise ConfigurationError(
                f"cells must be (N, 3) coordinates, got shape {cells.shape}"
            )
        if cells.size:
            geometry = self._geometry
            bounds = (geometry.banks, geometry.rows_per_bank, geometry.cols_per_row)
            if (cells < 0).any() or (cells >= np.asarray(bounds)).any():
                raise ConfigurationError(
                    "cell coordinates out of range for geometry "
                    f"({geometry.banks} banks × {geometry.rows_per_bank} rows "
                    f"× {geometry.cols_per_row} cols)"
                )
        return cells

    def cells_stored_bits(self, cells: np.ndarray) -> np.ndarray:
        """Stored bit of every (bank, row, col) in ``cells``."""
        cells = self._validated_cells(cells)
        plane = self.plane
        out = np.empty(len(cells), dtype=np.uint8)
        rows: dict = {}
        for i, (bank, row, col) in enumerate(cells):
            key = (int(bank), int(row))
            stored = rows.get(key)
            if stored is None:
                stored = plane.row_stored(*key)
                rows[key] = stored
            out[i] = stored[col]
        return out

    def cells_failure_probabilities(
        self, cells: np.ndarray, trcd_ns: float
    ) -> np.ndarray:
        """Failure probability of every (bank, row, col) in ``cells``.

        Per-row vectors come from the probability plane, so repeated
        compilation over the same rows (the steady state of Algorithm 2)
        costs one dictionary lookup per distinct row.
        """
        cells = self._validated_cells(cells)
        op = self.operating_point(trcd_ns)
        plane = self.plane
        out = np.empty(len(cells), dtype=np.float64)
        rows: dict = {}
        for i, (bank, row, col) in enumerate(cells):
            key = (int(bank), int(row))
            probs = rows.get(key)
            if probs is None:
                probs = plane.row_probabilities(key[0], key[1], op)
                rows[key] = probs
            out[i] = probs[col]
        return out

    def sample_cells_bits(
        self,
        cells: np.ndarray,
        count: int,
        trcd_ns: float,
        mixture: bool = False,
        probabilities: Optional[np.ndarray] = None,
        stored_bits: Optional[np.ndarray] = None,
        noise: Optional[NoiseSource] = None,
    ) -> np.ndarray:
        """``count`` reads of every cell in one batched draw.

        Returns a ``(count, N)`` iteration-major bit matrix — row ``i``
        holds iteration ``i``'s harvest across all cells, matching the
        order Algorithm 2 emits bits; column ``j`` is cell ``j``'s
        stream.

        ``mixture=False`` consumes the noise stream exactly as ``N``
        sequential :meth:`sample_cell_bits` calls (bit-identical for a
        seeded source) — the identification/verification contract.
        ``mixture=True`` uses the byte-plane mixture sampler
        (:meth:`~repro.noise.NoiseSource.bernoulli_plane`): the same
        exact per-cell Bernoulli distribution, an order of magnitude
        faster, but a different (still reproducible) seeded stream.

        ``probabilities``/``stored_bits`` let a caller holding a fresh
        :class:`~repro.core.plan.CompiledSamplePlan` snapshot skip the
        per-cell recompute; they must describe the same ``cells`` at the
        current ``state_epoch`` (the plan's staleness check guarantees
        this on the generation hot path).  ``noise`` substitutes a
        caller-owned stream for the device's source (the parallel
        identification path hands each worker a
        :meth:`~repro.noise.NoiseSource.spawn_streams` child).
        """
        cells = self._validated_cells(cells)
        source = self._noise if noise is None else noise
        probs = (
            probabilities
            if probabilities is not None
            else self.cells_failure_probabilities(cells, trcd_ns)
        )
        stored = (
            stored_bits
            if stored_bits is not None
            else self.cells_stored_bits(cells)
        )
        if mixture:
            # The stored-bit XOR is folded into the sampling threshold
            # (``invert``), so the draw directly yields read bits.
            flips = source.bernoulli_plane(probs, count, invert=stored)
            return flips.view(np.uint8)
        matrix = np.broadcast_to(probs[:, np.newaxis], (len(cells), count))
        flips = source.bernoulli(matrix)
        bits = np.where(
            flips, (1 - stored)[:, np.newaxis], stored[:, np.newaxis]
        ).astype(np.uint8)
        return np.ascontiguousarray(bits.T)


class DeviceFactory:
    """Mints independent :class:`DramDevice` instances from a master seed.

    The paper characterizes 282 LPDDR4 devices — roughly balanced across
    manufacturers — plus 4 DDR3 devices.  ``DeviceFactory`` is the
    reproduction's stand-in for that drawer of chips.
    """

    def __init__(
        self,
        master_seed: int = 2019,
        timings: Optional[TimingParameters] = None,
        noise_seed: Optional[int] = None,
        geometry: Optional[DeviceGeometry] = None,
        module: Optional[Union[str, DramModule]] = None,
    ) -> None:
        if module is not None:
            if timings is not None:
                raise ConfigurationError(
                    "pass either timings= or module=, not both"
                )
            timings = resolve_timings(module)
        self._master_seed = master_seed
        self._timings = timings if timings is not None else LPDDR4_3200
        self._geometry = geometry
        self._noise_root = NoiseSource(noise_seed)
        # Characterization artifacts keyed per (device, backend): the
        # D-RaNGe and QUAC mechanisms probe different physics, so a
        # profile must never cross backends, and either backend's device
        # mutations (pattern writes bump the epoch) invalidate both.
        self._profiles: Dict[Tuple[str, str], "BackendProfile"] = {}

    def characterize(
        self, device: DramDevice, backend: "TrngBackend", **kwargs
    ) -> "BackendProfile":
        """Backend-specific characterization, cached per (device, backend).

        Re-runs ``backend.characterize(device, **kwargs)`` only when no
        fresh profile exists.  Freshness is the backend profile's own
        epoch contract (``profile.is_stale(device)``): any stored-state
        mutation — including *another* backend's characterization
        writing its data pattern — invalidates every cached profile of
        the device, for every backend.
        """
        key = (device.serial, str(backend.name))
        cached = self._profiles.get(key)
        if cached is not None and not cached.is_stale(device):
            return cached
        profile = backend.characterize(device, **kwargs)
        self._profiles[key] = profile
        return profile

    def cached_profiles(self) -> Dict[Tuple[str, str], "BackendProfile"]:
        """Snapshot of the characterization cache (keys: serial, backend)."""
        return dict(self._profiles)

    def make_device(self, manufacturer, index: int = 0, **kwargs) -> DramDevice:
        """Create device ``index`` of ``manufacturer``'s population.

        ``module=`` (a catalog part name or
        :class:`~repro.dram.modules.DramModule`) overrides the factory
        timings for this one device; mutually exclusive with a
        ``timings=`` override.
        """
        module = kwargs.pop("module", None)
        if module is not None:
            if "timings" in kwargs:
                raise ConfigurationError(
                    "pass either timings= or module=, not both"
                )
            kwargs["timings"] = resolve_timings(module)
        profile = profile_for(manufacturer)
        seed = int(
            hash_u64(
                np.uint64(self._master_seed),
                np.uint64(ord(profile.name[0])),
                np.uint64(index),
            )
        )
        return DramDevice(
            device_seed=seed,
            manufacturer=profile,
            geometry=kwargs.pop("geometry", self._geometry),
            timings=kwargs.pop("timings", self._timings),
            noise=kwargs.pop("noise", self._noise_root.spawn()),
            serial=f"{profile.name}-{index:05d}",
            **kwargs,
        )

    def population(self, per_manufacturer: int, **kwargs) -> List[DramDevice]:
        """A balanced device population across manufacturers A, B, C."""
        if per_manufacturer <= 0:
            raise ConfigurationError(
                f"per_manufacturer must be positive, got {per_manufacturer}"
            )
        devices = []
        for manufacturer in Manufacturer:
            for index in range(per_manufacturer):
                devices.append(self.make_device(manufacturer, index, **kwargs))
        return devices
