"""Behavioral model of commodity DRAM devices.

This package is the reproduction's substitute for the paper's physical
LPDDR4/DDR3 test infrastructure.  It models:

* the device hierarchy (channel → rank → chip → bank → subarray → row →
  cell) in :mod:`repro.dram.geometry` and :mod:`repro.dram.topology`,
* JEDEC timing parameters and presets in :mod:`repro.dram.timing`,
* frozen manufacturing variation in :mod:`repro.dram.variation`,
* the analytic bitline-development / activation-failure model in
  :mod:`repro.dram.cell` and :mod:`repro.dram.failures`,
* per-manufacturer behavior (A/B/C) in :mod:`repro.dram.manufacturer`,
* the 40 characterization data patterns in :mod:`repro.dram.datapattern`,
* command-level bank and device behavior in :mod:`repro.dram.bank` and
  :mod:`repro.dram.device`,
* the declarative part catalog (named DDR3/DDR4/LPDDR4/LPDDR4X modules
  with per-speedgrade ns → cycle derivation) in
  :mod:`repro.dram.modules`, and
* retention/startup failure models used by prior-work baselines in
  :mod:`repro.dram.retention` and :mod:`repro.dram.startup`.
"""

from repro.dram.commands import Command, CommandKind
from repro.dram.datapattern import DataPattern, all_characterization_patterns
from repro.dram.device import DeviceFactory, DramDevice
from repro.dram.geometry import CellCoord, DeviceGeometry
from repro.dram.manufacturer import MANUFACTURERS, Manufacturer, ManufacturerProfile
from repro.dram.modules import (
    MODULES,
    DramModule,
    SpeedGrade,
    get_module,
    list_modules,
    resolve_timings,
)
from repro.dram.timing import DDR3_1600, LPDDR4_3200, TimingParameters
from repro.dram.topology import Channel, Rank

__all__ = [
    "CellCoord",
    "Channel",
    "Command",
    "CommandKind",
    "DDR3_1600",
    "DataPattern",
    "DeviceFactory",
    "DeviceGeometry",
    "DramDevice",
    "DramModule",
    "LPDDR4_3200",
    "MANUFACTURERS",
    "MODULES",
    "Manufacturer",
    "ManufacturerProfile",
    "Rank",
    "SpeedGrade",
    "TimingParameters",
    "all_characterization_patterns",
    "get_module",
    "list_modules",
    "resolve_timings",
]
