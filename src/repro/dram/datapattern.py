"""The 40 characterization data patterns of Section 5.2.

Following the paper (and the retention-study methodology it cites
[91, 112]), the pattern set is: solid 1s, checkered, row stripe, column
stripe, 16 walking-1s shifts, and the bitwise inverses of all twenty —
40 unique patterns in total.

A :class:`DataPattern` is a pure function from cell coordinates to the
bit written there, evaluated vectorized over NumPy row/column arrays so
whole regions can be initialized at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.errors import ConfigurationError

#: Width of the repeating unit for walking patterns (16, per Section 5.2).
WALKING_UNIT_BITS = 16

_PatternFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class DataPattern:
    """A deterministic data pattern over the DRAM cell grid."""

    name: str
    _fn: _PatternFn

    def values(self, rows, cols) -> np.ndarray:
        """Bits written at the broadcast combination of ``rows``/``cols``.

        Returns a uint8 array of 0/1 with the broadcast shape of the
        inputs.
        """
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        out = self._fn(rows_arr, cols_arr)
        return out.astype(np.uint8)

    def row_values(self, row: int, num_cols: int) -> np.ndarray:
        """Bits for one full row of ``num_cols`` cells."""
        return self.values(np.int64(row), np.arange(num_cols))

    def grid(self, num_rows: int, num_cols: int) -> np.ndarray:
        """Full (num_rows, num_cols) bit grid for this pattern."""
        rows = np.arange(num_rows)[:, None]
        cols = np.arange(num_cols)[None, :]
        return self.values(rows, cols)

    def inverse(self) -> "DataPattern":
        """The bitwise inverse of this pattern."""
        base_name = self.name
        if base_name.endswith("_inv"):
            inv_name = base_name[: -len("_inv")]
        else:
            inv_name = base_name + "_inv"
        fn = self._fn
        return DataPattern(inv_name, lambda r, c: 1 - fn(r, c))


def _solid(value: int) -> _PatternFn:
    return lambda rows, cols: np.broadcast_to(
        np.uint8(value), np.broadcast_shapes(np.shape(rows), np.shape(cols))
    ).copy()


def solid(value: int) -> DataPattern:
    """Solid pattern: every cell stores ``value``."""
    if value not in (0, 1):
        raise ConfigurationError(f"solid pattern value must be 0 or 1, got {value}")
    return DataPattern(f"solid{value}", _solid(value))


def checkered(phase: int = 0) -> DataPattern:
    """Checkerboard; ``phase``=0 puts a 1 at (0, 0) ("checkered 1s")."""
    if phase not in (0, 1):
        raise ConfigurationError(f"checkered phase must be 0 or 1, got {phase}")
    name = "checkered1" if phase == 0 else "checkered0"
    return DataPattern(name, lambda rows, cols: ((rows + cols + 1 + phase) % 2))


def row_stripe(phase: int = 0) -> DataPattern:
    """Alternating rows of 1s and 0s; ``phase``=0 makes row 0 all 1s."""
    if phase not in (0, 1):
        raise ConfigurationError(f"row_stripe phase must be 0 or 1, got {phase}")
    name = "rowstripe" if phase == 0 else "rowstripe_inv"

    def fn(rows, cols):
        stripe = (rows + 1 + phase) % 2
        return np.broadcast_to(
            stripe, np.broadcast_shapes(np.shape(rows), np.shape(cols))
        ).copy()

    return DataPattern(name, fn)


def col_stripe(phase: int = 0) -> DataPattern:
    """Alternating columns of 1s and 0s; ``phase``=0 makes col 0 all 1s."""
    if phase not in (0, 1):
        raise ConfigurationError(f"col_stripe phase must be 0 or 1, got {phase}")
    name = "colstripe" if phase == 0 else "colstripe_inv"

    def fn(rows, cols):
        stripe = (cols + 1 + phase) % 2
        return np.broadcast_to(
            stripe, np.broadcast_shapes(np.shape(rows), np.shape(cols))
        ).copy()

    return DataPattern(name, fn)


def walking(shift: int, walk_value: int = 1) -> DataPattern:
    """Walking pattern: ``walk_value`` at one position per 16-bit unit.

    ``walking(k, 1)`` writes a 1 wherever ``col % 16 == k`` and 0
    elsewhere ("walking 1s", mostly-0 background); ``walking(k, 0)`` is
    its inverse ("walking 0s", mostly-1 background).
    """
    if not 0 <= shift < WALKING_UNIT_BITS:
        raise ConfigurationError(
            f"walking shift must be in [0, {WALKING_UNIT_BITS}), got {shift}"
        )
    if walk_value not in (0, 1):
        raise ConfigurationError(f"walk_value must be 0 or 1, got {walk_value}")
    name = f"walk{walk_value}_{shift:02d}"

    def fn(rows, cols):
        at_shift = (cols % WALKING_UNIT_BITS) == shift
        bit = np.where(at_shift, walk_value, 1 - walk_value)
        return np.broadcast_to(
            bit, np.broadcast_shapes(np.shape(rows), np.shape(cols))
        ).copy()

    return DataPattern(name, fn)


def all_characterization_patterns() -> List[DataPattern]:
    """The full 40-pattern set of Section 5.2, in a stable order."""
    base = [
        solid(1),
        solid(0),
        checkered(0),
        checkered(1),
        row_stripe(0),
        row_stripe(1),
        col_stripe(0),
        col_stripe(1),
    ]
    base += [walking(k, 1) for k in range(WALKING_UNIT_BITS)]
    base += [walking(k, 0) for k in range(WALKING_UNIT_BITS)]
    return base


def pattern_registry() -> Dict[str, DataPattern]:
    """Name → pattern mapping over the characterization set."""
    return {pattern.name: pattern for pattern in all_characterization_patterns()}


def pattern_by_name(name: str) -> DataPattern:
    """Look up a characterization pattern by its canonical name."""
    registry = pattern_registry()
    try:
        return registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown data pattern {name!r}; known: {sorted(registry)}"
        ) from None


#: The per-manufacturer pattern the paper selects for RNG-cell work
#: (Section 5.2: the pattern finding the most cells with Fprob≈50%).
BEST_RNG_PATTERN = {"A": "solid0", "B": "checkered0", "C": "solid0"}
