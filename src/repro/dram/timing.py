"""JEDEC-style DRAM timing parameters and standard presets.

Only the parameters that matter for this reproduction are modeled: the
row-activation chain (tRCD, tRAS, tRP), bank-group/rank-level pacing
(tRRD, tFAW), the read/write data path (tCL, tCWL, tCCD, tRTP, tWR,
tWTR, burst length) and refresh (tREFI, tRFC).  Values follow the JEDEC
LPDDR4 [63] and DDR3 [62] specifications cited by the paper.

The memory controller applies these in whole clock cycles; the presets
carry the I/O clock so conversions stay attached to the standard.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import ns_to_cycles


@dataclass(frozen=True)
class TimingParameters:
    """One complete set of DRAM timing constraints, in nanoseconds.

    ``clock_mhz`` is the command-bus clock used to quantize constraints
    into cycles.  ``data_rate_mtps`` is the data-bus transfer rate in
    mega-transfers/s (double data rate ⇒ 2× the data clock).
    """

    name: str
    clock_mhz: float
    data_rate_mtps: float
    burst_length: int
    trcd_ns: float
    tras_ns: float
    trp_ns: float
    tcl_ns: float
    tcwl_ns: float
    tccd_ns: float
    trtp_ns: float
    twr_ns: float
    twtr_ns: float
    trrd_ns: float
    tfaw_ns: float
    trefi_ns: float
    trfc_ns: float
    #: Long (same-bank-group) variants; None disables bank-group rules
    #: (LPDDR4/DDR3 have no bank groups).
    tccd_l_ns: float = None
    trrd_l_ns: float = None
    bank_groups: int = 1

    def __post_init__(self) -> None:
        for field_name in (
            "clock_mhz",
            "data_rate_mtps",
            "trcd_ns",
            "tras_ns",
            "trp_ns",
            "tcl_ns",
            "tcwl_ns",
            "tccd_ns",
            "trtp_ns",
            "twr_ns",
            "twtr_ns",
            "trrd_ns",
            "tfaw_ns",
            "trefi_ns",
            "trfc_ns",
        ):
            value = getattr(self, field_name)
            if value <= 0:
                raise ConfigurationError(f"{field_name} must be positive, got {value}")
        if self.burst_length <= 0:
            raise ConfigurationError(
                f"burst_length must be positive, got {self.burst_length}"
            )
        if self.bank_groups <= 0:
            raise ConfigurationError(
                f"bank_groups must be positive, got {self.bank_groups}"
            )
        if self.bank_groups > 1:
            if self.tccd_l_ns is None or self.trrd_l_ns is None:
                raise ConfigurationError(
                    "bank-grouped devices need tccd_l_ns and trrd_l_ns"
                )
            if self.tccd_l_ns < self.tccd_ns or self.trrd_l_ns < self.trrd_ns:
                raise ConfigurationError(
                    "long (same-group) constraints cannot be shorter than "
                    "the short (cross-group) ones"
                )

    @property
    def trc_ns(self) -> float:
        """Row cycle time: minimum ACT-to-ACT delay to the same bank."""
        return self.tras_ns + self.trp_ns

    @property
    def burst_ns(self) -> float:
        """Time to transfer one burst on the data bus."""
        return self.burst_length * 1e3 / self.data_rate_mtps

    def cycles(self, field_name: str) -> int:
        """Constraint ``field_name`` quantized to command-clock cycles."""
        return ns_to_cycles(getattr(self, field_name), self.clock_mhz)

    def with_trcd(self, trcd_ns: float) -> "TimingParameters":
        """Copy of these timings with ``tRCD`` overridden.

        This is the knob D-RaNGe turns: the returned set is *below spec*
        whenever ``trcd_ns`` is below the preset value, which the device
        model answers with probabilistic activation failures rather than
        an error.
        """
        if trcd_ns <= 0:
            raise ConfigurationError(f"trcd_ns must be positive, got {trcd_ns}")
        return replace(self, trcd_ns=trcd_ns)

    def is_reduced_trcd(self, reference: "TimingParameters") -> bool:
        """True when this set's tRCD is below ``reference``'s spec value."""
        return self.trcd_ns < reference.trcd_ns


#: LPDDR4-3200 — the paper's primary device class (JEDEC [63]).
LPDDR4_3200 = TimingParameters(
    name="LPDDR4-3200",
    clock_mhz=1600.0,
    data_rate_mtps=3200.0,
    burst_length=16,
    trcd_ns=18.0,
    tras_ns=42.0,
    trp_ns=18.0,
    tcl_ns=18.0,
    tcwl_ns=9.0,
    tccd_ns=5.0,
    trtp_ns=7.5,
    twr_ns=18.0,
    twtr_ns=10.0,
    trrd_ns=10.0,
    tfaw_ns=40.0,
    trefi_ns=3904.0,
    trfc_ns=180.0,
)

#: DDR3-1600 — used for the paper's cross-validation devices (JEDEC [62]).
DDR3_1600 = TimingParameters(
    name="DDR3-1600",
    clock_mhz=800.0,
    data_rate_mtps=1600.0,
    burst_length=8,
    trcd_ns=13.75,
    tras_ns=35.0,
    trp_ns=13.75,
    tcl_ns=13.75,
    tcwl_ns=10.0,
    tccd_ns=5.0,
    trtp_ns=7.5,
    twr_ns=15.0,
    twtr_ns=7.5,
    trrd_ns=6.0,
    tfaw_ns=30.0,
    trefi_ns=7800.0,
    trfc_ns=160.0,
)

#: DDR4-2400 — a common desktop part, for cross-technology studies.
#: DDR4 introduces bank groups: consecutive column commands (tCCD) and
#: activations (tRRD) within one group pay the *long* constraint.
DDR4_2400 = TimingParameters(
    name="DDR4-2400",
    clock_mhz=1200.0,
    data_rate_mtps=2400.0,
    burst_length=8,
    trcd_ns=14.16,
    tras_ns=32.0,
    trp_ns=14.16,
    tcl_ns=14.16,
    tcwl_ns=10.0,
    tccd_ns=3.33,
    trtp_ns=7.5,
    twr_ns=15.0,
    twtr_ns=7.5,
    trrd_ns=3.3,
    tfaw_ns=21.0,
    trefi_ns=7800.0,
    trfc_ns=350.0,
    tccd_l_ns=5.0,
    trrd_l_ns=4.9,
    bank_groups=4,
)

#: The tRCD window in which the paper observed activation failures
#: (Section 7.3: 6 ns to 13 ns, reduced from the default 18 ns).
FAILURE_TRCD_WINDOW_NS = (6.0, 13.0)

#: tRCD used for all characterization experiments (Section 4).
CHARACTERIZATION_TRCD_NS = 10.0
