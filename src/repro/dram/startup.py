"""DRAM power-up (startup-value) behavior.

Used in two places:

* lazily initializing bank contents that are read before ever being
  written (real DRAM powers up into process-variation-determined state);
* the Tehranipoor+ [144] / Eckert+ [39] startup-value TRNG baseline
  (Section 8.3), which harvests entropy from the subset of cells whose
  power-up value is *not* reproducible.

Model: each cell has a frozen power-up bias.  Most cells latch the same
value on every power cycle; a small fraction (``random_fraction``) sit
near the metastable point and latch a fresh random value each cycle.
Tehranipoor+ report roughly 420 Kbit of harvestable entropy per MiB,
i.e. ~5% of cells, which is the default here.
"""

from __future__ import annotations

import numpy as np

from repro.dram.geometry import DeviceGeometry
from repro.dram.variation import DomainTag, VariationField
from repro.noise import NoiseSource

#: Default fraction of cells whose startup value is random per cycle
#: (≈ 420 Kbit per MiB, Section 8.3).
DEFAULT_RANDOM_FRACTION = 0.05


class StartupModel:
    """Per-cell power-up values for one device."""

    def __init__(
        self,
        geometry: DeviceGeometry,
        variation: VariationField,
        random_fraction: float = DEFAULT_RANDOM_FRACTION,
    ) -> None:
        if not 0.0 <= random_fraction <= 1.0:
            raise ValueError(
                f"random_fraction must be in [0, 1], got {random_fraction}"
            )
        self._geometry = geometry
        self._variation = variation
        self._random_fraction = random_fraction

    @property
    def random_fraction(self) -> float:
        """Fraction of cells that power up to a fresh random value."""
        return self._random_fraction

    def bias_bits(self, bank: int, row: int, cols) -> np.ndarray:
        """The frozen value a stable cell latches on every power-up."""
        u = self._variation.cell_uniform(DomainTag.STARTUP_BIAS, bank, row, cols)
        return (u < 0.5).astype(np.uint8)

    def is_random_cell(self, bank: int, row: int, cols) -> np.ndarray:
        """Boolean mask of cells whose power-up value is per-cycle random."""
        u = self._variation.cell_uniform(DomainTag.STARTUP_NOISE, bank, row, cols)
        return u < self._random_fraction

    def power_up_row(self, bank: int, row: int, noise: NoiseSource) -> np.ndarray:
        """Values of one whole row immediately after a power cycle."""
        cols = np.arange(self._geometry.cols_per_row)
        bits = self.bias_bits(bank, row, cols)
        random_mask = self.is_random_cell(bank, row, cols)
        if random_mask.any():
            flips = noise.bernoulli(np.full(int(random_mask.sum()), 0.5))
            bits = bits.copy()
            bits[random_mask] = flips.astype(np.uint8)
        return bits
