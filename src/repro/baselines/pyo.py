"""Pyo+ [116]: TRNG from DRAM command-scheduling non-determinism.

The design times ordinary DRAM accesses with the CPU cycle counter;
contention between access streams and refresh operations (plus
controller queueing) perturbs the measured latency, and low-order bits
of the latency samples are harvested.

The paper's critique (Section 8.1), which this model reproduces:

* the entropy source is the processor/controller *implementation*, not
  a physical process — most of the latency variation here is a
  deterministic function of where an access lands in the tREFI grid,
  visible to (and influenceable by) an adversary;
* throughput is limited to one byte per ~45,000 CPU cycles, i.e.
  3.40 Mb/s even on a generously scaled modern system (5 GHz, four
  channels).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import DramTrng, TrngProperties
from repro.dram.timing import LPDDR4_3200, TimingParameters
from repro.errors import ConfigurationError
from repro.noise import NoiseSource

#: CPU cycles the original work needs per harvested byte.
CYCLES_PER_BYTE = 45_000

#: Scaled system configuration the paper grants the design (Section 8.1).
SCALED_CPU_GHZ = 5.0
SCALED_CHANNELS = 4

#: Small genuine jitter (ns) in measured latency — crossing clock
#: domains contributes a little true entropy; the dominant variation
#: stays deterministic.
TRUE_JITTER_NS = 0.08


class CommandScheduleTrng(DramTrng):
    """Latency-timing TRNG over a simulated refresh-contended channel."""

    def __init__(
        self,
        timings: TimingParameters = LPDDR4_3200,
        cpu_ghz: float = SCALED_CPU_GHZ,
        noise: Optional[NoiseSource] = None,
        access_gap_ns: float = 120.0,
    ) -> None:
        if cpu_ghz <= 0:
            raise ConfigurationError(f"cpu_ghz must be positive, got {cpu_ghz}")
        if access_gap_ns <= 0:
            raise ConfigurationError(
                f"access_gap_ns must be positive, got {access_gap_ns}"
            )
        self._timings = timings
        self._cpu_ghz = cpu_ghz
        self._noise = noise if noise is not None else NoiseSource()
        self._access_gap_ns = access_gap_ns
        self._phase_ns = 0.0

    @property
    def properties(self) -> TrngProperties:
        return TrngProperties(
            name="Pyo+",
            year=2009,
            entropy_source="Command Schedule",
            true_random=False,
            streaming_capable=True,
        )

    def measure_latencies_ns(self, count: int) -> np.ndarray:
        """Latency of ``count`` back-to-back timed accesses.

        Deterministic base latency plus a refresh-collision penalty
        that depends on the access's phase within the tREFI grid, plus
        a small true clock-domain jitter.
        """
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        t = self._timings
        base = t.trcd_ns + t.tcl_ns + t.burst_ns
        starts = self._phase_ns + np.arange(count) * self._access_gap_ns
        self._phase_ns = float(starts[-1] + self._access_gap_ns) % t.trefi_ns
        phase = starts % t.trefi_ns
        refresh_penalty = np.where(phase < t.trfc_ns, t.trfc_ns - phase, 0.0)
        jitter = self._noise.gaussian(count, TRUE_JITTER_NS)
        return base + refresh_penalty + jitter

    def generate(self, num_bits: int) -> np.ndarray:
        """Harvest the LSB of each measured latency in CPU cycles."""
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        latencies = self.measure_latencies_ns(num_bits)
        cycles = np.round(latencies * self._cpu_ghz).astype(np.int64)
        return (cycles & 1).astype(np.uint8)

    def latency_64bit_ns(self) -> float:
        """64 bits = 8 bytes at 45,000 cycles/byte (the paper's 18 µs)."""
        return 8 * CYCLES_PER_BYTE / self._cpu_ghz

    def energy_per_bit_j(self) -> float:
        """Not attributable: depends on the whole CPU system (Table 2: N/A)."""
        return float("nan")

    def peak_throughput_mbps(self) -> float:
        """One byte per 45,000 cycles, scaled to 4 channels (3.40 Mb/s)."""
        bytes_per_second = self._cpu_ghz * 1e9 / CYCLES_PER_BYTE
        return bytes_per_second * 8 * SCALED_CHANNELS / 1e6
