"""Keller+ [65] / Sutar+ [141]: TRNG from DRAM data-retention failures.

The design disables refresh over a DRAM block for tens of seconds,
reads the block back, and conditions the decay-failure bitmap (whose
variable-retention-time jitter carries true entropy) through a hash
into fixed-size random words — Sutar+ extract 256 bits per 4 MiB block
per 40-second pause.

The paper's critique (Section 8.2), reproduced here: the wait time
makes the design orders of magnitude slower than D-RaNGe — 0.05 Mb/s
peak even optimistically assuming 32 GiB of DRAM decaying in parallel —
with a 40 s cold-start latency and ~6.8 mJ per bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import DramTrng, TrngProperties
from repro.dram.device import DramDevice
from repro.errors import ConfigurationError
from repro.postprocess import sha256_condition
from repro.power.idd import LPDDR4_IDD, IddSpec

#: Sutar+ parameters (Section 8.2).
PAUSE_S = 40.0
BLOCK_MIB = 4.0
OUTPUT_BITS_PER_BLOCK = 256

#: The paper's optimistic whole-system assumption for peak throughput.
ASSUMED_DRAM_GIB = 32.0


class RetentionTrng(DramTrng):
    """Refresh-pause TRNG over a behavioral device's retention model."""

    def __init__(
        self,
        device: DramDevice,
        pause_s: float = PAUSE_S,
        rows_per_block: int = 64,
        temperature_c: Optional[float] = None,
        idd: IddSpec = LPDDR4_IDD,
    ) -> None:
        if pause_s <= 0:
            raise ConfigurationError(f"pause_s must be positive, got {pause_s}")
        if rows_per_block <= 0:
            raise ConfigurationError(
                f"rows_per_block must be positive, got {rows_per_block}"
            )
        self._device = device
        self._pause_s = pause_s
        self._rows_per_block = min(rows_per_block, device.geometry.rows_per_bank)
        self._temperature_c = (
            temperature_c if temperature_c is not None else device.temperature_c
        )
        self._idd = idd

    @property
    def properties(self) -> TrngProperties:
        return TrngProperties(
            name="Sutar+",
            year=2018,
            entropy_source="Data Retention",
            true_random=True,
            streaming_capable=True,
        )

    def decay_block(self, bank: int = 0) -> np.ndarray:
        """One pause-and-read round: the block's decayed bits.

        Writes all-ones (charged state), simulates ``pause_s`` seconds
        without refresh through the retention model, and returns the
        read-back block.
        """
        geometry = self._device.geometry
        retention = self._device.retention_model
        noise = self._device.noise
        rows = []
        ones = np.ones(geometry.cols_per_row, dtype=np.uint8)
        for row in range(self._rows_per_block):
            decayed = retention.decay_row(
                bank, row, ones, self._pause_s, self._temperature_c, noise
            )
            rows.append(decayed)
        return np.concatenate(rows)

    def generate(self, num_bits: int) -> np.ndarray:
        """Hash pause-round failure bitmaps into output bits."""
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        out = []
        produced = 0
        bank = 0
        while produced < num_bits:
            block = self.decay_block(bank=bank)
            chunk = sha256_condition(block, OUTPUT_BITS_PER_BLOCK)
            out.append(chunk)
            produced += chunk.size
            bank = (bank + 1) % self._device.geometry.banks
        return np.concatenate(out)[:num_bits]

    def latency_64bit_ns(self) -> float:
        """Nothing comes out before the first pause completes (40 s)."""
        return self._pause_s * 1e9

    def energy_per_bit_j(self) -> float:
        """Background (active-standby) energy of the pause per output bit.

        Writing and reading the block is negligible next to keeping the
        device powered for 40 s; this reproduces the paper's ~6.8 mJ/bit
        order of magnitude.
        """
        pause_ns = self._pause_s * 1e9
        background_j = self._idd.vdd * self._idd.idd3n * pause_ns * 1e-12
        # Only the 4 MiB block of interest is charged to the experiment,
        # per the paper's own constrained estimate.
        return background_j / OUTPUT_BITS_PER_BLOCK

    def peak_throughput_mbps(self) -> float:
        """The paper's optimistic estimate: whole-DRAM parallel decay."""
        blocks = ASSUMED_DRAM_GIB * 1024.0 / BLOCK_MIB
        bits_per_pause = blocks * OUTPUT_BITS_PER_BLOCK
        return bits_per_pause / self._pause_s / 1e6
