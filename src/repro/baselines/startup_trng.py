"""Tehranipoor+ [144] / Eckert+ [39]: TRNG from DRAM startup values.

On power-up, DRAM cells latch values determined mostly by process
variation — but a subset of cells sits near the metastable point and
latches a fresh random value each cycle.  Tehranipoor+ harvest roughly
420 Kbit of entropy per MiB of startup data.

The paper's critique (Section 8.3), reproduced here: the design cannot
stream — every batch of bits costs a *full power cycle* (and the DRAM
initialization sequence), so it fails the continuous-operation
requirement; its energy per bit is low (the paper estimates ~245.9 pJ
per bit, charitably ignoring initialization), but its throughput column
is N/A.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DramTrng, TrngProperties
from repro.dram.device import DramDevice
from repro.errors import ConfigurationError
from repro.power.idd import LPDDR4_IDD, IddSpec

#: Entropy the original work extracts per MiB of startup data.
KBIT_PER_MIB = 420.0

#: Single-read latency the paper grants the design (ignoring the whole
#: DRAM initialization sequence before it).
OPTIMISTIC_READ_NS = 60.0


class StartupTrng(DramTrng):
    """Power-cycle TRNG over a behavioral device's startup model."""

    def __init__(
        self,
        device: DramDevice,
        rows_per_cycle: int = 64,
        idd: IddSpec = LPDDR4_IDD,
    ) -> None:
        if rows_per_cycle <= 0:
            raise ConfigurationError(
                f"rows_per_cycle must be positive, got {rows_per_cycle}"
            )
        self._device = device
        self._rows_per_cycle = min(rows_per_cycle, device.geometry.rows_per_bank)
        self._idd = idd
        self._random_cells = None

    @property
    def properties(self) -> TrngProperties:
        return TrngProperties(
            name="Tehranipoor+",
            year=2016,
            entropy_source="Startup Values",
            true_random=True,
            streaming_capable=False,
        )

    def _locate_random_cells(self) -> np.ndarray:
        """Mask of metastable startup cells in the harvest region.

        In the original work these are enrolled by comparing several
        power-ups; here the startup model exposes them directly and the
        enrollment comparison is exercised by the tests.
        """
        if self._random_cells is None:
            geometry = self._device.geometry
            cols = np.arange(geometry.cols_per_row)
            masks = [
                self._device.startup_model.is_random_cell(0, row, cols)
                for row in range(self._rows_per_cycle)
            ]
            self._random_cells = np.concatenate(masks)
        return self._random_cells

    def harvest_one_cycle(self) -> np.ndarray:
        """Power-cycle the device and read the enrolled cells' values."""
        self._device.power_cycle()
        geometry = self._device.geometry
        bank = self._device.bank(0)
        values = np.concatenate(
            [bank.stored_row(row) for row in range(self._rows_per_cycle)]
        )
        return values[self._locate_random_cells()].astype(np.uint8)

    def generate(self, num_bits: int) -> np.ndarray:
        """Repeated power cycles until ``num_bits`` are collected."""
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        chunks = []
        produced = 0
        while produced < num_bits:
            chunk = self.harvest_one_cycle()
            if chunk.size == 0:
                raise ConfigurationError(
                    "harvest region contains no metastable startup cells"
                )
            chunks.append(chunk)
            produced += chunk.size
        return np.concatenate(chunks)[:num_bits]

    def latency_64bit_ns(self) -> float:
        """The paper's optimistic bound: one DRAM read, > 60 ns."""
        return OPTIMISTIC_READ_NS

    def energy_per_bit_j(self) -> float:
        """Energy to read 1 MiB over the harvested entropy (~246 pJ/bit).

        Mirrors the paper's estimate: the read burst energy of scanning
        one MiB divided by the 420 Kbit it yields, ignoring
        initialization energy.
        """
        reads = 1024.0 * 1024.0 * 8.0 / 512.0  # 512-bit words per MiB
        burst_ns = 5.0
        read_j = (
            reads
            * self._idd.vdd
            * (self._idd.idd4r - self._idd.idd3n)
            * burst_ns
            * 1e-12
        )
        return read_j / (KBIT_PER_MIB * 1000.0)

    def peak_throughput_mbps(self) -> float:
        """Not streaming capable: throughput is undefined (Table 2: N/A)."""
        return float("nan")
