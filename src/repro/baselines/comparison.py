"""Table 2: comparison of DRAM-based TRNG proposals.

Builds the paper's comparison rows — entropy source, true-randomness,
streaming capability, 64-bit latency, energy per bit, peak throughput —
for the four prior designs plus D-RaNGe, and formats them the way the
paper prints Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.base import DramTrng, TrngProperties


@dataclass(frozen=True)
class ComparisonRow:
    """One Table 2 row."""

    properties: TrngProperties
    latency_64bit_ns: float
    energy_per_bit_j: float
    peak_throughput_mbps: float

    @staticmethod
    def _format_latency(ns: float) -> str:
        if math.isnan(ns):
            return "N/A"
        if ns >= 1e9:
            return f"{ns / 1e9:.0f}s"
        if ns >= 1e3:
            return f"{ns / 1e3:.1f}us"
        return f"{ns:.0f}ns"

    @staticmethod
    def _format_energy(joules: float) -> str:
        if math.isnan(joules):
            return "N/A"
        if joules >= 1e-3:
            return f"{joules * 1e3:.1f}mJ/bit"
        if joules >= 1e-6:
            return f"{joules * 1e6:.1f}uJ/bit"
        if joules >= 1e-9:
            return f"{joules * 1e9:.1f}nJ/bit"
        return f"{joules * 1e12:.1f}pJ/bit"

    @staticmethod
    def _format_throughput(mbps: float) -> str:
        if math.isnan(mbps):
            return "N/A"
        return f"{mbps:.2f}Mb/s"

    def cells(self) -> List[str]:
        """Row cells in Table 2 column order."""
        p = self.properties
        return [
            p.name,
            str(p.year),
            p.entropy_source,
            "yes" if p.true_random else "no",
            "yes" if p.streaming_capable else "no",
            self._format_latency(self.latency_64bit_ns),
            self._format_energy(self.energy_per_bit_j),
            self._format_throughput(self.peak_throughput_mbps),
        ]


_HEADER = [
    "Proposal",
    "Year",
    "Entropy Source",
    "True Random",
    "Streaming",
    "64-bit Latency",
    "Energy",
    "Peak Throughput",
]


def comparison_row(trng: DramTrng) -> ComparisonRow:
    """Evaluate one design into its Table 2 row."""
    return ComparisonRow(
        properties=trng.properties,
        latency_64bit_ns=trng.latency_64bit_ns(),
        energy_per_bit_j=trng.energy_per_bit_j(),
        peak_throughput_mbps=trng.peak_throughput_mbps(),
    )


def comparison_table(
    trngs: Sequence[DramTrng],
    extra_rows: Optional[Sequence[ComparisonRow]] = None,
) -> str:
    """Render Table 2 as aligned text.

    ``extra_rows`` lets the caller append rows built from other models
    (the D-RaNGe row comes from the core throughput/latency/energy
    pipelines rather than a ``DramTrng`` adapter).
    """
    rows = [comparison_row(t).cells() for t in trngs]
    if extra_rows:
        rows.extend(row.cells() for row in extra_rows)
    table = [_HEADER] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(_HEADER))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
    return "\n".join(lines)


def throughput_advantage(drange_mbps: float, baseline_mbps: float) -> float:
    """How many times faster D-RaNGe is (the paper's 211x / 128x claims)."""
    if baseline_mbps <= 0 or math.isnan(baseline_mbps):
        return float("inf")
    return drange_mbps / baseline_mbps
