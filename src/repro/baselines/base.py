"""Common interface for DRAM-based TRNG designs."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TrngProperties:
    """The Table 2 attribute columns for one design."""

    name: str
    year: int
    entropy_source: str
    true_random: bool
    streaming_capable: bool


class DramTrng(abc.ABC):
    """A DRAM-based random number generator under evaluation."""

    @property
    @abc.abstractmethod
    def properties(self) -> TrngProperties:
        """Static design attributes."""

    @abc.abstractmethod
    def generate(self, num_bits: int) -> np.ndarray:
        """Produce ``num_bits`` output bits (0/1 uint8 array)."""

    @abc.abstractmethod
    def latency_64bit_ns(self) -> float:
        """Time to produce the first 64 bits from a cold start."""

    @abc.abstractmethod
    def energy_per_bit_j(self) -> float:
        """Energy cost per output bit in joules."""

    @abc.abstractmethod
    def peak_throughput_mbps(self) -> float:
        """Best-case sustained throughput in Mb/s."""
