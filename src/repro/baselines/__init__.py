"""Prior DRAM-based TRNG designs the paper compares against (Table 2).

Each baseline implements the :class:`~repro.baselines.base.DramTrng`
interface so the comparison harness (:mod:`repro.baselines.comparison`)
can evaluate all five designs — the four prior proposals plus D-RaNGe —
on the same axes: true-randomness, streaming capability, 64-bit latency,
energy per bit, and peak throughput.

* :mod:`repro.baselines.pyo` — Pyo+ [116], DRAM command-schedule jitter;
* :mod:`repro.baselines.retention_trng` — Keller+ [65] / Sutar+ [141],
  data-retention failures hashed into random words;
* :mod:`repro.baselines.startup_trng` — Tehranipoor+ [144] / Eckert+
  [39], DRAM power-up values.
"""

from repro.baselines.base import DramTrng, TrngProperties
from repro.baselines.comparison import ComparisonRow, comparison_table
from repro.baselines.pyo import CommandScheduleTrng
from repro.baselines.retention_trng import RetentionTrng
from repro.baselines.startup_trng import StartupTrng

__all__ = [
    "CommandScheduleTrng",
    "ComparisonRow",
    "DramTrng",
    "RetentionTrng",
    "StartupTrng",
    "TrngProperties",
    "comparison_table",
]
