"""QUAC backend: multi-row-activation charge sharing + SHA conditioning.

QUAC-TRNG's recipe (PAPERS.md), mapped onto the simulator:

1. **Initialize** four rows of one subarray per bank with a *balanced*
   pattern — every column stores exactly two 1s and two 0s, so the
   charge-sharing contest is decided by process variation and thermal
   noise, not by the data;
2. **MACT** (``ACT-PRE-ACT``): open the four rows simultaneously; each
   column's sense amplifier resolves one raw random bit
   (:mod:`repro.dram.quac`), and READ the whole row out;
3. **Re-initialize** — sensing destroys the stored pattern (all four
   rows now hold the sensed value), so the loop writes the balanced
   pattern back each iteration;
4. **Condition** the raw stream with SHA-256, 512 raw bits → 256
   output bits (:func:`repro.postprocess.sha256_block_condition`).

The per-column probabilities are cached in a
:class:`~repro.dram.quac.QuacPlane` under the device epoch contract,
so any write / temperature / voltage / power-cycle / fault event
transparently forces re-initialization and recompilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.buffers import ensure_bits_buffer
from repro.core.profiling import Region
from repro.dram.quac import QUAC_ROWS, QuacPlane
from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.postprocess import sha256_block_condition
from repro.sim.engine import TimingEngine
from repro.units import mbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.device import DramDevice

_OBS_BITS = obs.bound_counter("drange_backend_bits_total", backend="quac")
_OBS_NS_PER_BIT = obs.bound_histogram("drange_backend_sample_ns_per_bit", backend="quac")
_OBS_QPLANE_HITS = obs.bound_gauge("drange_quac_plane_hits")
_OBS_QPLANE_MISSES = obs.bound_gauge("drange_quac_plane_misses")
_OBS_QPLANE_INVALIDATIONS = obs.bound_gauge("drange_quac_plane_invalidations")

#: SHA-256 conditioning geometry from the QUAC-TRNG paper.
CONDITION_BLOCK_BITS = 512
CONDITION_DIGEST_BITS = 256


def quac_iteration_time_ns(
    timings: TimingParameters,
    num_banks: int,
    words_per_row: int,
    group_rows: int = QUAC_ROWS,
    measured_iterations: int = 8,
    warmup_iterations: int = 2,
) -> float:
    """Steady-state time of one QUAC loop iteration over ``num_banks``.

    One iteration per bank is: the MACT sequence (modeled conservatively
    as two full row activations with an interleaved precharge — the real
    precharge-interrupt is shorter), a full-row readout
    (``words_per_row`` READs), a precharge, then re-initialization of
    the ``group_rows`` destroyed rows (ACT, ``words_per_row`` WRITEs,
    PRE each).  Commands interleave across banks; the engine serializes
    only where JEDEC constraints (tRRD, tFAW, bus occupancy) require —
    the same replay methodology as
    :func:`repro.core.throughput.alg2_iteration_time_ns`.
    """
    if num_banks <= 0:
        raise ConfigurationError(f"num_banks must be positive, got {num_banks}")
    if words_per_row <= 0:
        raise ConfigurationError(f"words_per_row must be positive, got {words_per_row}")
    engine = TimingEngine(timings, banks=num_banks)

    def iteration() -> None:
        # MACT: ACT row0, (interrupting) PRE, ACT row1 — then read the
        # sensed row out and close the bank.
        for bank in range(num_banks):
            engine.activate(bank, 0)
        for bank in range(num_banks):
            engine.precharge(bank)
        for bank in range(num_banks):
            engine.activate(bank, 1)
        for bank in range(num_banks):
            for _ in range(words_per_row):
                engine.read(bank)
        for bank in range(num_banks):
            engine.precharge(bank)
        # Re-initialize the destroyed pattern rows at full latency.
        for row in range(group_rows):
            for bank in range(num_banks):
                engine.activate(bank, row)
            for bank in range(num_banks):
                for _ in range(words_per_row):
                    engine.write(bank)
            for bank in range(num_banks):
                engine.precharge(bank)

    for _ in range(warmup_iterations):
        iteration()
    start = engine.now_ns
    for _ in range(measured_iterations):
        iteration()
    return (engine.now_ns - start) / measured_iterations


def quac_iteration_trace(
    timings: TimingParameters,
    num_banks: int,
    words_per_row: int,
    group_rows: int = QUAC_ROWS,
    iterations: int = 1,
) -> TimingEngine:
    """Replay ``iterations`` QUAC loop iterations; return the engine.

    The engine's ``trace`` holds the standard-command expansion of the
    loop (MACT modeled as ACT/PRE/ACT), which is what
    :class:`~repro.power.model.PowerModel` consumes for the energy
    axis of the backend comparison.
    """
    if num_banks <= 0:
        raise ConfigurationError(f"num_banks must be positive, got {num_banks}")
    engine = TimingEngine(timings, banks=num_banks)
    for _ in range(max(iterations, 1)):
        for bank in range(num_banks):
            engine.activate(bank, 0)
        for bank in range(num_banks):
            engine.precharge(bank)
        for bank in range(num_banks):
            engine.activate(bank, 1)
        for bank in range(num_banks):
            for _ in range(words_per_row):
                engine.read(bank)
        for bank in range(num_banks):
            engine.precharge(bank)
        for row in range(group_rows):
            for bank in range(num_banks):
                engine.activate(bank, row)
            for bank in range(num_banks):
                for _ in range(words_per_row):
                    engine.write(bank)
            for bank in range(num_banks):
                engine.precharge(bank)
    return engine


@dataclass(frozen=True)
class QuacSite:
    """One bank's charge-sharing row group."""

    bank: int
    rows: Tuple[int, ...]


@dataclass
class QuacProfile:
    """Initialized row groups + probability cache for one device."""

    device: "DramDevice"
    sites: List[QuacSite]
    plane: QuacPlane
    mean_entropy: float
    epoch: int
    backend: str = field(default="quac")

    @property
    def cells(self) -> Tuple[QuacSite, ...]:
        """The harvest locations (one row group per bank)."""
        return tuple(self.sites)

    def is_stale(self, device: "DramDevice") -> bool:
        """True when the device mutated since the pattern was written."""
        return self.epoch != device.state_epoch


@dataclass
class QuacPlan:
    """Snapshot of per-column sensing probabilities at one epoch."""

    profile: QuacProfile
    probabilities: np.ndarray
    epoch: int
    raw_bits_per_iteration: int
    output_bits_per_iteration: int
    iteration_time_ns: float
    backend: str = field(default="quac")

    @property
    def bits_per_iteration(self) -> int:
        """Conditioned output bits one loop iteration yields."""
        return self.output_bits_per_iteration

    @property
    def iteration_ns(self) -> float:
        """Modeled steady-state time of one QUAC loop iteration."""
        return self.iteration_time_ns

    @property
    def throughput_mbps(self) -> float:
        """Modeled sustained conditioned-output throughput in Mb/s."""
        if not self.output_bits_per_iteration:
            return 0.0
        return mbps(self.output_bits_per_iteration, self.iteration_time_ns)

    def is_stale(self, device: "DramDevice") -> bool:
        """True when the device mutated since compilation."""
        return self.epoch != device.state_epoch


class QuacBackend:
    """Quadruple-row-activation TRNG behind the backend protocol."""

    name = "quac"

    def __init__(
        self,
        group_rows: int = QUAC_ROWS,
        block_bits: int = CONDITION_BLOCK_BITS,
        digest_bits: int = CONDITION_DIGEST_BITS,
    ) -> None:
        if group_rows < 2 or group_rows % 2:
            raise ConfigurationError(
                f"group_rows must be an even count >= 2, got {group_rows}"
            )
        if not 0 < digest_bits <= block_bits:
            raise ConfigurationError(
                f"digest_bits ({digest_bits}) must be in (0, block_bits="
                f"{block_bits}]"
            )
        self._group_rows = group_rows
        self._block_bits = block_bits
        self._digest_bits = digest_bits
        obs.add_collector(self._collect_plane)
        self._last_plane: Optional[QuacPlane] = None

    @property
    def group_rows(self) -> int:
        """Rows opened simultaneously per MACT (4 for QUAC)."""
        return self._group_rows

    def _pattern_row(self, position: int, cols: int) -> np.ndarray:
        """Balanced stored pattern: every column gets ``group_rows/2`` ones.

        Even-position rows store the column parity, odd-position rows
        its complement, so the per-column charge is exactly balanced
        and the sensed bit is decided by variation + noise alone.
        """
        parity = (np.arange(cols) & 1).astype(np.uint8)
        return parity if position % 2 == 0 else (1 - parity).astype(np.uint8)

    def _site_rows(self, device: "DramDevice", row_start: int) -> Tuple[int, ...]:
        geometry = device.geometry
        if (
            self._group_rows > geometry.subarray_rows
            or self._group_rows > geometry.rows_per_bank
        ):
            raise ConfigurationError(
                f"geometry cannot host a {self._group_rows}-row QUAC group "
                f"(subarray_rows={geometry.subarray_rows})"
            )
        # Clamp the anchor into the bank, then snap the group into its
        # subarray so all rows share local sense amplifiers.
        anchor = min(max(row_start, 0), geometry.rows_per_bank - self._group_rows)
        subarray_start = geometry.subarray_of(anchor) * geometry.subarray_rows
        if anchor + self._group_rows > subarray_start + geometry.subarray_rows:
            anchor = subarray_start
        return tuple(range(anchor, anchor + self._group_rows))

    def _write_pattern(self, device: "DramDevice", sites: List[QuacSite]) -> None:
        cols = device.geometry.cols_per_row
        for site in sites:
            bank = device.bank(site.bank)
            for position, row in enumerate(site.rows):
                bank.write_row(row, self._pattern_row(position, cols))

    def characterize(
        self,
        device: "DramDevice",
        *,
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> QuacProfile:
        """Pick one row group per bank, write the balanced pattern.

        ``region`` selects the participating banks and the row anchor;
        ``max_cells`` caps the number of banks (sites).  ``iterations``
        and ``samples`` are accepted for protocol compatibility — QUAC
        probabilities are analytic in this simulator, so no probing
        loop is needed.
        """
        del iterations, samples  # analytic characterization
        geometry = device.geometry
        banks = list(region.banks) if region is not None else list(range(geometry.banks))
        if max_cells is not None:
            banks = banks[: max(max_cells, 1)]
        if not banks:
            raise ConfigurationError("QUAC characterization needs at least one bank")
        row_start = region.row_start if region is not None else 0
        rows = self._site_rows(device, row_start)
        device.quac_model.validate_group(rows)
        sites = [QuacSite(bank=int(bank), rows=rows) for bank in banks]
        self._write_pattern(device, sites)
        plane = QuacPlane(device)
        self._last_plane = plane
        op = device.operating_point(device.timings.trcd_ns)
        entropies = []
        for site in sites:
            probs = plane.probabilities(site.bank, site.rows, op)
            entropies.append(float(np.mean(_shannon_entropy(probs))))
        return QuacProfile(
            device=device,
            sites=sites,
            plane=plane,
            mean_entropy=float(np.mean(entropies)),
            epoch=device.state_epoch,
        )

    def compile_plan(self, profile: QuacProfile) -> QuacPlan:
        """Snapshot probabilities (re-initializing the pattern if stale).

        Sensing destroys the stored pattern and external writes can
        clobber it; either moves the device epoch, so a stale profile
        here triggers a transparent pattern rewrite before the
        probability snapshot — the QUAC analog of
        :meth:`~repro.core.sampler.DRangeSampler.setup`'s epoch-guarded
        pattern write.
        """
        device = profile.device
        if profile.is_stale(device):
            self._write_pattern(device, profile.sites)
            profile.epoch = device.state_epoch
        op = device.operating_point(device.timings.trcd_ns)
        probs = np.concatenate(
            [
                profile.plane.probabilities(site.bank, site.rows, op)
                for site in profile.sites
            ]
        )
        probs.flags.writeable = False
        raw_bits = int(probs.size)
        output_bits = max((raw_bits * self._digest_bits) // self._block_bits, 1)
        iteration_time = quac_iteration_time_ns(
            device.timings,
            num_banks=len(profile.sites),
            words_per_row=device.geometry.words_per_row,
            group_rows=self._group_rows,
        )
        return QuacPlan(
            profile=profile,
            probabilities=probs,
            epoch=device.state_epoch,
            raw_bits_per_iteration=raw_bits,
            output_bits_per_iteration=output_bits,
            iteration_time_ns=iteration_time,
        )

    def sample(
        self,
        plan: QuacPlan,
        num_bits: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Harvest ``num_bits`` conditioned bits under ``plan``.

        Raw bits are drawn with the exact mixture sampler from the
        plan's probability snapshot (one iteration = one MACT + readout
        per site), then conditioned 512→256 with SHA-256.  The draw
        consumes the device's noise stream, so seeded outputs are
        reproducible and independent of worker scheduling.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        ensure_bits_buffer(out, num_bits)
        probs = plan.probabilities
        raw_per_iter = int(probs.size)
        if not raw_per_iter:
            raise ConfigurationError("QUAC plan has no columns to sample")
        noise = plan.profile.device.noise
        with obs.span(
            "backend.sample", backend=self.name, bits=num_bits
        ) as sp:
            chunks: List[np.ndarray] = []
            produced = 0
            while produced < num_bits:
                missing = num_bits - produced
                # Raw bits needed to yield `missing` conditioned bits,
                # rounded up to whole conditioning blocks.
                need_blocks = -(-missing // self._digest_bits)
                need_raw = max(need_blocks * self._block_bits, self._block_bits)
                iters = -(-need_raw // raw_per_iter)
                raw = noise.bernoulli_plane(probs, iters).view(np.uint8).reshape(-1)
                conditioned = sha256_block_condition(
                    raw, self._block_bits, self._digest_bits
                )
                chunks.append(conditioned)
                produced += int(conditioned.size)
        bits = np.concatenate(chunks)[:num_bits].astype(np.uint8)
        if obs.enabled():
            _OBS_BITS.add(num_bits)
            if sp.elapsed_ns > 0:
                _OBS_NS_PER_BIT.observe(sp.elapsed_ns / num_bits)
        if out is not None:
            out[...] = bits
            return out
        return bits

    def _collect_plane(self) -> None:
        """Export-time collector mirroring the QUAC plane counters."""
        plane = self._last_plane
        if plane is not None:
            _OBS_QPLANE_HITS.set(plane.hits)
            _OBS_QPLANE_MISSES.set(plane.misses)
            _OBS_QPLANE_INVALIDATIONS.set(plane.invalidations)


def _shannon_entropy(probs: np.ndarray) -> np.ndarray:
    """Per-column Shannon entropy of Bernoulli probabilities."""
    p = np.clip(np.asarray(probs, dtype=np.float64), 1e-12, 1.0 - 1e-12)
    return -(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p))
