"""Pluggable in-DRAM TRNG mechanisms behind one protocol.

``repro.backends`` hosts the :class:`~repro.backends.base.TrngBackend`
interface (characterize → compile → sample), the name registry, and
the two built-in mechanisms:

* ``"drange"`` — the paper's tRCD-violation sampling
  (:class:`~repro.backends.drange.DRangeBackend`, the default);
* ``"quac"`` — QUAC-TRNG-style quadruple-row activation with SHA-256
  conditioning (:class:`~repro.backends.quac.QuacBackend`).

Importing this package registers both; third-party mechanisms register
through :func:`~repro.backends.base.register_backend`.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    BackendPlan,
    BackendProfile,
    TrngBackend,
    available_backends,
    create_backend,
    register_backend,
    require_backend,
)
from repro.backends.drange import DRangeBackend, DRangePlan, DRangeProfile
from repro.backends.quac import (
    QuacBackend,
    QuacPlan,
    QuacProfile,
    QuacSite,
    quac_iteration_time_ns,
    quac_iteration_trace,
)

register_backend(DRangeBackend.name, DRangeBackend)
register_backend(QuacBackend.name, QuacBackend)

__all__ = [
    "DEFAULT_BACKEND",
    "BackendPlan",
    "BackendProfile",
    "TrngBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "require_backend",
    "DRangeBackend",
    "DRangePlan",
    "DRangeProfile",
    "QuacBackend",
    "QuacPlan",
    "QuacProfile",
    "QuacSite",
    "quac_iteration_time_ns",
    "quac_iteration_trace",
]
