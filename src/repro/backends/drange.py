"""The default backend: D-RaNGe's tRCD-violation mechanism.

This is the existing `profile → identify → select → sample` pipeline
(:mod:`repro.core`) factored behind the :class:`~repro.backends.base
.TrngBackend` protocol.  The sampling path is *the same*
:class:`~repro.core.sampler.DRangeSampler` the :class:`~repro.core
.drange.DRange` facade drives, so seeded outputs through this backend
are bit-identical to the pre-refactor ``generate_fast`` path — pinned
by ``tests/backends/test_drange_backend.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.buffers import ensure_bits_buffer
from repro.core.identification import RngCell, RngCellRegistry, identify_rng_cells
from repro.core.profiling import Region, profile_region
from repro.core.sampler import DEFAULT_SAMPLING_TRCD_NS, DRangeSampler
from repro.core.selection import BankPlan, select_words
from repro.core.throughput import alg2_iteration_time_ns
from repro.dram.datapattern import BEST_RNG_PATTERN, DataPattern, pattern_by_name
from repro.errors import IdentificationError
from repro.memctrl.controller import MemoryController
from repro.obs import runtime as obs
from repro.units import mbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.device import DramDevice

_OBS_BITS = obs.bound_counter("drange_backend_bits_total", backend="drange")
_OBS_NS_PER_BIT = obs.bound_histogram("drange_backend_sample_ns_per_bit", backend="drange")


@dataclass
class DRangeProfile:
    """Identified RNG cells of one device, under one pattern and tRCD."""

    device: "DramDevice"
    rng_cells: List[RngCell]
    pattern: DataPattern
    trcd_ns: float
    epoch: int
    backend: str = field(default="drange")

    @property
    def cells(self) -> Tuple[RngCell, ...]:
        """The identified RNG cells (the profile's harvest locations)."""
        return tuple(self.rng_cells)

    def is_stale(self, device: "DramDevice") -> bool:
        """True when the device mutated since identification ran."""
        return self.epoch != device.state_epoch


@dataclass
class DRangePlan:
    """Compiled D-RaNGe execution plan: a bound Algorithm 2 sampler."""

    profile: DRangeProfile
    sampler: DRangeSampler
    bank_plans: List[BankPlan]
    epoch: int
    iteration_time_ns: float
    backend: str = field(default="drange")

    @property
    def bits_per_iteration(self) -> int:
        """RNG-cell bits one Algorithm 2 iteration yields across banks."""
        return self.sampler.data_rate_bits_per_iteration

    @property
    def iteration_ns(self) -> float:
        """Modeled steady-state time of one Algorithm 2 iteration."""
        return self.iteration_time_ns

    @property
    def throughput_mbps(self) -> float:
        """Equation 1: data rate over iteration time, in Mb/s."""
        if not self.bits_per_iteration:
            return 0.0
        return mbps(self.bits_per_iteration, self.iteration_time_ns)

    def is_stale(self, device: "DramDevice") -> bool:
        """True when the device mutated since compilation.

        The embedded sampler re-validates its own compiled plan per
        epoch on every generation call, so sampling through a "stale"
        plan object is still correct — this check exists for protocol
        symmetry and plan-cache bookkeeping.
        """
        return self.epoch != device.state_epoch


class DRangeBackend:
    """The tRCD-violation mechanism behind the backend protocol."""

    name = "drange"

    def __init__(
        self,
        trcd_ns: float = DEFAULT_SAMPLING_TRCD_NS,
        pattern: Optional[DataPattern] = None,
    ) -> None:
        if trcd_ns <= 0:
            raise ValueError(f"trcd_ns must be positive, got {trcd_ns}")
        self._trcd_ns = trcd_ns
        self._pattern = pattern

    @property
    def trcd_ns(self) -> float:
        """Reduced activation latency used for probing and sampling."""
        return self._trcd_ns

    def _pattern_for(self, device: "DramDevice") -> DataPattern:
        if self._pattern is not None:
            return self._pattern
        return pattern_by_name(BEST_RNG_PATTERN[device.profile.name])

    def characterize(
        self,
        device: "DramDevice",
        *,
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
        registry: Optional[RngCellRegistry] = None,
    ) -> DRangeProfile:
        """Algorithm 1 + the entropy filter; returns the device profile.

        Consumes the device noise stream exactly as the legacy
        ``DRange.characterize`` + ``DRange.identify`` pair, so seeded
        runs stay bit-identical to the pre-refactor path.  ``registry``
        optionally receives the cells at the current temperature (the
        :class:`~repro.core.drange.DRange` facade passes its own).
        """
        pattern = self._pattern_for(device)
        characterization = profile_region(
            device,
            pattern,
            region=region,
            trcd_ns=self._trcd_ns,
            iterations=iterations,
        )
        cells = identify_rng_cells(
            device,
            characterization.cells_in_band(),
            trcd_ns=self._trcd_ns,
            samples=samples,
            max_cells=max_cells,
        )
        if registry is not None:
            registry.store(device.temperature_c, cells)
        return DRangeProfile(
            device=device,
            rng_cells=list(cells),
            pattern=pattern,
            trcd_ns=self._trcd_ns,
            epoch=device.state_epoch,
        )

    def compile_plan(self, profile: DRangeProfile) -> DRangePlan:
        """Select per-bank words and bind an Algorithm 2 sampler to them."""
        device = profile.device
        if not profile.rng_cells:
            raise IdentificationError(
                "identification produced no RNG cells; profile a larger "
                "region or loosen the tolerance"
            )
        bank_plans = select_words(profile.rng_cells, device.geometry)
        sampler = DRangeSampler(
            MemoryController(device),
            bank_plans,
            trcd_ns=profile.trcd_ns,
            pattern=profile.pattern,
        )
        iteration_time = alg2_iteration_time_ns(
            device.timings, max(len(bank_plans), 1), profile.trcd_ns
        )
        return DRangePlan(
            profile=profile,
            sampler=sampler,
            bank_plans=list(bank_plans),
            epoch=device.state_epoch,
            iteration_time_ns=iteration_time,
        )

    def sample(
        self,
        plan: DRangePlan,
        num_bits: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Harvest ``num_bits`` via the plan's vectorized Algorithm 2 loop."""
        ensure_bits_buffer(out, num_bits)
        with obs.span("backend.sample", backend=self.name, bits=num_bits) as sp:
            bits = plan.sampler.generate_fast(num_bits, out=out)
        if obs.enabled():
            _OBS_BITS.add(num_bits)
            if sp.elapsed_ns > 0:
                _OBS_NS_PER_BIT.observe(sp.elapsed_ns / num_bits)
        return bits
