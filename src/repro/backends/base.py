"""The TRNG backend interface and registry.

D-RaNGe is one member of a family of in-DRAM TRNG mechanisms; QUAC-TRNG
and the SiMRA studies harvest entropy from *multi-row* activation
instead of tRCD violations.  This module factors what every mechanism
has in common into a three-step protocol:

1. ``characterize(device) -> profile`` — offline: probe the device,
   write whatever data pattern the mechanism needs, and record which
   locations yield entropy (D-RaNGe's Algorithm 1; QUAC's balanced
   pattern initialization);
2. ``compile_plan(profile) -> plan`` — snapshot the per-location
   probabilities and the command schedule into an execution plan,
   stamped with the device ``state_epoch`` it was built at;
3. ``sample(plan, num_bits, out=) -> bits`` — the online loop.

Backends register here by name; :func:`require_backend` rejects unknown
names with a typed :class:`~repro.errors.UnknownBackendError` *before*
any device work starts, so a misspelled CLI flag or channel config can
never leave a device half-characterized.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.errors import UnknownBackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.profiling import Region
    from repro.dram.device import DramDevice


@runtime_checkable
class BackendProfile(Protocol):
    """Characterization artifact of one (device, backend) pair.

    ``epoch`` is the device ``state_epoch`` recorded when
    characterization finished; :meth:`is_stale` compares it against the
    live device so caches (notably
    :meth:`~repro.dram.device.DeviceFactory.characterize`) never serve
    a profile across a stored-state mutation.
    """

    backend: str
    epoch: int

    @property
    def cells(self) -> tuple:
        """The harvest locations this profile identified (non-empty)."""
        ...

    def is_stale(self, device: "DramDevice") -> bool:
        """True when the device mutated since this profile was taken."""
        ...


@runtime_checkable
class BackendPlan(Protocol):
    """Compiled execution plan: probabilities + schedule at one epoch."""

    backend: str
    epoch: int

    @property
    def bits_per_iteration(self) -> int:
        """Output bits one sampling-loop iteration yields."""
        ...

    @property
    def iteration_ns(self) -> float:
        """Modeled DRAM time of one sampling-loop iteration."""
        ...

    @property
    def throughput_mbps(self) -> float:
        """Modeled sustained throughput in Mb/s."""
        ...

    def is_stale(self, device: "DramDevice") -> bool:
        """True when the device mutated since this plan was compiled."""
        ...


@runtime_checkable
class TrngBackend(Protocol):
    """One in-DRAM TRNG mechanism: characterize → compile → sample."""

    name: str

    def characterize(
        self,
        device: "DramDevice",
        *,
        region: Optional["Region"] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> BackendProfile:
        """Offline phase: probe ``device`` and return its profile."""
        ...

    def compile_plan(self, profile: BackendProfile) -> BackendPlan:
        """Snapshot ``profile`` into an execution plan at the current epoch."""
        ...

    def sample(
        self,
        plan: BackendPlan,
        num_bits: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Online phase: harvest ``num_bits`` random bits under ``plan``.

        ``out``, when given, must be a writeable C-contiguous uint8
        buffer of exactly ``num_bits`` entries; implementations
        validate it with :func:`repro.buffers.ensure_bits_buffer` and
        raise :class:`~repro.errors.InvalidBufferError` *before* any
        device work.
        """
        ...


#: Name of the default backend (the paper's tRCD-violation mechanism).
DEFAULT_BACKEND = "drange"

_REGISTRY: Dict[str, Callable[..., TrngBackend]] = {}


def register_backend(name: str, factory: Callable[..., TrngBackend]) -> None:
    """Register ``factory`` (typically the backend class) under ``name``."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted for stable iteration."""
    return tuple(sorted(_REGISTRY))


def require_backend(name: str) -> str:
    """Validate ``name`` against the registry; return it unchanged.

    Raises :class:`~repro.errors.UnknownBackendError` for unregistered
    names.  Call this *before* touching any device so configuration
    typos fail fast and side-effect free.
    """
    if name not in _REGISTRY:
        raise UnknownBackendError(name, available_backends())
    return name


def create_backend(name: str, **options: object) -> TrngBackend:
    """Instantiate the backend registered under ``name``.

    ``options`` are forwarded to the backend factory (e.g.
    ``trcd_ns=`` for ``"drange"``, ``group_rows=`` for ``"quac"``).
    """
    require_backend(name)
    return _REGISTRY[name](**options)
