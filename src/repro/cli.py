"""Command-line interface for the D-RaNGe reproduction.

Usage (installed, or via ``python -m repro``)::

    python -m repro generate --bytes 32 --manufacturer A
    python -m repro generate --backend quac --bytes 32
    python -m repro backends
    python -m repro characterize --manufacturer B --rows 512
    python -m repro nist --bits 200000
    python -m repro faults --fault bias-drift --bits 20000
    python -m repro throughput --banks 8
    python -m repro --seed 7 metrics --requests 4
    python -m repro --seed 7 serve --requests 200 --rate 100
    python -m repro latency
    python -m repro compare
    python -m repro experiment fig4 fig8 table2
    python -m repro catalog --family LPDDR4
    python -m repro catalog --part MT53E512M32
    python -m repro fleet summary --size 200 --parts "LPDDR4=3,DDR3=1"
    python -m repro fleet capacity --target-gbps 2

Every subcommand accepts ``--seed`` for reproducible noise (omit for
OS-entropy true-random mode) and ``--master-seed`` to pick the device
population.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.drange import DRange
from repro.core.profiling import Region
from repro.dram.device import DeviceFactory
from repro.errors import UnknownBackendError, UnknownModuleError
from repro.experiments.common import ExperimentConfig


def _experiment_names():
    from repro.experiments.report import RUNNERS

    return tuple(RUNNERS)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D-RaNGe (HPCA 2019) reproduction toolkit",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="noise seed (omit for OS-entropy true-random mode)",
    )
    parser.add_argument(
        "--master-seed", type=int, default=2019,
        help="device-population seed (the 'drawer of chips')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate random bytes")
    generate.add_argument("--bytes", type=int, default=32, dest="num_bytes")
    generate.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    generate.add_argument("--banks", type=int, default=4)
    generate.add_argument("--rows", type=int, default=512)
    generate.add_argument("--hex", action="store_true", help="print hex instead of raw")
    generate.add_argument(
        "--backend", default="drange",
        help="TRNG backend name (list them with `repro backends`)",
    )

    backends = sub.add_parser(
        "backends",
        help="list registered TRNG backends with modeled stats and health",
    )
    backends.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    backends.add_argument("--banks", type=int, default=2)
    backends.add_argument("--rows", type=int, default=64)
    backends.add_argument(
        "--health-bits", type=int, default=4096,
        help="bits fed through the SP 800-90B monitor per backend",
    )

    characterize = sub.add_parser(
        "characterize", help="run Algorithm 1 and summarize failures"
    )
    characterize.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    characterize.add_argument("--rows", type=int, default=512)
    characterize.add_argument("--iterations", type=int, default=100)

    nist = sub.add_parser("nist", help="run the NIST suite on D-RaNGe output")
    nist.add_argument("--bits", type=int, default=262_144)
    nist.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])

    throughput = sub.add_parser("throughput", help="Figure 8 for one device")
    throughput.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    throughput.add_argument("--banks", type=int, default=8)

    sub.add_parser("latency", help="Section 7.3 64-bit latency scenarios")
    sub.add_parser("compare", help="Table 2 against prior DRAM TRNGs")

    experiment = sub.add_parser("experiment", help="run paper experiments")
    experiment.add_argument(
        "names", nargs="+", choices=_experiment_names() + ("all",),
        help="experiment ids (or 'all')",
    )
    experiment.add_argument(
        "--output", default=None, help="also write the report to a file"
    )

    diehard = sub.add_parser(
        "diehard", help="run the DIEHARD-style battery on D-RaNGe output"
    )
    diehard.add_argument("--bits", type=int, default=300_000)
    diehard.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])

    health = sub.add_parser(
        "health", help="stream D-RaNGe output through SP 800-90B monitors"
    )
    health.add_argument("--bits", type=int, default=200_000)
    health.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    health.add_argument(
        "--min-entropy", type=float, default=0.9,
        help="claimed per-bit min-entropy for the cutoffs",
    )

    faults = sub.add_parser(
        "faults",
        help="inject a fault and watch the service alarm, self-heal or fail",
    )
    faults.add_argument(
        "--fault",
        default="bias-drift",
        choices=[
            "stuck", "bias-drift", "temperature", "voltage", "aging", "burst",
        ],
    )
    faults.add_argument("--bits", type=int, default=20_000)
    faults.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    faults.add_argument("--rows", type=int, default=512)
    faults.add_argument(
        "--clear-after", type=int, default=None,
        help="fault window length in bits (omit for a persistent fault)",
    )
    faults.add_argument(
        "--max-retries", type=int, default=2,
        help="recovery attempts before the service gives up",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run a seeded service exercise and render its metrics",
    )
    metrics.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    metrics.add_argument("--banks", type=int, default=2)
    metrics.add_argument("--rows", type=int, default=512)
    metrics.add_argument(
        "--requests", type=int, default=4,
        help="number of service requests to issue",
    )
    metrics.add_argument(
        "--bits", type=int, default=4096, help="bits per request"
    )
    metrics.add_argument(
        "--nist", action="store_true",
        help="also run a short NIST batch so test counters populate",
    )
    metrics.add_argument(
        "--format", default="prometheus",
        choices=["prometheus", "json", "snapshot"],
        help="exposition format (default: Prometheus text)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the entropy-buffered serving layer under open-loop load",
    )
    serve.add_argument("--manufacturer", default="A", choices=["A", "B", "C"])
    serve.add_argument("--banks", type=int, default=2)
    serve.add_argument("--rows", type=int, default=512)
    serve.add_argument(
        "--requests", type=int, default=200,
        help="total requests to issue",
    )
    serve.add_argument(
        "--bits", type=int, default=256, help="bits per request"
    )
    serve.add_argument(
        "--rate", type=float, default=200.0,
        help="open-loop arrival rate in requests/second",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=50.0,
        help="per-request deadline in milliseconds",
    )
    serve.add_argument(
        "--capacity", type=int, default=1 << 15,
        help="entropy-pool capacity in bits",
    )
    serve.add_argument(
        "--degraded", action="store_true",
        help="enable the DRBG degraded mode for pool droughts",
    )
    serve.add_argument(
        "--fault", default="none", choices=["none", "bias-drift", "burst"],
        help="inject a transient fault to exercise quarantine/shedding",
    )
    serve.add_argument(
        "--fault-window", type=int, default=50_000,
        help="fault window length in harvested bits",
    )
    serve.add_argument(
        "--report-every", type=int, default=50,
        help="print a live SLO summary every N requests",
    )

    catalog = sub.add_parser(
        "catalog",
        help="browse the declarative DRAM part catalog",
    )
    catalog.add_argument(
        "--format", default="table", choices=["table", "markdown"],
        help="markdown emits docs/catalog.md verbatim (drift-tested)",
    )
    catalog.add_argument(
        "--family", default=None,
        help="filter to one family (DDR3/DDR4/LPDDR4/LPDDR4X)",
    )
    catalog.add_argument(
        "--part", default=None,
        help="show every speedgrade of one part in ns and cycles",
    )

    fleet = sub.add_parser(
        "fleet",
        help="build a heterogeneous device fleet and run population studies",
    )
    fleet.add_argument(
        "action", nargs="?", default="summary",
        choices=["summary", "capacity", "drift", "harvest"],
        help="study to run over the built fleet (default: summary)",
    )
    fleet.add_argument(
        "--size", type=int, default=60, help="number of devices to build"
    )
    fleet.add_argument(
        "--parts", default="LPDDR4=3,DDR3=1",
        help="weighted part mix, e.g. 'LPDDR4=3,MT53E512M32-2400=1'",
    )
    fleet.add_argument(
        "--manufacturers", default="A=1,B=1,C=1",
        help="weighted vendor mix over A/B/C",
    )
    fleet.add_argument(
        "--temp-mean", type=float, default=45.0,
        help="mean ambient DRAM temperature in °C",
    )
    fleet.add_argument(
        "--temp-sigma", type=float, default=5.0,
        help="temperature spread across the fleet in °C",
    )
    fleet.add_argument(
        "--target-gbps", type=float, default=1.0,
        help="capacity action: entropy target in Gb/s",
    )
    fleet.add_argument(
        "--temperatures", default="35,45,55,65",
        help="drift action: comma-separated sweep temperatures in °C",
    )
    fleet.add_argument(
        "--bits", type=int, default=16384,
        help="harvest action: bits to harvest through a pooled subset",
    )
    fleet.add_argument(
        "--channels", type=int, default=2,
        help="harvest action: fleet devices to pool",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repro.lint entropy-hygiene/determinism analyzer",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="paths and flags forwarded to repro.lint "
        "(default: src/repro when run from the repo root)",
    )
    return parser


def _make_drange(
    args, banks: int, rows: int, backend: str = "drange"
) -> DRange:
    # Validate the backend name before the factory touches any device
    # state: a typo must not cost a characterization run.
    from repro.backends import require_backend

    require_backend(backend)
    factory = DeviceFactory(master_seed=args.master_seed, noise_seed=args.seed)
    device = factory.make_device(args.manufacturer, 0)
    drange = DRange(device, backend=backend)
    drange.prepare(
        region=Region(banks=tuple(range(banks)), row_start=0, row_count=rows),
        iterations=100,
    )
    return drange


def _cmd_generate(args) -> int:
    drange = _make_drange(args, args.banks, args.rows, backend=args.backend)
    data = drange.random_bytes(args.num_bytes)
    if args.hex:
        print(data.hex())
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.flush()
    return 0


def _cmd_characterize(args) -> int:
    factory = DeviceFactory(master_seed=args.master_seed, noise_seed=args.seed)
    device = factory.make_device(args.manufacturer, 0)
    drange = DRange(device)
    result = drange.characterize(
        region=Region(banks=(0,), row_start=0, row_count=args.rows),
        iterations=args.iterations,
    )
    from repro.analysis.spatial import summarize_bitmap

    bitmap = result.counts[0] > 0
    summary = summarize_bitmap(bitmap, device.geometry.subarray_rows)
    print(f"device {device.serial} ({device.timings.name})")
    print(f"pattern {result.pattern_name}, tRCD {result.trcd_ns} ns, "
          f"{result.iterations} iterations")
    print(f"failing cells: {summary.failing_cells}")
    print(f"failing columns: {len(summary.failing_columns)}")
    print(f"row-gradient correlation: {summary.row_gradient_correlation:+.3f}")
    print(f"cells in 40-60% band: {len(result.cells_in_band())}")
    return 0


def _cmd_nist(args) -> int:
    from repro.nist.suite import run_suite

    drange = _make_drange(args, banks=4, rows=512)
    bits = drange.random_bits(args.bits)
    report = run_suite(bits)
    print(report.to_table())
    return 0 if report.all_passed else 1


def _cmd_throughput(args) -> int:
    drange = _make_drange(args, banks=args.banks, rows=512)
    model = drange.throughput_model()
    print("banks  data-rate(b/iter)  iteration(ns)  throughput(Mb/s)")
    for estimate in model.sweep(args.banks):
        print(
            f"{estimate.num_banks:>5}  {estimate.data_rate_bits:>17}  "
            f"{estimate.iteration_ns:>13.1f}  {estimate.throughput_mbps:>16.1f}"
        )
    return 0


def _cmd_latency(args) -> int:
    from repro.experiments import sec73_latency

    print(sec73_latency.run(_config(args)).format_report())
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments import table2_comparison

    print(table2_comparison.run(_config(args)).format_report())
    return 0


def _config(args) -> ExperimentConfig:
    return ExperimentConfig(
        master_seed=args.master_seed,
        noise_seed=args.seed,
        devices_per_manufacturer=1,
        region_banks=(0, 1, 2, 3),
        region_rows=512,
    )


def _cmd_experiment(args) -> int:
    from repro.experiments.report import generate_report

    names = None if "all" in args.names else args.names
    text, _ = generate_report(config=_config(args), experiments=names)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    return 0


def _cmd_diehard(args) -> int:
    from repro.diehard import run_battery

    drange = _make_drange(args, banks=4, rows=512)
    bits = drange.random_bits(args.bits)
    results = run_battery(bits)
    width = max(len(r.name) for r in results)
    print(f"{'DIEHARD Test':<{width}}  P-value  Status")
    for result in results:
        print(f"{result.name:<{width}}  {result.p_value:7.4f}  {result.status}")
    return 0 if all(r.passed for r in results) else 1


def _cmd_health(args) -> int:
    from repro.analysis.entropy import markov_min_entropy, mcv_min_entropy
    from repro.health import HealthMonitor

    drange = _make_drange(args, banks=4, rows=512)
    monitor = HealthMonitor(min_entropy=args.min_entropy)
    bits = drange.random_bits(args.bits)
    healthy = monitor.feed(bits)
    print(f"bits inspected: {monitor.bits_seen}")
    print(f"repetition-count / adaptive-proportion: "
          f"{'OK' if healthy else 'ALARM'}")
    for alarm in monitor.alarms:
        print(f"  alarm: {alarm.test} — {alarm.detail}")
    print(f"MCV min-entropy estimate:    {mcv_min_entropy(bits):.4f} bits/bit")
    print(f"Markov min-entropy estimate: {markov_min_entropy(bits):.4f} bits/bit")
    return 0 if healthy else 1


def _cmd_faults(args) -> int:
    from repro.core.integration import DRangeService, RecoveryPolicy
    from repro.errors import HealthError
    from repro.faults import (
        BiasDriftFault,
        CellAgingFault,
        FaultInjector,
        StuckCellFault,
        TemperatureExcursionFault,
        TransientBurstFault,
        VoltageDroopFault,
    )
    from repro.health import HealthMonitor

    fault_makers = {
        "stuck": lambda: StuckCellFault(value=1),
        "bias-drift": lambda: BiasDriftFault(target=1, rate_per_bit=1e-3),
        "temperature": lambda: TemperatureExcursionFault(delta_c=30.0),
        "voltage": lambda: VoltageDroopFault(droop_ratio=0.8),
        "aging": lambda: CellAgingFault(decay_per_bit=1e-4),
        "burst": lambda: TransientBurstFault(period=512, burst_bits=256),
    }
    if args.clear_after is not None and args.clear_after <= 0:
        print("error: --clear-after must be a positive bit count")
        return 2
    factory = DeviceFactory(master_seed=args.master_seed, noise_seed=args.seed)
    device = factory.make_device(args.manufacturer, 0)
    injector = FaultInjector(device)
    drange = DRange(injector)
    region = Region(banks=(0, 1), row_start=0, row_count=args.rows)
    cells = drange.prepare(region=region, iterations=100)
    if not cells:
        print("no RNG cells identified; try another seed")
        return 1
    service = DRangeService(
        health_monitor=HealthMonitor(),
        drange=drange,
        recovery=RecoveryPolicy(max_retries=args.max_retries, region=region),
    )
    end_bit = (
        None
        if args.clear_after is None
        else injector.bits_elapsed + args.clear_after
    )
    window = injector.inject(fault_makers[args.fault](), end_bit=end_bit)
    span = "persistent" if window.end_bit is None else (
        f"bits [{window.start_bit}, {window.end_bit})"
    )
    print(f"injected {window.fault.name} ({span}); requesting {args.bits} bits")
    survived = True
    try:
        bits = service.request(args.bits)
        print(f"served {bits.size} bits, ones-ratio {bits.mean():.4f}")
    except HealthError as exc:
        survived = False
        print(f"service failed: {exc}")
    print("event log:")
    for event in service.events:
        print(f"  [{event.kind}] {event.detail}")
    print("counters:", dict(sorted(service.counters.items())))
    return 0 if survived else 1


def _cmd_backends(args) -> int:
    from repro.backends import available_backends
    from repro.health import HealthMonitor

    factory = DeviceFactory(master_seed=args.master_seed, noise_seed=args.seed)
    region = Region(
        banks=tuple(range(args.banks)), row_start=0, row_count=args.rows
    )
    print(
        f"{'backend':<10}{'sites':>7}{'bits/iter':>11}"
        f"{'throughput(Mb/s)':>18}  health"
    )
    for name in available_backends():
        device = factory.make_device(args.manufacturer, 0)
        drange = DRange(device, backend=name)
        sites = drange.prepare(region=region, iterations=100)
        monitor = HealthMonitor()
        bits = drange.random_bits(args.health_bits)
        status = "healthy" if monitor.feed(bits) else "ALARM"
        print(
            f"{name:<10}{len(sites):>7}{drange.bits_per_access():>11}"
            f"{drange.estimated_throughput_mbps():>18.1f}  {status}"
        )
    return 0


def _cmd_metrics(args) -> int:
    from repro import obs
    from repro.core.integration import DRangeService

    obs.enable()
    try:
        drange = _make_drange(args, banks=args.banks, rows=args.rows)
        service = DRangeService(drange.sampler())
        for _ in range(args.requests):
            service.request(args.bits)
        if args.nist:
            from repro.nist.suite import run_suite

            run_suite(
                drange.random_bits(50_000),
                tests=("monobit", "frequency_within_block", "runs"),
            )
        if args.format == "prometheus":
            print(obs.prometheus_text(), end="")
        elif args.format == "json":
            print(obs.json_text())
        else:
            print(obs.snapshot().format_line())
    finally:
        obs.disable()
    return 0


def _cmd_serve(args) -> int:
    import time

    from repro import obs
    from repro.core.integration import DRangeService, RecoveryPolicy
    from repro.errors import ServingError
    from repro.faults import BiasDriftFault, FaultInjector, TransientBurstFault
    from repro.health import HealthMonitor
    from repro.serving import BufferedRngService, DegradedPolicy

    if args.rate <= 0 or args.requests <= 0 or args.deadline_ms <= 0:
        print("error: --rate, --requests and --deadline-ms must be positive")
        return 2
    factory = DeviceFactory(master_seed=args.master_seed, noise_seed=args.seed)
    device = factory.make_device(args.manufacturer, 0)
    injector = FaultInjector(device)
    drange = DRange(injector)
    region = Region(
        banks=tuple(range(args.banks)), row_start=0, row_count=args.rows
    )
    cells = drange.prepare(region=region, iterations=100)
    if not cells:
        print("no RNG cells identified; try another seed")
        return 1
    if args.fault != "none":
        fault = (
            BiasDriftFault(target=1, rate_per_bit=1e-3)
            if args.fault == "bias-drift"
            else TransientBurstFault(period=8192, burst_bits=2048)
        )
        window = injector.inject(
            fault, end_bit=injector.bits_elapsed + args.fault_window
        )
        print(f"injected {window.fault.name} for {args.fault_window} bits")
    service = DRangeService(
        health_monitor=HealthMonitor(),
        drange=drange,
        recovery=RecoveryPolicy(max_retries=3, region=region),
    )
    buffered = BufferedRngService(
        service,
        capacity_bits=args.capacity,
        clock=time.monotonic,
        default_deadline_s=args.deadline_ms / 1000.0,
        degraded=DegradedPolicy() if args.degraded else None,
    )
    obs.enable()
    outcomes = {"ok": 0, "degraded": 0, "shed": 0}
    try:
        buffered.start()
        interval = 1.0 / args.rate
        start = time.monotonic()
        for index in range(args.requests):
            delay = start + index * interval - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                result = buffered.request(args.bits)
                outcomes["degraded" if result.degraded else "ok"] += 1
            except ServingError:
                outcomes["shed"] += 1
            if (index + 1) % args.report_every == 0:
                slo = buffered.slo_summary()
                print(
                    f"[{index + 1}/{args.requests}] "
                    f"p50={slo['p50'] * 1e3:.2f}ms "
                    f"p99={slo['p99'] * 1e3:.2f}ms "
                    f"p999={slo['p999'] * 1e3:.2f}ms "
                    f"pool={int(slo['pool_bits'])}b "
                    f"ok={outcomes['ok']} degraded={outcomes['degraded']} "
                    f"shed={outcomes['shed']}"
                )
                print("  " + obs.snapshot().format_line())
        buffered.stop()
        elapsed = time.monotonic() - start
        slo = buffered.slo_summary()
        print(
            f"done: {args.requests} requests in {elapsed:.2f}s "
            f"({args.requests / elapsed:.1f} req/s offered {args.rate:.1f})"
        )
        print(
            f"final: p50={slo['p50'] * 1e3:.2f}ms p99={slo['p99'] * 1e3:.2f}ms "
            f"p999={slo['p999'] * 1e3:.2f}ms "
            f"ok={outcomes['ok']} degraded={outcomes['degraded']} "
            f"shed={outcomes['shed']}"
        )
    finally:
        buffered.stop()
        obs.disable()
    return 0 if outcomes["ok"] + outcomes["degraded"] > 0 else 1


def _cmd_catalog(args) -> int:
    from repro.dram.modules import catalog_markdown, get_module, list_modules

    if args.format == "markdown":
        print(catalog_markdown(), end="")
        return 0
    if args.part is not None:
        module = get_module(args.part)
        print(
            f"{module.name}: {module.family}, {module.density_gbit:g} Gb, "
            f"{module.banks} banks x {module.rows_per_bank} rows x "
            f"{module.cols_per_row} cols, BL{module.burst_length}"
        )
        print(f"{'grade':>8}  {'clock':>9}  {'tRCD':>13}  {'tRP':>13}  {'tRAS':>13}")
        for label in module.grade_labels:
            grade = module.grade(label)
            params = module.timing_parameters(grade=label)
            cells = [
                f"{getattr(params, name):.2f}ns/{params.cycles(name)}ck"
                for name in ("trcd_ns", "trp_ns", "tras_ns")
            ]
            print(
                f"{'-' + label:>8}  {grade.clock_mhz:>6.0f}MHz  "
                f"{cells[0]:>13}  {cells[1]:>13}  {cells[2]:>13}"
            )
        return 0
    print(f"{'part':<14} {'family':<8} {'density':>8}  speedgrades")
    for module in list_modules(args.family):
        grades = ", ".join(f"-{label}" for label in module.grade_labels)
        print(
            f"{module.name:<14} {module.family:<8} "
            f"{module.density_gbit:>6g}Gb  {grades}"
        )
    return 0


def _parse_mix(text: str, flag: str):
    pairs = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, weight = token.partition("=")
        if not sep or not name:
            print(f"error: {flag} entries must look like NAME=WEIGHT, got {token!r}")
            return None
        try:
            pairs.append((name.strip(), float(weight)))
        except ValueError:
            print(f"error: {flag} weight for {name!r} is not a number: {weight!r}")
            return None
    if not pairs:
        print(f"error: {flag} mix is empty")
        return None
    return tuple(pairs)


def _cmd_fleet(args) -> int:
    import json

    from repro.fleet import (
        CapacityPlanner,
        FleetSpec,
        TemperatureModel,
        build_fleet,
        drift_sweep,
    )

    parts = _parse_mix(args.parts, "--parts")
    manufacturers = _parse_mix(args.manufacturers, "--manufacturers")
    if parts is None or manufacturers is None:
        return 2
    spec = FleetSpec(
        size=args.size,
        parts=parts,
        manufacturers=manufacturers,
        temperature=TemperatureModel(
            mean_c=args.temp_mean, sigma_c=args.temp_sigma
        ),
        master_seed=args.master_seed,
        noise_seed=args.seed if args.seed is not None else 1,
    )
    fleet = build_fleet(spec)
    if args.action == "summary":
        print(json.dumps(fleet.summary(), indent=2))
        return 0
    if args.action == "capacity":
        planner = CapacityPlanner(fleet)
        plan = planner.plan(args.target_gbps)
        print(
            f"{'part':<20} {'Mb/s/device':>12} {'needed':>8} {'available':>10}"
        )
        for part, row in plan.items():
            print(
                f"{part:<20} {row['throughput_mbps']:>12.1f} "
                f"{int(row['devices_needed']):>8} "
                f"{int(row['devices_available']):>10}"
            )
        print(
            f"(target {args.target_gbps:g} Gb/s at "
            f"{planner.utilization:.0%} utilization)"
        )
        return 0
    if args.action == "drift":
        temperatures = [float(t) for t in args.temperatures.split(",") if t]
        report = drift_sweep(fleet, temperatures)
        print(f"{'temp(°C)':>9}  {'mean':>6}  {'min':>6}  {'max':>6}  devices")
        for point in report.points:
            print(
                f"{point.value:>9.1f}  {point.mean_retention:>6.3f}  "
                f"{point.min_retention:>6.3f}  {point.max_retention:>6.3f}  "
                f"{point.devices:>7}"
            )
        return 0
    # harvest
    bits = fleet.harvest(
        args.bits, indices=list(range(min(args.channels, len(fleet))))
    )
    print(
        f"harvested {bits.size} bits over {min(args.channels, len(fleet))} "
        f"pooled channels, ones-ratio {bits.mean():.4f}"
    )
    return 0


def _forward_lint(tokens: List[str]) -> int:
    from repro.lint.cli import main as lint_main

    forwarded = list(tokens)
    value_options = {"--format": 1, "--fail-on": 1, "--baseline": 1}
    greedy_options = ("--select", "--ignore")
    # --changed takes an *optional* base revision (argparse nargs="?"),
    # so a following non-flag token belongs to it, not to paths.
    optional_value_options = ("--changed",)
    has_paths = False
    index = 0
    while index < len(forwarded):
        token = forwarded[index]
        if token in value_options:
            index += 1 + value_options[token]
            continue
        if token in optional_value_options:
            index += 1
            if index < len(forwarded) and not forwarded[index].startswith("-"):
                index += 1
            continue
        if token in greedy_options:
            index += 1
            while index < len(forwarded) and not forwarded[index].startswith("-"):
                index += 1
            continue
        if not token.startswith("-"):
            has_paths = True
        index += 1
    if not has_paths and "--list-rules" not in forwarded:
        import os

        if os.path.isdir("src/repro"):
            # Prepend, not append: a trailing default path would be
            # consumed by --changed's optional base.
            forwarded.insert(0, "src/repro")
    return lint_main(forwarded)


def _cmd_lint(args) -> int:
    return _forward_lint(list(args.lint_args))


_COMMANDS = {
    "generate": _cmd_generate,
    "backends": _cmd_backends,
    "characterize": _cmd_characterize,
    "nist": _cmd_nist,
    "diehard": _cmd_diehard,
    "health": _cmd_health,
    "faults": _cmd_faults,
    "throughput": _cmd_throughput,
    "latency": _cmd_latency,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "metrics": _cmd_metrics,
    "serve": _cmd_serve,
    "catalog": _cmd_catalog,
    "fleet": _cmd_fleet,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    tokens = list(sys.argv[1:]) if argv is None else list(argv)
    if tokens[:1] == ["lint"]:
        # Forward everything verbatim: argparse's REMAINDER cannot
        # handle a leading option token (bpo-17050).
        return _forward_lint(tokens[1:])
    args = _build_parser().parse_args(tokens)
    try:
        return _COMMANDS[args.command](args)
    except (UnknownBackendError, UnknownModuleError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
