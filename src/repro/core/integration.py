"""Full-system integration: the self-healing firmware RNG service.

Section 6.3: D-RaNGe runs as a small firmware routine in the memory
controller.  It keeps a queue of already-harvested bits so application
requests are answered with low latency, refilling the queue whenever
DRAM bandwidth is idle; the controller duty-cycles between reduced-tRCD
sampling windows and default-timing application service.

:class:`DRangeService` models that routine, including the
throughput-vs-interference tradeoff of Section 7.3 (``duty_cycle``) and
the robustness loop the paper's Section 1 argument demands: the
attached SP 800-90B :class:`~repro.health.HealthMonitor` gates startup
(§4.3) and watches every refill; on an alarm the service quarantines
the buffered bits, re-identifies RNG cells through its
:class:`~repro.core.drange.DRange` with bounded, exponentially
backed-off retries (:class:`RecoveryPolicy`), re-runs startup testing
on fresh bits, and only surfaces a
:class:`~repro.errors.RecoveryExhaustedError` once every repair avenue
has failed.  Every alarm, retry, recovery, and quarantined bit is
recorded in a structured :class:`~repro.core.events.EventLog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from repro.buffers import ensure_bits_buffer
from repro.core.events import EventLog, ServiceEvent
from repro.core.profiling import Region
from repro.core.sampler import DRangeSampler
from repro.errors import (
    ConfigurationError,
    HealthError,
    InvalidRequestError,
    RecoveryExhaustedError,
    ReproError,
    StartupTestError,
)
from repro.health import STARTUP_MIN_BITS, HealthMonitor
from repro.obs import runtime as obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.drange import BackendSampler, DRange
    from repro.parallel.batching import BatchingFrontEnd

__all__ = ["DRangeService", "RecoveryPolicy", "ServiceEvent"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry parameters for the self-healing loop.

    ``region``/``iterations``/``identify_samples``/``max_cells`` are the
    re-identification arguments passed to
    :meth:`~repro.core.drange.DRange.prepare`; backoff between retries
    is ``backoff_base_s * backoff_factor ** attempt`` seconds, capped at
    ``max_backoff_s`` so a long retry chain cannot escalate into
    minutes-long stalls, and delivered through ``sleep`` (``None``
    disables real waiting — the computed delay is still recorded in the
    event log, which keeps simulations and tests instantaneous).

    ``jitter`` is an optional hook mapping the capped delay to the
    delay actually used (e.g. ``lambda d: d * rng.uniform(0.5, 1.5)``
    for decorrelated retries across channels).  Its result is clamped
    back into ``[0, max_backoff_s]`` — a jitter hook can spread delays,
    never escalate them.  The default is no jitter, which keeps
    recovery timing deterministic.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter: Optional[Callable[[float], float]] = None
    startup_bits: int = STARTUP_MIN_BITS
    region: Optional[Region] = None
    iterations: int = 100
    identify_samples: int = 1000
    max_cells: Optional[int] = None
    sleep: Optional[Callable[[float], None]] = None

    def __post_init__(self) -> None:
        if self.max_retries <= 0:
            raise ConfigurationError(
                f"max_retries must be positive, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be non-negative, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < 0:
            raise ConfigurationError(
                f"max_backoff_s must be non-negative, got {self.max_backoff_s}"
            )
        if self.startup_bits < STARTUP_MIN_BITS:
            raise ConfigurationError(
                f"startup_bits must be >= {STARTUP_MIN_BITS}, "
                f"got {self.startup_bits}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based): capped exponential.

        The exponential delay is clamped to ``max_backoff_s``, the
        ``jitter`` hook (if any) is applied, and the result is clamped
        into ``[0, max_backoff_s]`` again.
        """
        delay = min(
            self.backoff_base_s * self.backoff_factor**attempt,
            self.max_backoff_s,
        )
        if self.jitter is not None:
            delay = min(max(0.0, self.jitter(delay)), self.max_backoff_s)
        return delay


class DRangeService:
    """Firmware-style random-number service with a harvest queue.

    Pass ``drange`` (and optionally a :class:`RecoveryPolicy`) to enable
    self-healing: without them the service keeps the legacy fail-stop
    behavior of raising :class:`~repro.errors.HealthError` on the first
    alarm.

    The service only needs its sampler's ``generate_fast`` surface, so
    any :class:`~repro.core.drange.DRange` works here regardless of its
    TRNG backend: a non-default backend's :class:`~repro.core.drange
    .BackendSampler` adapter slots in unchanged, including on the
    recovery path (``drange.sampler()`` rebuilds the right kind).
    """

    def __init__(
        self,
        sampler: Optional[Union[DRangeSampler, "BackendSampler"]] = None,
        queue_bits: int = 4096,
        refill_batch_bits: int = 1024,
        duty_cycle: float = 1.0,
        health_monitor: Optional[HealthMonitor] = None,
        drange: Optional["DRange"] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        if sampler is None:
            if drange is None:
                raise ConfigurationError(
                    "DRangeService needs a sampler or a DRange to build one from"
                )
            sampler = drange.sampler()
        if queue_bits <= 0:
            raise ConfigurationError(f"queue_bits must be positive, got {queue_bits}")
        if refill_batch_bits <= 0 or refill_batch_bits > queue_bits:
            raise ConfigurationError(
                "refill_batch_bits must be in (0, queue_bits], got "
                f"{refill_batch_bits}"
            )
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty_cycle must be in (0, 1], got {duty_cycle}"
            )
        self._sampler = sampler
        # The harvest queue is a uint8 ring buffer (head/size), not a
        # deque of Python ints: refills land whole numpy batches and
        # requests pop whole slices, so no bit ever round-trips through
        # a Python object on the hot path.
        self._qbuf: np.ndarray = np.empty(queue_bits, dtype=np.uint8)
        self._qhead = 0
        self._qsize = 0
        self._queue_bits = queue_bits
        self._refill_batch_bits = refill_batch_bits
        self._duty_cycle = duty_cycle
        self._bits_served = 0
        self._health = health_monitor
        self._drange = drange
        if recovery is None and drange is not None:
            recovery = RecoveryPolicy()
        self._recovery = recovery
        self._events = EventLog()
        self._events.subscribe(obs.event_counter("service"))
        self._recoveries_this_request = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def queue_level(self) -> int:
        """Bits currently buffered."""
        return self._qsize

    def queue_snapshot(self) -> np.ndarray:
        """A copy of the buffered bits, oldest first (for inspection)."""
        out = np.empty(self._qsize, dtype=np.uint8)
        self._peek_queue(out)
        return out

    # ------------------------------------------------------------------
    # Ring-queue primitives
    # ------------------------------------------------------------------

    def _peek_queue(self, dest: np.ndarray) -> None:
        """Copy the oldest ``dest.size`` buffered bits into ``dest``."""
        n = int(dest.size)
        first = min(n, self._queue_bits - self._qhead)
        dest[:first] = self._qbuf[self._qhead : self._qhead + first]
        if n - first:
            dest[first:] = self._qbuf[: n - first]

    def _pop_queue_into(self, dest: np.ndarray) -> None:
        """Pop the oldest ``dest.size`` buffered bits straight into ``dest``."""
        self._peek_queue(dest)
        self._qhead = (self._qhead + int(dest.size)) % self._queue_bits
        self._qsize -= int(dest.size)

    def _push_queue(self, bits: np.ndarray) -> None:
        """Append ``bits`` at the queue's tail (caller checked capacity)."""
        n = int(bits.size)
        tail = (self._qhead + self._qsize) % self._queue_bits
        first = min(n, self._queue_bits - tail)
        self._qbuf[tail : tail + first] = bits[:first]
        if n - first:
            self._qbuf[: n - first] = bits[first:]
        self._qsize += n

    def _unpop_queue(self, bits: np.ndarray) -> None:
        """Return popped bits to the queue's front (stream order).

        Mirrors the bounded queue's historical overflow behavior: when
        the returned bits and the remaining content exceed capacity,
        the oldest returned bits win and the newest content falls off
        the tail.
        """
        n = int(bits.size)
        keep = min(n, self._queue_bits)
        self._qsize = min(self._qsize, self._queue_bits - keep)
        self._qhead = (self._qhead - keep) % self._queue_bits
        first = min(keep, self._queue_bits - self._qhead)
        self._qbuf[self._qhead : self._qhead + first] = bits[:first]
        if keep - first:
            self._qbuf[: keep - first] = bits[first : keep]
        self._qsize += keep

    @property
    def bits_served(self) -> int:
        """Total bits handed to applications so far."""
        return self._bits_served

    @property
    def health_monitor(self) -> Optional[HealthMonitor]:
        """The attached SP 800-90B monitor, if any."""
        return self._health

    @property
    def recovery_policy(self) -> Optional[RecoveryPolicy]:
        """The self-healing policy, when recovery is enabled."""
        return self._recovery

    @property
    def event_log(self) -> EventLog:
        """The structured robustness audit trail."""
        return self._events

    @property
    def events(self):
        """Recorded robustness events, oldest first."""
        return self._events.events

    @property
    def counters(self):
        """Aggregate robustness counters (alarms, retries, bits discarded)."""
        return self._events.counters

    @property
    def duty_cycle(self) -> float:
        """Fraction of DRAM time allotted to random-number generation."""
        return self._duty_cycle

    def set_duty_cycle(self, duty_cycle: float) -> None:
        """Re-balance the interference/throughput tradeoff at runtime."""
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty_cycle must be in (0, 1], got {duty_cycle}"
            )
        self._duty_cycle = duty_cycle

    # ------------------------------------------------------------------
    # Startup, refill, and the self-healing loop
    # ------------------------------------------------------------------

    def _run_startup(self) -> bool:
        """Harvest fresh bits and run §4.3 startup testing on them.

        Startup bits are never served (the spec forbids outputting
        them); they are counted as discarded.
        """
        num = (
            STARTUP_MIN_BITS
            if self._recovery is None
            else self._recovery.startup_bits
        )
        fresh = self._sampler.generate_fast(num)
        passed = self._health.startup(fresh)
        self._events.bump("bits_discarded", int(fresh.size))
        if passed:
            self._events.record("startup_passed", f"{num} bits inspected")
        return passed

    def _ensure_started(self) -> None:
        """Gate the first output behind SP 800-90B startup testing."""
        if self._health is None or self._health.startup_passed:
            return
        if self._run_startup():
            return
        alarm = self._health.alarms[-1]
        self._events.record("alarm", f"startup: {alarm.test} — {alarm.detail}")
        if self._drange is None or self._recovery is None:
            raise StartupTestError(
                f"startup health testing failed: {alarm.test} — {alarm.detail}"
            )
        self._recoveries_this_request += 1
        self._recover()

    def _quarantine_queue(self) -> None:
        """Discard every buffered bit after an alarm (poisoned batch)."""
        discarded = self._qsize
        if discarded:
            self._qhead = 0
            self._qsize = 0
            self._events.record(
                "quarantine", f"discarded {discarded} buffered bits"
            )
            self._events.bump("bits_discarded", discarded)

    def _handle_degradation(self, alarm) -> None:
        """Alarm response: fail fast (legacy) or run bounded recovery."""
        if self._drange is None or self._recovery is None:
            raise HealthError(
                f"entropy source degraded: {alarm.test} — {alarm.detail}; "
                "re-identify RNG cells and reset the monitor"
            )
        if self._recoveries_this_request >= self._recovery.max_retries:
            self._events.record(
                "recovery_failed",
                f"source re-alarmed after {self._recoveries_this_request} "
                "recoveries within one request",
            )
            raise RecoveryExhaustedError(
                "entropy source keeps degrading: "
                f"{self._recoveries_this_request} recoveries within a single "
                "request did not stabilize it"
            )
        self._recoveries_this_request += 1
        self._recover()

    def _recover(self) -> None:
        """Re-identify RNG cells with bounded retries and backoff.

        Raises :class:`RecoveryExhaustedError` when every attempt fails;
        on success the monitor is reset, startup testing has passed, and
        a fresh sampler is installed.
        """
        policy = self._recovery
        drange = self._drange
        self._events.record(
            "recovery_started",
            f"re-identification with up to {policy.max_retries} attempts",
        )
        for attempt in range(policy.max_retries):
            delay = policy.backoff_s(attempt)
            self._events.record(
                "retry",
                f"attempt {attempt + 1}/{policy.max_retries} "
                f"(backoff {delay:.3g}s)",
            )
            if policy.sleep is not None and delay > 0:
                policy.sleep(delay)
            try:
                # Drop the poisoned cell set before re-identifying, so a
                # failed pass cannot silently fall back to stale cells.
                drange.registry.discard(drange.device.temperature_c)
                cells = drange.prepare(
                    region=policy.region,
                    iterations=policy.iterations,
                    samples=policy.identify_samples,
                    max_cells=policy.max_cells,
                )
            except ReproError as exc:
                self._events.record("retry_failed", f"re-identification: {exc}")
                continue
            if not cells:
                self._events.record(
                    "retry_failed", "re-identification produced no RNG cells"
                )
                continue
            self._events.record("reidentified", f"{len(cells)} RNG cells")
            try:
                self._sampler = drange.sampler()
            except ReproError as exc:
                self._events.record("retry_failed", f"sampler rebuild: {exc}")
                continue
            self._health.reset()
            if self._run_startup():
                self._events.record(
                    "recovered", f"healthy after {attempt + 1} attempt(s)"
                )
                return
            alarm = self._health.alarms[-1] if self._health.alarms else None
            self._events.record(
                "startup_failed", alarm.detail if alarm else "startup test failed"
            )
        self._events.record(
            "recovery_failed", f"{policy.max_retries} attempts exhausted"
        )
        raise RecoveryExhaustedError(
            f"recovery exhausted after {policy.max_retries} "
            "re-identification attempts; the entropy source remains degraded"
        )

    def _refill(self) -> None:
        """Top the queue up to capacity with one sampling batch.

        On a health alarm the freshly harvested batch *and* the buffered
        queue are quarantined, recovery runs (or the legacy
        :class:`HealthError` is raised), and the queue is left empty for
        the caller to retry.
        """
        space = self._queue_bits - self._qsize
        if space <= 0:
            return
        if self._qsize == 0:
            # Rewind an empty ring so the harvest segment is contiguous.
            self._qhead = 0
        batch = min(self._refill_batch_bits, space)
        tail = (self._qhead + self._qsize) % self._queue_bits
        if batch <= self._queue_bits - tail:
            # Zero-copy: harvest straight into the ring's free tail
            # segment.  The bits are only committed (size bump) after
            # the health check, so an alarmed batch never enters the
            # queue — exactly the staged path's behavior.
            fresh = self._qbuf[tail : tail + batch]
            self._sampler.generate_fast(batch, out=fresh)
            staged = False
        else:
            # Wrapping tail: stage the batch so the harvest size (and
            # therefore the seeded bit stream) is unchanged.
            fresh = self._sampler.generate_fast(batch)
            staged = True
        if self._health is not None and not self._health.feed(fresh):
            alarm = self._health.alarms[-1]
            self._events.record("alarm", f"{alarm.test} — {alarm.detail}")
            self._events.bump("bits_discarded", int(fresh.size))
            self._quarantine_queue()
            self._handle_degradation(alarm)
            return
        if staged:
            self._push_queue(fresh)
        else:
            self._qsize += batch

    # ------------------------------------------------------------------
    # The REQUEST/RECEIVE interface
    # ------------------------------------------------------------------

    def request(self, num_bits: int) -> np.ndarray:
        """The REQUEST/RECEIVE interface: return ``num_bits`` random bits.

        Serves from the queue when possible; triggers refills (the
        firmware sampling routine) otherwise.  Requests larger than the
        queue capacity are served across multiple refill rounds.

        The request path is exception-safe: if a health alarm survives
        recovery, partially-dequeued bits are quarantined (recorded in
        the event log) before the error propagates; on any other
        failure they are returned to the queue, leaving the service
        exactly as it was.  ``bits_served`` only advances on success.

        With :mod:`repro.obs` enabled, each call lands in the
        ``service.request`` latency span/histogram and the
        request/bits-served counters; the queue-occupancy gauge is
        refreshed on exit.  Instrumentation is purely observational and
        never changes the served bits.
        """
        if num_bits <= 0:
            # Reject before startup testing or instrumentation: an
            # invalid request must not trigger harvesting, recovery, or
            # an "error" outcome in the metrics — it never entered the
            # service at all.
            raise InvalidRequestError(
                f"num_bits must be positive, got {num_bits}"
            )
        return self._request_impl(num_bits, np.empty(num_bits, dtype=np.uint8))

    def request_into(self, out: np.ndarray) -> np.ndarray:
        """:meth:`request`, zero-copy: fill the caller's buffer in place.

        ``out`` must be a writeable, C-contiguous uint8 buffer; its
        length is the request size.  Same semantics as :meth:`request`
        otherwise — this is the refill surface
        :class:`~repro.serving.pool.EntropyPool` harvests through to
        land bits straight in its ring.
        """
        if not isinstance(out, np.ndarray) or out.size <= 0:
            raise InvalidRequestError(
                "request_into needs a non-empty numpy buffer, got "
                f"{type(out).__name__}"
            )
        num_bits = int(out.size)
        ensure_bits_buffer(out, num_bits)
        return self._request_impl(num_bits, out)

    def _request_impl(self, num_bits: int, out: np.ndarray) -> np.ndarray:
        with obs.span("service.request", bits=num_bits):
            try:
                self._serve_request(num_bits, out)
            except BaseException:
                obs.counter_add(
                    "drange_service_requests_total", outcome="error"
                )
                obs.gauge_set("drange_service_queue_bits", self._qsize)
                raise
        obs.counter_add("drange_service_requests_total", outcome="ok")
        obs.counter_add("drange_service_bits_served_total", num_bits)
        obs.gauge_set("drange_service_queue_bits", self._qsize)
        return out

    def _serve_request(self, num_bits: int, out: np.ndarray) -> np.ndarray:
        """The uninstrumented request body (see :meth:`request`)."""
        self._recoveries_this_request = 0
        filled = 0
        try:
            self._ensure_started()
            while filled < num_bits:
                if not self._qsize:
                    self._refill()
                    if not self._qsize:
                        # Recovery ran without enqueueing; harvest again.
                        continue
                take = min(self._qsize, num_bits - filled)
                self._pop_queue_into(out[filled : filled + take])
                filled += take
        except HealthError:
            if filled:
                self._events.record(
                    "request_quarantined",
                    f"{filled} partially-served bits discarded",
                )
                self._events.bump("bits_discarded", filled)
            raise
        except BaseException:
            # Non-health failure: hand the dequeued bits back so the
            # request leaves no trace.
            self._unpop_queue(out[:filled])
            raise
        self._bits_served += num_bits
        return out

    def request_bytes(self, num_bytes: int) -> bytes:
        """Convenience: ``num_bytes`` random bytes."""
        if num_bytes <= 0:
            raise InvalidRequestError(
                f"num_bytes must be positive, got {num_bytes}"
            )
        bits = self.request(num_bytes * 8)
        return np.packbits(bits).tobytes()

    def batching_front_end(
        self,
        max_batch_bits: int = 1 << 16,
        max_pending_requests: int = 64,
    ) -> "BatchingFrontEnd":
        """A bounded request-queue front end over this service.

        Concurrent small requests park in a bounded queue and are
        coalesced into one :meth:`request` (and therefore at most a
        handful of compiled-plan executions) per batch — the serving
        shape for many concurrent requesters.  See
        :class:`~repro.parallel.batching.BatchingFrontEnd`.
        """
        from repro.parallel.batching import BatchingFrontEnd

        return BatchingFrontEnd(
            self,
            max_batch_bits=max_batch_bits,
            max_pending_requests=max_pending_requests,
        )

    def sustained_throughput_mbps(self, full_rate_mbps: float) -> float:
        """Sustained rate under the configured duty cycle.

        ``full_rate_mbps`` is the dedicated-mode throughput (Figure 8);
        duty-cycling with application traffic scales it linearly, the
        flexibility knob of Section 7.3.
        """
        if full_rate_mbps < 0:
            raise ConfigurationError(
                f"full_rate_mbps must be non-negative, got {full_rate_mbps}"
            )
        return full_rate_mbps * self._duty_cycle
