"""Full-system integration: the firmware random-number service.

Section 6.3: D-RaNGe runs as a small firmware routine in the memory
controller.  It keeps a queue of already-harvested bits so application
requests are answered with low latency, refilling the queue whenever
DRAM bandwidth is idle; the controller duty-cycles between reduced-tRCD
sampling windows and default-timing application service.

:class:`DRangeService` models that routine, including the
throughput-vs-interference tradeoff of Section 7.3: a ``duty_cycle`` of
0.25 means a quarter of DRAM time is spent generating random numbers,
scaling sustained throughput accordingly while application requests see
the remaining bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.core.sampler import DRangeSampler
from repro.errors import ConfigurationError, HealthError
from repro.health import HealthMonitor


class DRangeService:
    """Firmware-style random-number service with a harvest queue."""

    def __init__(
        self,
        sampler: DRangeSampler,
        queue_bits: int = 4096,
        refill_batch_bits: int = 1024,
        duty_cycle: float = 1.0,
        health_monitor: Optional[HealthMonitor] = None,
    ) -> None:
        if queue_bits <= 0:
            raise ConfigurationError(f"queue_bits must be positive, got {queue_bits}")
        if refill_batch_bits <= 0 or refill_batch_bits > queue_bits:
            raise ConfigurationError(
                "refill_batch_bits must be in (0, queue_bits], got "
                f"{refill_batch_bits}"
            )
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty_cycle must be in (0, 1], got {duty_cycle}"
            )
        self._sampler = sampler
        self._queue: Deque[int] = deque(maxlen=queue_bits)
        self._queue_bits = queue_bits
        self._refill_batch_bits = refill_batch_bits
        self._duty_cycle = duty_cycle
        self._bits_served = 0
        self._health = health_monitor

    @property
    def queue_level(self) -> int:
        """Bits currently buffered."""
        return len(self._queue)

    @property
    def bits_served(self) -> int:
        """Total bits handed to applications so far."""
        return self._bits_served

    @property
    def health_monitor(self) -> Optional[HealthMonitor]:
        """The attached SP 800-90B monitor, if any."""
        return self._health

    @property
    def duty_cycle(self) -> float:
        """Fraction of DRAM time allotted to random-number generation."""
        return self._duty_cycle

    def set_duty_cycle(self, duty_cycle: float) -> None:
        """Re-balance the interference/throughput tradeoff at runtime."""
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty_cycle must be in (0, 1], got {duty_cycle}"
            )
        self._duty_cycle = duty_cycle

    def _refill(self) -> None:
        """Top the queue up to capacity with one sampling batch."""
        space = self._queue_bits - len(self._queue)
        if space <= 0:
            return
        batch = min(self._refill_batch_bits, space)
        fresh = self._sampler.generate_fast(batch)
        if self._health is not None and not self._health.feed(fresh):
            alarm = self._health.alarms[-1]
            raise HealthError(
                f"entropy source degraded: {alarm.test} — {alarm.detail}; "
                "re-identify RNG cells and reset the monitor"
            )
        self._queue.extend(int(b) for b in fresh)

    def request(self, num_bits: int) -> np.ndarray:
        """The REQUEST/RECEIVE interface: return ``num_bits`` random bits.

        Serves from the queue when possible; triggers refills (the
        firmware sampling routine) otherwise.  Requests larger than the
        queue capacity are served across multiple refill rounds.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        out = np.empty(num_bits, dtype=np.uint8)
        filled = 0
        while filled < num_bits:
            if not self._queue:
                self._refill()
            take = min(len(self._queue), num_bits - filled)
            for i in range(take):
                out[filled + i] = self._queue.popleft()
            filled += take
        self._bits_served += num_bits
        return out

    def request_bytes(self, num_bytes: int) -> bytes:
        """Convenience: ``num_bytes`` random bytes."""
        bits = self.request(num_bytes * 8)
        return np.packbits(bits).tobytes()

    def sustained_throughput_mbps(self, full_rate_mbps: float) -> float:
        """Sustained rate under the configured duty cycle.

        ``full_rate_mbps`` is the dedicated-mode throughput (Figure 8);
        duty-cycling with application traffic scales it linearly, the
        flexibility knob of Section 7.3.
        """
        if full_rate_mbps < 0:
            raise ConfigurationError(
                f"full_rate_mbps must be non-negative, got {full_rate_mbps}"
            )
        return full_rate_mbps * self._duty_cycle
