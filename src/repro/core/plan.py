"""Compiled sampling plans: Algorithm 2 lowered to flat arrays.

:func:`compile_sample_plan` lowers a set of
:class:`~repro.core.selection.BankPlan` word choices, a data pattern,
and an operating point into a :class:`CompiledSamplePlan` — the batched
representation both generation paths execute from:

* :meth:`~repro.core.sampler.DRangeSampler.generate_fast` feeds the
  plan's flat coordinate arrays to
  :meth:`~repro.dram.device.DramDevice.sample_cells_bits` (one
  vectorized draw for the whole stream);
* :meth:`~repro.core.sampler.DRangeSampler.generate` plays the plan's
  word program through
  :meth:`~repro.memctrl.controller.MemoryController.reduced_read_burst`
  (one call per Algorithm 2 iteration, command-exact).

A plan snapshots the device's monotonic ``state_epoch`` at compile
time; :meth:`CompiledSamplePlan.is_stale` compares against the live
epoch, so any write, power cycle, temperature/voltage change, or fault
injection forces recompilation.  Mirrors how SoftMC-style testbeds
compile a command program once and replay it, instead of paying a host
round-trip per access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.selection import BankPlan
from repro.dram.datapattern import DataPattern
from repro.dram.device import DramDevice

__all__ = ["CompiledSamplePlan", "CompiledWord", "compile_cells", "compile_sample_plan"]


def _frozen(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class CompiledWord:
    """One reduced-read target word of the compiled program.

    ``offsets`` are the within-word bit positions harvested from the
    read data, in cell order; ``writeback`` is the pattern word restored
    after every read (Algorithm 2 lines 10/14); ``start`` indexes this
    word's first cell in the plan's flat arrays.
    """

    bank: int
    row: int
    word: int
    start: int
    offsets: npt.NDArray[np.int64]
    writeback: npt.NDArray[np.uint8]

    @property
    def n_cells(self) -> int:
        """RNG cells harvested from this word per access."""
        return int(self.offsets.size)


@dataclass(frozen=True)
class CompiledSamplePlan:
    """Flat-array form of one channel's Algorithm 2 loop.

    ``cells`` is the ``(N, 3)`` (bank, row, col) coordinate array in
    loop order (bank plans in order, word1 then word2, cells in word
    order); ``stored_bits`` and ``probabilities`` are the per-cell
    pattern bits and failure probabilities snapshotted at compile time.
    All arrays are read-only.
    """

    trcd_ns: float
    cells: npt.NDArray[np.int64]
    stored_bits: npt.NDArray[np.uint8]
    probabilities: npt.NDArray[np.float64]
    words: Tuple[CompiledWord, ...]
    epoch: int

    @property
    def n_cells(self) -> int:
        """Total RNG cells across the plan."""
        return int(self.cells.shape[0])

    @property
    def data_rate_bits_per_iteration(self) -> int:
        """Random bits one full plan iteration yields."""
        return self.n_cells

    @property
    def banks(self) -> npt.NDArray[np.int64]:
        """Per-cell bank coordinates (view into ``cells``)."""
        return self.cells[:, 0]

    @property
    def rows(self) -> npt.NDArray[np.int64]:
        """Per-cell row coordinates (view into ``cells``)."""
        return self.cells[:, 1]

    @property
    def cols(self) -> npt.NDArray[np.int64]:
        """Per-cell column coordinates (view into ``cells``)."""
        return self.cells[:, 2]

    def is_stale(self, device: DramDevice) -> bool:
        """True when the device's state moved past this plan's snapshot.

        ``device`` may be the compile-time device or any wrapper
        exposing ``state_epoch`` (e.g. a
        :class:`~repro.faults.injector.FaultInjector`, whose epoch also
        advances on inject/heal).
        """
        return int(device.state_epoch) != self.epoch


def compile_cells(
    device: DramDevice, cells: npt.ArrayLike, trcd_ns: float
) -> CompiledSamplePlan:
    """Compile raw (bank, row, col) coordinates into a word-less plan.

    The identification path uses this form: it needs the batched
    coordinate/probability arrays and the staleness contract, but never
    replays a command program.
    """
    coords = np.asarray(cells, dtype=np.int64).reshape(-1, 3)
    probabilities = device.cells_failure_probabilities(coords, trcd_ns)
    stored = device.cells_stored_bits(coords)
    return CompiledSamplePlan(
        trcd_ns=trcd_ns,
        cells=_frozen(coords.copy()),
        stored_bits=_frozen(stored),
        probabilities=_frozen(probabilities),
        words=(),
        epoch=int(device.state_epoch),
    )


def compile_sample_plan(
    device: DramDevice,
    plans: Sequence[BankPlan],
    trcd_ns: float,
    pattern: DataPattern,
) -> CompiledSamplePlan:
    """Lower bank plans + pattern + operating point into a compiled plan.

    Cell order matches the bit order Algorithm 2 emits; word order
    matches the command order the faithful loop issues (so
    ``reduced_read_burst`` is command-for-command identical to the
    per-word harvest it replaces).
    """
    geometry = device.geometry
    word_bits = geometry.word_bits
    coords = []
    words = []
    start = 0
    for plan in plans:
        for choice in (plan.word1, plan.word2):
            offsets = np.asarray(
                [cell.col % word_bits for cell in choice.cells], dtype=np.int64
            )
            writeback = np.asarray(
                pattern.values(
                    np.int64(choice.row),
                    np.asarray(geometry.word_cols(choice.word)),
                ),
                dtype=np.uint8,
            )
            words.append(
                CompiledWord(
                    bank=choice.bank,
                    row=choice.row,
                    word=choice.word,
                    start=start,
                    offsets=_frozen(offsets),
                    writeback=_frozen(writeback),
                )
            )
            coords.extend(
                (cell.bank, cell.row, cell.col) for cell in choice.cells
            )
            start += len(choice.cells)
    cell_array = np.asarray(coords, dtype=np.int64).reshape(-1, 3)
    probabilities = device.cells_failure_probabilities(cell_array, trcd_ns)
    stored = device.cells_stored_bits(cell_array)
    return CompiledSamplePlan(
        trcd_ns=trcd_ns,
        cells=_frozen(cell_array),
        stored_bits=_frozen(stored),
        probabilities=_frozen(probabilities),
        words=tuple(words),
        epoch=int(device.state_epoch),
    )
