"""Algorithm 2: the online random-number sampling loop (Section 6.2).

:class:`DRangeSampler` drives a :class:`~repro.memctrl.controller
.MemoryController` through the paper's loop: write the high-entropy
pattern around the chosen words, reserve the rows, reduce tRCD, then
per bank alternate reduced-latency reads of the two chosen words —
extracting the RNG cells' bits — and write the original data back.

Two generation paths:

* :meth:`generate` — the faithful command-level loop, timed through the
  controller's engine (used for throughput/latency/energy accounting);
* :meth:`generate_fast` — statistically identical vectorized sampling
  (per-access outcomes are independent Bernoulli draws because the loop
  restores all state between accesses); used to build the multi-megabit
  streams the NIST suite consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.buffers import ensure_bits_buffer
from repro.core.plan import CompiledSamplePlan, compile_sample_plan
from repro.core.selection import BankPlan, require_plans
from repro.dram.datapattern import BEST_RNG_PATTERN, DataPattern, pattern_by_name
from repro.errors import ConfigurationError
from repro.memctrl.controller import MemoryController
from repro.obs import runtime as obs

#: Default reduced activation latency for sampling (Section 4).
DEFAULT_SAMPLING_TRCD_NS = 10.0

#: Pre-bound instrument handles for the generation hot path.  Bound
#: handles resolve their registry child once per ``obs.enable`` and
#: revalidate by identity check, so a generation call pays a handful of
#: attribute loads instead of a name/label resolution per metric (the
#: ``benchmarks/bench_obs.py`` enabled-overhead gate is met this way).
_OBS_BITS = {
    path: obs.bound_counter("drange_sampler_bits_total", path=path)
    for path in ("generate", "generate_fast")
}
_OBS_NS_PER_BIT = {
    path: obs.bound_histogram("drange_sampler_ns_per_bit", path=path)
    for path in ("generate", "generate_fast")
}
_OBS_PLAN_COMPILES = obs.bound_counter("drange_sampler_plan_compiles_total")
_OBS_PLAN_REUSES = obs.bound_counter("drange_sampler_plan_reuses_total")

#: The probability-plane gauges are collector-backed: sampled when the
#: metrics are exported, not on every generation call (the plane's own
#: counters already accumulate; copying them into gauges per call would
#: spend hot-path budget keeping values nobody is reading current).
_OBS_PLANE_HITS = obs.bound_gauge("drange_plane_hits")
_OBS_PLANE_MISSES = obs.bound_gauge("drange_plane_misses")
_OBS_PLANE_INVALIDATIONS = obs.bound_gauge("drange_plane_invalidations")


class DRangeSampler:
    """Runs Algorithm 2 against one memory channel."""

    def __init__(
        self,
        controller: MemoryController,
        plans: Sequence[BankPlan],
        trcd_ns: float = DEFAULT_SAMPLING_TRCD_NS,
        pattern: Optional[DataPattern] = None,
    ) -> None:
        self._controller = controller
        self._plans = list(require_plans(plans))
        if trcd_ns >= controller.device.timings.trcd_ns:
            raise ConfigurationError(
                f"sampling tRCD {trcd_ns} ns must be below spec "
                f"{controller.device.timings.trcd_ns} ns"
            )
        self._trcd_ns = trcd_ns
        if pattern is None:
            pattern = pattern_by_name(
                BEST_RNG_PATTERN[controller.device.profile.name]
            )
        self._pattern = pattern
        self._compiled: Optional[CompiledSamplePlan] = None
        self._written_epoch: Optional[int] = None
        obs.add_collector(self._collect_plane)

    @property
    def plans(self) -> Sequence[BankPlan]:
        """Per-bank word plans in use."""
        return tuple(self._plans)

    @property
    def data_rate_bits_per_iteration(self) -> int:
        """Random bits one loop iteration yields across all banks."""
        return sum(plan.data_rate_bits for plan in self._plans)

    @property
    def pattern(self) -> DataPattern:
        """The high-entropy data pattern kept around the RNG cells."""
        return self._pattern

    # ------------------------------------------------------------------
    # Setup / teardown (Alg. 2 lines 2-6 and 18-19)
    # ------------------------------------------------------------------

    def _rows_with_neighbors(self) -> List[Tuple[int, int]]:
        geometry = self._controller.device.geometry
        rows: List[Tuple[int, int]] = []
        for plan in self._plans:
            for _, row in plan.reserved_rows:
                for neighbor in (row - 1, row, row + 1):
                    if 0 <= neighbor < geometry.rows_per_bank:
                        rows.append((plan.bank, neighbor))
        return rows

    def setup(self) -> None:
        """Write the pattern, reserve rows, reduce tRCD (lines 2-6).

        Pattern writes are skipped when the device's ``state_epoch``
        still matches the last setup — every stored-state mutation bumps
        the epoch, so an unchanged epoch proves the pattern rows are
        exactly as this sampler left them.
        """
        device = self._controller.device
        rows = self._rows_with_neighbors()
        if self._written_epoch != device.state_epoch:
            for bank, row in rows:
                device.bank(bank).write_row(
                    row,
                    self._pattern.row_values(row, device.geometry.cols_per_row),
                )
            self._written_epoch = device.state_epoch
        self._controller.reserve_rows(rows)
        self._controller.set_reduced_trcd(self._trcd_ns)

    def compiled_plan(self) -> CompiledSamplePlan:
        """The compiled form of this sampler's plans (cached per epoch).

        Recompiled automatically whenever the device's ``state_epoch``
        moves — a write, power cycle, temperature/voltage change, or
        fault injection all invalidate the cached plan.
        """
        device = self._controller.device
        if self._compiled is None or self._compiled.is_stale(device):
            self._compiled = compile_sample_plan(
                device, self._plans, self._trcd_ns, self._pattern
            )
            _OBS_PLAN_COMPILES.add()
        else:
            _OBS_PLAN_REUSES.add()
        return self._compiled

    def _observe_generation(self, path: str, num_bits: int, elapsed_ns: int) -> None:
        """Account one finished generation call to the metrics registry.

        Purely observational — called only when observability is on, and
        never touches sampler or device state, so seeded outputs stay
        bit-identical with instrumentation enabled.
        """
        _OBS_BITS[path].add(num_bits)
        if elapsed_ns > 0:
            _OBS_NS_PER_BIT[path].observe(elapsed_ns / num_bits)

    def _collect_plane(self) -> None:
        """Export-time collector: mirror the probability-plane counters.

        Registered with :func:`repro.obs.runtime.add_collector` at
        construction (weakly held, so the sampler's lifetime is
        unaffected); the facade exporters call it before rendering, so
        the gauges track ``device.plane`` without per-generation cost.
        """
        plane = getattr(self._controller.device, "plane", None)
        if plane is not None:
            _OBS_PLANE_HITS.set(plane.hits)
            _OBS_PLANE_MISSES.set(plane.misses)
            _OBS_PLANE_INVALIDATIONS.set(plane.invalidations)

    def teardown(self) -> None:
        """Restore spec timings and release the rows (lines 18-19)."""
        self._controller.restore_timings()
        self._controller.release_rows()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate(self, num_bits: int) -> np.ndarray:
        """Faithful Algorithm 2: returns ``num_bits`` random bits.

        Each loop iteration plays the whole compiled plan through
        :meth:`~repro.memctrl.controller.MemoryController
        .reduced_read_burst`, so the engine trace accumulates the exact
        command stream of the per-word loop; wrapping this call with
        trace inspection yields the paper's throughput and energy
        measurements.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        rate = self.data_rate_bits_per_iteration
        if not rate:
            raise ConfigurationError("selected words contain no RNG cells")
        sp = obs.span("sampler.generate", bits=num_bits)
        with sp:
            self.setup()
            try:
                plan = self.compiled_plan()
                iterations = -(-num_bits // rate)  # ceil
                chunks = np.atleast_2d(
                    self._controller.reduced_read_burst(plan, iterations=iterations)
                )
            finally:
                self.teardown()
        if obs.enabled():
            self._observe_generation("generate", num_bits, sp.elapsed_ns)
        return chunks.reshape(-1)[:num_bits]

    def generate_fast(
        self, num_bits: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vectorized, statistically identical generation.

        Valid because Algorithm 2 restores every piece of state between
        accesses (pattern write-back, precharge, constant temperature),
        making each access an independent Bernoulli draw per RNG cell.
        The compiled plan's cells are sampled in one batched
        mixture-sampler call; bits come out iteration-major, cell-minor
        — the order Algorithm 2 appends them.

        ``out``, when given, receives the bits in place (a writeable,
        C-contiguous uint8 buffer of ``num_bits`` entries, e.g. one
        channel segment of a multi-channel harvest buffer) and is
        returned; anything else raises
        :class:`~repro.errors.InvalidBufferError` before any device
        work runs.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        if not self.data_rate_bits_per_iteration:
            raise ConfigurationError("selected words contain no RNG cells")
        ensure_bits_buffer(out, num_bits)
        sp = obs.span("sampler.generate_fast", bits=num_bits)
        with sp:
            self.setup()
            try:
                device = self._controller.device
                plan = self.compiled_plan()
                per_cell = -(-num_bits // plan.n_cells)  # ceil
                bits = device.sample_cells_bits(
                    plan.cells,
                    per_cell,
                    self._trcd_ns,
                    mixture=True,
                    probabilities=plan.probabilities,
                    stored_bits=plan.stored_bits,
                )
            finally:
                self.teardown()
        if obs.enabled():
            self._observe_generation("generate_fast", num_bits, sp.elapsed_ns)
        flat = bits.reshape(-1)[:num_bits]
        if out is not None:
            out[...] = flat
            return out
        return flat
