"""Algorithm 2: the online random-number sampling loop (Section 6.2).

:class:`DRangeSampler` drives a :class:`~repro.memctrl.controller
.MemoryController` through the paper's loop: write the high-entropy
pattern around the chosen words, reserve the rows, reduce tRCD, then
per bank alternate reduced-latency reads of the two chosen words —
extracting the RNG cells' bits — and write the original data back.

Two generation paths:

* :meth:`generate` — the faithful command-level loop, timed through the
  controller's engine (used for throughput/latency/energy accounting);
* :meth:`generate_fast` — statistically identical vectorized sampling
  (per-access outcomes are independent Bernoulli draws because the loop
  restores all state between accesses); used to build the multi-megabit
  streams the NIST suite consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.selection import BankPlan, WordChoice, require_plans
from repro.dram.datapattern import BEST_RNG_PATTERN, DataPattern, pattern_by_name
from repro.errors import ConfigurationError
from repro.memctrl.controller import MemoryController

#: Default reduced activation latency for sampling (Section 4).
DEFAULT_SAMPLING_TRCD_NS = 10.0


class DRangeSampler:
    """Runs Algorithm 2 against one memory channel."""

    def __init__(
        self,
        controller: MemoryController,
        plans: Sequence[BankPlan],
        trcd_ns: float = DEFAULT_SAMPLING_TRCD_NS,
        pattern: Optional[DataPattern] = None,
    ) -> None:
        self._controller = controller
        self._plans = list(require_plans(plans))
        if trcd_ns >= controller.device.timings.trcd_ns:
            raise ConfigurationError(
                f"sampling tRCD {trcd_ns} ns must be below spec "
                f"{controller.device.timings.trcd_ns} ns"
            )
        self._trcd_ns = trcd_ns
        if pattern is None:
            pattern = pattern_by_name(
                BEST_RNG_PATTERN[controller.device.profile.name]
            )
        self._pattern = pattern

    @property
    def plans(self) -> Sequence[BankPlan]:
        """Per-bank word plans in use."""
        return tuple(self._plans)

    @property
    def data_rate_bits_per_iteration(self) -> int:
        """Random bits one loop iteration yields across all banks."""
        return sum(plan.data_rate_bits for plan in self._plans)

    @property
    def pattern(self) -> DataPattern:
        """The high-entropy data pattern kept around the RNG cells."""
        return self._pattern

    # ------------------------------------------------------------------
    # Setup / teardown (Alg. 2 lines 2-6 and 18-19)
    # ------------------------------------------------------------------

    def _rows_with_neighbors(self) -> List[Tuple[int, int]]:
        geometry = self._controller.device.geometry
        rows: List[Tuple[int, int]] = []
        for plan in self._plans:
            for _, row in plan.reserved_rows:
                for neighbor in (row - 1, row, row + 1):
                    if 0 <= neighbor < geometry.rows_per_bank:
                        rows.append((plan.bank, neighbor))
        return rows

    def setup(self) -> None:
        """Write the pattern, reserve rows, reduce tRCD (lines 2-6)."""
        device = self._controller.device
        rows = self._rows_with_neighbors()
        for bank, row in rows:
            device.bank(bank).write_row(
                row, self._pattern.row_values(row, device.geometry.cols_per_row)
            )
        self._controller.reserve_rows(rows)
        self._controller.set_reduced_trcd(self._trcd_ns)

    def teardown(self) -> None:
        """Restore spec timings and release the rows (lines 18-19)."""
        self._controller.restore_timings()
        self._controller.release_rows()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def _harvest_word(self, choice: WordChoice) -> List[int]:
        """Lines 8-11 / 12-15 for one chosen word."""
        device = self._controller.device
        word_bits = device.geometry.word_bits
        read = self._controller.reduced_read(choice.bank, choice.row, choice.word)
        harvested = [int(read[cell.col % word_bits]) for cell in choice.cells]
        original = self._pattern.values(
            np.int64(choice.row), np.asarray(device.geometry.word_cols(choice.word))
        )
        self._controller.writeback(choice.bank, choice.word, original)
        # The memory barrier of lines 11/15: the next ACT to this bank
        # (the alternation partner) cannot issue before the write
        # completes, which the timing engine's write-recovery + tRP
        # constraints already enforce.
        self._controller.precharge(choice.bank)
        return harvested

    def generate(self, num_bits: int) -> np.ndarray:
        """Faithful Algorithm 2: returns ``num_bits`` random bits.

        The controller's engine trace accumulates the command stream,
        so wrapping this call with trace inspection yields the paper's
        throughput and energy measurements.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        self.setup()
        bitstream: List[int] = []
        try:
            while len(bitstream) < num_bits:
                for plan in self._plans:
                    bitstream.extend(self._harvest_word(plan.word1))
                    bitstream.extend(self._harvest_word(plan.word2))
                if not self.data_rate_bits_per_iteration:
                    raise ConfigurationError("selected words contain no RNG cells")
        finally:
            self.teardown()
        return np.asarray(bitstream[:num_bits], dtype=np.uint8)

    def generate_fast(self, num_bits: int) -> np.ndarray:
        """Vectorized, statistically identical generation.

        Valid because Algorithm 2 restores every piece of state between
        accesses (pattern write-back, precharge, constant temperature),
        making each access an independent Bernoulli draw per RNG cell.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        self.setup()
        try:
            device = self._controller.device
            cells = [
                cell
                for plan in self._plans
                for choice in (plan.word1, plan.word2)
                for cell in choice.cells
            ]
            if not cells:
                raise ConfigurationError("selected words contain no RNG cells")
            per_cell = -(-num_bits // len(cells))  # ceil
            streams = [
                device.sample_cell_bits(
                    cell.bank, cell.row, cell.col, per_cell, self._trcd_ns
                )
                for cell in cells
            ]
            # Interleave in loop order: iteration-major, cell-minor,
            # matching the order Algorithm 2 appends bits.
            interleaved = np.stack(streams, axis=1).reshape(-1)
        finally:
            self.teardown()
        return interleaved[:num_bits].astype(np.uint8)
