"""DRAM-word selection for Algorithm 2 (Section 6.2, lines 3-5).

For each bank, D-RaNGe picks the two DRAM words with the highest RNG-
cell density, *in distinct rows* so alternating accesses always hit a
closed row (bank conflicts by construction — only the first access
after an ACT can fail).  The per-bank RNG-cell sum of the two chosen
words is that bank's TRNG data rate in bits per Algorithm 2 iteration.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.identification import RngCell
from repro.dram.geometry import DeviceGeometry
from repro.errors import IdentificationError


@dataclass(frozen=True)
class WordChoice:
    """One chosen DRAM word and the RNG cells it contains."""

    bank: int
    row: int
    word: int
    cells: Tuple[RngCell, ...]

    @property
    def data_rate_bits(self) -> int:
        """Random bits one reduced-latency access of this word yields."""
        return len(self.cells)


@dataclass(frozen=True)
class BankPlan:
    """The two alternating words Algorithm 2 uses in one bank."""

    word1: WordChoice
    word2: WordChoice

    def __post_init__(self) -> None:
        if self.word1.bank != self.word2.bank:
            raise ValueError("a bank plan must stay within one bank")
        if self.word1.row == self.word2.row:
            raise ValueError(
                "the two words must sit in distinct rows (bank-conflict "
                "alternation, Alg. 2 lines 8/12)"
            )

    @property
    def bank(self) -> int:
        """Bank this plan drives."""
        return self.word1.bank

    @property
    def data_rate_bits(self) -> int:
        """Bank TRNG data rate: RNG cells across both words."""
        return self.word1.data_rate_bits + self.word2.data_rate_bits

    @property
    def reserved_rows(self) -> Tuple[Tuple[int, int], ...]:
        """(bank, row) pairs Algorithm 2 must reserve (plus neighbors,
        which the caller expands using the device geometry)."""
        return ((self.bank, self.word1.row), (self.bank, self.word2.row))


def select_words(
    cells: Sequence[RngCell],
    geometry: DeviceGeometry,
    banks: Optional[Sequence[int]] = None,
) -> List[BankPlan]:
    """Build per-bank plans from an identified RNG-cell set.

    Returns a plan for every requested bank that has RNG cells in at
    least two distinct rows; banks without enough cells are skipped
    (the paper's Figure 7 shows every real bank qualifies, but small
    simulated regions may not).
    """
    by_word: Dict[Tuple[int, int, int], List[RngCell]] = defaultdict(list)
    for cell in cells:
        by_word[(cell.bank, cell.row, cell.word_index(geometry.word_bits))].append(
            cell
        )

    words_by_bank: Dict[int, List[WordChoice]] = defaultdict(list)
    for (bank, row, word), word_cells in by_word.items():
        words_by_bank[bank].append(
            WordChoice(bank=bank, row=row, word=word, cells=tuple(word_cells))
        )

    wanted = sorted(words_by_bank) if banks is None else list(banks)
    plans: List[BankPlan] = []
    for bank in wanted:
        choices = sorted(
            words_by_bank.get(bank, ()),
            key=lambda w: (-w.data_rate_bits, w.row, w.word),
        )
        if not choices:
            continue
        best = choices[0]
        second = next((w for w in choices[1:] if w.row != best.row), None)
        if second is None:
            continue
        plans.append(BankPlan(word1=best, word2=second))
    return plans


def require_plans(plans: Sequence[BankPlan]) -> Sequence[BankPlan]:
    """Raise a helpful error when selection produced no usable banks."""
    if not plans:
        raise IdentificationError(
            "no bank has RNG cells in two distinct rows; profile a larger "
            "region or relax the identification tolerance"
        )
    return plans
