"""RNG-cell identification (Section 6.1).

The paper's procedure: read every candidate cell 1000 times with the
reduced tRCD, approximate its Shannon entropy by counting 3-bit-symbol
occurrences across the 1000-bit stream, and accept cells for which every
possible 3-bit symbol appears within ±10% of its expected count.  The
accepted cells are the *RNG cells* — unbiased, high-entropy — and their
locations are stored per temperature in the memory controller
(:class:`RngCellRegistry`), to be re-identified at long intervals
(≥ 15 days, per the Section 5.4 stability study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.device import DramDevice
from repro.dram.timing import CHARACTERIZATION_TRCD_NS
from repro.errors import ConfigurationError, IdentificationError
from repro.noise import NoiseSource
from repro.parallel.pool import WorkerPool
from repro.parallel.tiles import partition_chunks

#: Symbol width used by the entropy filter.
SYMBOL_BITS = 3

#: Paper defaults for the identification pass.
DEFAULT_SAMPLES = 1000
DEFAULT_TOLERANCE = 0.10

#: Re-identification interval suggested by the 15-day stability study.
REIDENTIFY_INTERVAL_DAYS = 15.0


@dataclass(frozen=True)
class RngCell:
    """One identified RNG cell and its identification-time statistics."""

    bank: int
    row: int
    col: int
    entropy: float
    fail_probability: float

    def word_index(self, word_bits: int) -> int:
        """DRAM word (access granularity) this cell belongs to."""
        return self.col // word_bits


def symbol_counts(bits: np.ndarray, symbol_bits: int = SYMBOL_BITS) -> np.ndarray:
    """Occurrences of each symbol over overlapping windows of the stream."""
    bits = np.asarray(bits, dtype=np.int64)
    if bits.size < symbol_bits:
        raise ConfigurationError(
            f"stream of {bits.size} bits too short for {symbol_bits}-bit symbols"
        )
    n_windows = bits.size - symbol_bits + 1
    codes = np.zeros(n_windows, dtype=np.int64)
    for k in range(symbol_bits):
        codes = (codes << 1) | bits[k : k + n_windows]
    return np.bincount(codes, minlength=1 << symbol_bits)


def passes_symbol_filter(
    bits: np.ndarray,
    symbol_bits: int = SYMBOL_BITS,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """True when every symbol count is within ±tolerance of expected."""
    counts = symbol_counts(bits, symbol_bits)
    expected = (bits.size - symbol_bits + 1) / float(1 << symbol_bits)
    return bool(np.all(np.abs(counts - expected) <= tolerance * expected))


def stream_entropy(bits: np.ndarray) -> float:
    """Shannon entropy (bits/bit) from the stream's ones proportion.

    This is the estimate Section 7.1 reports (minimum 0.9507 across
    RNG cells).
    """
    bits = np.asarray(bits)
    if bits.size == 0:
        raise ConfigurationError("cannot compute entropy of an empty stream")
    p = float(bits.mean())
    if p in (0.0, 1.0):
        return 0.0
    return float(-(p * np.log2(p) + (1 - p) * np.log2(1 - p)))


def verify_unbiased(
    device: DramDevice,
    cells: Sequence[RngCell],
    trcd_ns: float = CHARACTERIZATION_TRCD_NS,
    samples: int = 100_000,
    max_bias: float = 0.004,
) -> List[RngCell]:
    """Second-stage bias verification for long-stream use.

    The 1000-sample symbol filter cannot resolve a residual bias of a
    percent or two, but a megabit NIST monobit test can (it needs
    |p − 0.5| ≲ 0.002).  For workloads that consume very long streams
    from individual cells — the Table 1 evaluation — this stage
    re-samples each identified cell and keeps only those whose measured
    ones-ratio stays within ``max_bias`` of 1/2, rejecting transition
    cells that slipped through the symbol filter.
    """
    if samples < 10_000:
        raise ConfigurationError(f"samples must be >= 10000, got {samples}")
    if not 0.0 < max_bias < 0.5:
        raise ConfigurationError(f"max_bias must be in (0, 0.5), got {max_bias}")
    verified: List[RngCell] = []
    # Chunked so the batched draw matrix stays bounded (~32 MB); the
    # exact stream-order draw keeps results bit-identical to per-cell
    # sampling for a seeded source.
    chunk = max(1, 4_000_000 // samples)
    for start in range(0, len(cells), chunk):
        batch = list(cells[start : start + chunk])
        coords = np.asarray(
            [(cell.bank, cell.row, cell.col) for cell in batch], dtype=np.int64
        )
        bits = device.sample_cells_bits(coords, samples, trcd_ns)
        for j, cell in enumerate(batch):
            if abs(float(bits[:, j].mean()) - 0.5) <= max_bias:
                verified.append(cell)
    return verified


@dataclass
class RngCellRegistry:
    """Per-temperature RNG-cell sets stored in the memory controller.

    Section 6.1: entropy changes with temperature, so D-RaNGe keeps one
    identified set per temperature and samples the set matching the
    DRAM temperature at request time.
    """

    trcd_ns: float = CHARACTERIZATION_TRCD_NS
    _by_temperature: Dict[float, List[RngCell]] = field(default_factory=dict)

    def store(self, temperature_c: float, cells: Sequence[RngCell]) -> None:
        """Record the identified set for one temperature."""
        self._by_temperature[round(float(temperature_c), 1)] = list(cells)

    def cells_at(self, temperature_c: float) -> List[RngCell]:
        """The set identified at the temperature closest to the query.

        Raises :class:`IdentificationError` when the registry is empty.
        """
        if not self._by_temperature:
            raise IdentificationError("no RNG cells identified yet")
        key = min(
            self._by_temperature, key=lambda t: abs(t - float(temperature_c))
        )
        return list(self._by_temperature[key])

    def discard(self, temperature_c: float) -> bool:
        """Quarantine the stored set nearest ``temperature_c``.

        Used by the self-healing service before re-identification: a
        poisoned cell set must not survive as a fallback for
        :meth:`cells_at` lookups.  Returns ``True`` when a set was
        dropped, ``False`` when the registry was already empty.
        """
        if not self._by_temperature:
            return False
        key = min(
            self._by_temperature, key=lambda t: abs(t - float(temperature_c))
        )
        del self._by_temperature[key]
        return True

    @property
    def temperatures(self) -> Tuple[float, ...]:
        """Temperatures with an identified cell set."""
        return tuple(sorted(self._by_temperature))

    def __len__(self) -> int:
        return sum(len(cells) for cells in self._by_temperature.values())


#: Chunk size for the parallel identification path: one worker task per
#: 128-candidate slice, matching the serial ``max_cells`` chunking.
IDENTIFY_CHUNK = 128


def identify_rng_cells(
    device: DramDevice,
    candidates: np.ndarray,
    trcd_ns: float = CHARACTERIZATION_TRCD_NS,
    samples: int = DEFAULT_SAMPLES,
    tolerance: float = DEFAULT_TOLERANCE,
    max_cells: Optional[int] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> List[RngCell]:
    """Apply the 3-bit-symbol entropy filter to candidate cells.

    ``candidates`` is an (N, 3) array of (bank, row, col) coordinates —
    typically :meth:`CharacterizationResult.cells_in_band` output, which
    prunes the full-array scan to cells already near 50% Fprob.  All
    candidates are sampled ``samples`` times at the reduced tRCD in one
    batched draw (compiled through the device's probability plane) and
    kept if their symbol distribution is flat.  The batched draw
    consumes the noise stream exactly as the per-candidate loop it
    replaced, so seeded identification results are unchanged; with
    ``max_cells`` set, sampling proceeds in chunks and stops at the
    first chunk that fills the cap.

    ``parallel``/``max_workers`` select the worker-sharded path: the
    candidate list is cut into fixed 128-cell chunks, the coordinator
    snapshots per-cell probabilities and stored bits from the
    probability plane, and each chunk is drawn by a worker from its own
    index-assigned child noise stream — a pure function of small
    arrays, so workers never touch the device.  Seeded parallel results
    are bit-identical for any worker count; they differ from the
    (default) serial path, which preserves the historical single-stream
    draw order.  ``parallel=None`` enables the sharded path exactly
    when ``max_workers`` is given.
    """
    candidates = np.asarray(candidates)
    if candidates.ndim != 2 or (candidates.size and candidates.shape[1] != 3):
        raise ConfigurationError(
            f"candidates must be (N, 3) coordinates, got shape {candidates.shape}"
        )
    if samples < 100:
        raise ConfigurationError(f"samples must be >= 100, got {samples}")
    if parallel is None:
        parallel = max_workers is not None

    accepted: List[RngCell] = []
    if not len(candidates):
        return accepted
    if parallel:
        return _identify_parallel(
            device, candidates, trcd_ns, samples, tolerance, max_cells, max_workers
        )
    chunk = len(candidates) if max_cells is None else min(len(candidates), 128)
    for start in range(0, len(candidates), chunk):
        batch = np.asarray(candidates[start : start + chunk], dtype=np.int64)
        bits = device.sample_cells_bits(batch, samples, trcd_ns)
        for j in _passing_columns(bits, tolerance):
            stream = bits[:, j]
            accepted.append(
                RngCell(
                    bank=int(batch[j, 0]),
                    row=int(batch[j, 1]),
                    col=int(batch[j, 2]),
                    entropy=stream_entropy(stream),
                    fail_probability=float(stream.mean()),
                )
            )
            if max_cells is not None and len(accepted) >= max_cells:
                return accepted
    return accepted


def _draw_chunk_bits(
    task: Tuple[np.ndarray, np.ndarray, int, NoiseSource]
) -> np.ndarray:
    """Worker entry: one chunk's (samples, n) bit matrix.

    A pure function of the snapshotted probabilities/stored bits and the
    chunk's own child stream — no device access, so it is safe on any
    backend and its output depends only on the chunk index.
    """
    probs, stored, samples, stream = task
    flips = stream.bernoulli_plane(probs, samples, invert=stored)
    return flips.view(np.uint8)


def _identify_parallel(
    device: DramDevice,
    candidates: np.ndarray,
    trcd_ns: float,
    samples: int,
    tolerance: float,
    max_cells: Optional[int],
    max_workers: Optional[int],
) -> List[RngCell]:
    """Worker-sharded symbol filter over fixed candidate chunks.

    The coordinator resolves every candidate's failure probability and
    stored bit once (plane-backed, deterministic), fans the chunks out
    to thread workers — the draw is numpy-bound and releases the GIL,
    so processes would only add pickling overhead — and assembles
    accepted cells in chunk order, truncating at ``max_cells`` exactly
    like the serial path.
    """
    cells = np.asarray(candidates, dtype=np.int64)
    probs = device.cells_failure_probabilities(cells, trcd_ns)
    stored = device.cells_stored_bits(cells)
    if hasattr(device, "advance"):
        # Clocked proxies (fault injectors): the snapshot above was
        # taken at the current bit clock; account for the reads the
        # workers are about to perform so later fault windows line up.
        device.advance(samples * len(cells))
    chunks = partition_chunks(len(cells), IDENTIFY_CHUNK)
    streams = device.noise.spawn_streams(len(chunks))
    tasks = [
        (probs[start:stop], stored[start:stop], samples, streams[k])
        for k, (start, stop) in enumerate(chunks)
    ]

    pool = WorkerPool(max_workers=max_workers, backend="thread")
    outcomes = pool.execute(_draw_chunk_bits, tasks)

    accepted: List[RngCell] = []
    for k, (start, stop) in enumerate(chunks):
        outcome = outcomes[k]
        if outcome.ok:
            bits = outcome.value
        else:
            # Serial re-draw with the chunk's own stream — the graceful
            # fallback when a worker failed to return its matrix.
            bits = _draw_chunk_bits(tasks[k])
        batch = cells[start:stop]
        for j in _passing_columns(bits, tolerance):
            stream_bits = bits[:, j]
            accepted.append(
                RngCell(
                    bank=int(batch[j, 0]),
                    row=int(batch[j, 1]),
                    col=int(batch[j, 2]),
                    entropy=stream_entropy(stream_bits),
                    fail_probability=float(stream_bits.mean()),
                )
            )
            if max_cells is not None and len(accepted) >= max_cells:
                return accepted
    return accepted


def _passing_columns(bits: np.ndarray, tolerance: float) -> np.ndarray:
    """Columns of the (samples, N) bit matrix passing the symbol filter.

    Vectorized :func:`passes_symbol_filter` over every cell at once:
    3-bit window codes are offset by ``8 × cell`` so one ``bincount``
    yields every cell's symbol histogram.
    """
    samples, n = bits.shape
    n_windows = samples - SYMBOL_BITS + 1
    matrix = bits.astype(np.int64)
    codes = np.zeros((n_windows, n), dtype=np.int64)
    for k in range(SYMBOL_BITS):
        codes = (codes << 1) | matrix[k : k + n_windows]
    codes += np.arange(n, dtype=np.int64)[np.newaxis, :] << SYMBOL_BITS
    counts = np.bincount(
        codes.ravel(), minlength=n << SYMBOL_BITS
    ).reshape(n, 1 << SYMBOL_BITS)
    expected = n_windows / float(1 << SYMBOL_BITS)
    ok = (np.abs(counts - expected) <= tolerance * expected).all(axis=1)
    return np.nonzero(ok)[0]
