"""Latency to produce a 64-bit random value (Section 7.3, "Low Latency").

The paper bounds D-RaNGe's latency using JEDEC LPDDR4 timings:

* **maximum** — 1 RNG cell per word, a single bank in a single channel:
  64 strictly sequential reduced-latency accesses;
* **parallel** — 16 accesses per channel across 4 channels (64 bits at
  1 bit/access): reported as 220 ns;
* **minimum** — 4 RNG cells per word, all banks of 4 channels: 100 ns.

This module reproduces those estimates with the timing engine.  Unlike
the paper's idealized per-access figure, the engine enforces the full
constraint set; ``aggressive_precharge`` controls whether the loop
waits out tRAS before PRE (D-RaNGe may violate tRAS too — the sampled
word's contents are rewritten every iteration anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError
from repro.sim.engine import TimingEngine


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency of one 64-bit generation scenario."""

    scenario: str
    channels: int
    banks_per_channel: int
    bits_per_access: int
    latency_ns: float


def _engine_timings(
    timings: TimingParameters, aggressive_precharge: bool
) -> TimingParameters:
    if not aggressive_precharge:
        return timings
    # Allow PRE as soon as the read-to-precharge window closes instead
    # of waiting out full restoration.
    return replace(timings, tras_ns=max(timings.trtp_ns, 1.0))


def sixty_four_bit_latency(
    timings: TimingParameters,
    trcd_ns: float,
    channels: int,
    banks_per_channel: int,
    bits_per_access: int,
    aggressive_precharge: bool = True,
) -> LatencyEstimate:
    """Time until 64 random bits are available in a given configuration.

    Channels operate independently, so the channel-level latency is the
    time one channel needs to complete its share of the accesses.
    """
    if channels <= 0 or banks_per_channel <= 0 or bits_per_access <= 0:
        raise ConfigurationError("channels, banks and bits/access must be positive")
    total_accesses = -(-64 // bits_per_access)  # ceil
    per_channel = -(-total_accesses // channels)

    engine = TimingEngine(
        _engine_timings(timings, aggressive_precharge), banks=banks_per_channel
    )
    remaining = per_channel
    last_data_ns = 0.0
    row_toggle = 0
    while remaining > 0:
        batch = min(remaining, banks_per_channel)
        issued = []
        for bank in range(batch):
            engine.activate(bank, row_toggle)
        for bank in range(batch):
            issued.append(engine.read(bank, trcd_ns=trcd_ns))
        for bank in range(batch):
            engine.precharge(bank)
        last_data_ns = engine.read_data_available_ns(issued[-1])
        remaining -= batch
        row_toggle ^= 1

    scenario = (
        f"{channels}ch x {banks_per_channel}bank, {bits_per_access}b/access"
    )
    return LatencyEstimate(
        scenario=scenario,
        channels=channels,
        banks_per_channel=banks_per_channel,
        bits_per_access=bits_per_access,
        latency_ns=last_data_ns,
    )


def paper_scenarios(timings: TimingParameters, trcd_ns: float = 10.0):
    """The three Section 7.3 configurations, worst to best."""
    return (
        sixty_four_bit_latency(timings, trcd_ns, 1, 1, 1),
        sixty_four_bit_latency(timings, trcd_ns, 4, 8, 1),
        sixty_four_bit_latency(timings, trcd_ns, 4, 8, 4),
    )
