"""Algorithm 1: inducing and counting activation failures over a region.

``profile_region`` implements the paper's characterization loop — write
a data pattern, reduce tRCD, probe every (row, column) with
refresh → ACT → READ → PRE, record failures — and returns per-cell
failure counts.

Two execution paths produce statistically identical results:

* ``command_level=True`` drives every probe through the behavioral bank
  protocol, one command at a time — faithful but slow; used by tests to
  validate the fast path.
* the default fast path evaluates the per-cell failure probabilities
  once (conditions are held constant across iterations, exactly as
  Algorithm 1's per-access refresh guarantees) and draws binomial
  counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.dram.datapattern import DataPattern
from repro.dram.device import DramDevice
from repro.dram.timing import CHARACTERIZATION_TRCD_NS
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Region:
    """A rectangular DRAM region under characterization."""

    banks: Tuple[int, ...] = (0,)
    row_start: int = 0
    row_count: int = 512

    def __post_init__(self) -> None:
        if not self.banks:
            raise ConfigurationError("a region needs at least one bank")
        if self.row_count <= 0:
            raise ConfigurationError(
                f"row_count must be positive, got {self.row_count}"
            )
        if self.row_start < 0:
            raise ConfigurationError(
                f"row_start must be non-negative, got {self.row_start}"
            )

    @property
    def rows(self) -> range:
        """Rows covered by the region."""
        return range(self.row_start, self.row_start + self.row_count)


@dataclass
class CharacterizationResult:
    """Per-cell failure counts from one Algorithm 1 run.

    ``counts[bank_pos, row_pos, col]`` is the number of iterations in
    which that cell read back flipped; ``bank_pos``/``row_pos`` index
    into ``region.banks`` / ``region.rows``.
    """

    region: Region
    pattern_name: str
    trcd_ns: float
    iterations: int
    temperature_c: float
    counts: np.ndarray = field(repr=False)

    @property
    def fail_probabilities(self) -> np.ndarray:
        """Empirical per-cell failure probability (counts / iterations)."""
        return self.counts / float(self.iterations)

    @property
    def failing_cell_count(self) -> int:
        """Cells that failed at least once."""
        return int((self.counts > 0).sum())

    def failing_cells(self) -> np.ndarray:
        """(bank, row, col) coordinates of every cell that ever failed."""
        bank_pos, row_pos, cols = np.nonzero(self.counts)
        banks = np.asarray(self.region.banks)[bank_pos]
        rows = self.region.row_start + row_pos
        return np.stack([banks, rows, cols], axis=1)

    def cells_in_band(self, low: float = 0.4, high: float = 0.6) -> np.ndarray:
        """(bank, row, col) of cells with empirical Fprob in [low, high]."""
        probs = self.fail_probabilities
        bank_pos, row_pos, cols = np.nonzero((probs >= low) & (probs <= high))
        banks = np.asarray(self.region.banks)[bank_pos]
        rows = self.region.row_start + row_pos
        return np.stack([banks, rows, cols], axis=1)


def profile_region(
    device: DramDevice,
    pattern: DataPattern,
    region: Optional[Region] = None,
    trcd_ns: float = CHARACTERIZATION_TRCD_NS,
    iterations: int = 100,
    command_level: bool = False,
    write_pattern: bool = True,
) -> CharacterizationResult:
    """Run Algorithm 1 over ``region`` and return per-cell fail counts.

    Parameters mirror the paper's testing methodology (Section 4):
    ``trcd_ns`` defaults to the characterization value of 10 ns and
    ``iterations`` to the 100 rounds used for Fprob estimates.
    """
    if iterations <= 0:
        raise ConfigurationError(f"iterations must be positive, got {iterations}")
    if region is None:
        region = Region()
    geometry = device.geometry
    for bank in region.banks:
        geometry.validate_bank(bank)
    if region.row_start + region.row_count > geometry.rows_per_bank:
        raise ConfigurationError(
            f"region rows [{region.row_start}, "
            f"{region.row_start + region.row_count}) exceed bank size "
            f"{geometry.rows_per_bank}"
        )

    if write_pattern:
        device.write_pattern(pattern, banks=region.banks, rows=region.rows)

    counts = np.zeros(
        (len(region.banks), region.row_count, geometry.cols_per_row),
        dtype=np.int64,
    )
    if command_level:
        _profile_command_level(device, region, trcd_ns, iterations, counts)
    else:
        # One batched binomial draw per bank; row probabilities are
        # served (and kept warm for the identification pass that
        # follows) by the device's probability plane.  Stream
        # consumption matches the former per-row loop exactly.
        for bank_pos, bank in enumerate(region.banks):
            counts[bank_pos] = device.sample_rows_fail_counts(
                bank, region.rows, trcd_ns, iterations
            )

    return CharacterizationResult(
        region=region,
        pattern_name=pattern.name,
        trcd_ns=trcd_ns,
        iterations=iterations,
        temperature_c=device.temperature_c,
        counts=counts,
    )


def _profile_command_level(
    device: DramDevice,
    region: Region,
    trcd_ns: float,
    iterations: int,
    counts: np.ndarray,
) -> None:
    """Faithful per-command Algorithm 1 (column order, refresh first)."""
    geometry = device.geometry
    for _ in range(iterations):
        # Column (word) order, as Algorithm 1 lines 4-5: every access
        # goes to a closed row and therefore requires an activation.
        for word in range(geometry.words_per_row):
            col_slice = slice(
                word * geometry.word_bits, (word + 1) * geometry.word_bits
            )
            for bank_pos, bank in enumerate(region.banks):
                target = device.bank(bank)
                for row_pos, row in enumerate(region.rows):
                    target.refresh_row(row)  # lines 6-7: ACT + PRE at spec
                    expected = target.stored_row(row)[col_slice]
                    got = device.probe_word(bank, row, word, trcd_ns)  # 8-10
                    counts[bank_pos, row_pos, col_slice] += expected != got


def profile_patterns(
    device: DramDevice,
    patterns: Sequence[DataPattern],
    region: Optional[Region] = None,
    trcd_ns: float = CHARACTERIZATION_TRCD_NS,
    iterations: int = 100,
) -> Iterable[CharacterizationResult]:
    """Run Algorithm 1 once per pattern (the Figure 5 sweep)."""
    for pattern in patterns:
        yield profile_region(
            device,
            pattern,
            region=region,
            trcd_ns=trcd_ns,
            iterations=iterations,
        )
