"""Algorithm 1: inducing and counting activation failures over a region.

``profile_region`` implements the paper's characterization loop — write
a data pattern, reduce tRCD, probe every (row, column) with
refresh → ACT → READ → PRE, record failures — and returns per-cell
failure counts.

Two execution paths produce statistically identical results:

* ``command_level=True`` drives every probe through the behavioral bank
  protocol, one command at a time — faithful but slow; used by tests to
  validate the fast path.
* the default fast path evaluates the per-cell failure probabilities
  once (conditions are held constant across iterations, exactly as
  Algorithm 1's per-access refresh guarantees) and draws binomial
  counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.datapattern import DataPattern
from repro.dram.device import DramDevice
from repro.dram.timing import CHARACTERIZATION_TRCD_NS
from repro.errors import ConfigurationError
from repro.noise import NoiseSource
from repro.obs import runtime as obs
from repro.parallel.pool import WorkerPool, process_backend_available
from repro.parallel.shared import SharedArray
from repro.parallel.tiles import Tile, partition_rows


@dataclass(frozen=True)
class Region:
    """A rectangular DRAM region under characterization."""

    banks: Tuple[int, ...] = (0,)
    row_start: int = 0
    row_count: int = 512

    def __post_init__(self) -> None:
        if not self.banks:
            raise ConfigurationError("a region needs at least one bank")
        if self.row_count <= 0:
            raise ConfigurationError(
                f"row_count must be positive, got {self.row_count}"
            )
        if self.row_start < 0:
            raise ConfigurationError(
                f"row_start must be non-negative, got {self.row_start}"
            )

    @property
    def rows(self) -> range:
        """Rows covered by the region."""
        return range(self.row_start, self.row_start + self.row_count)


@dataclass
class CharacterizationResult:
    """Per-cell failure counts from one Algorithm 1 run.

    ``counts[bank_pos, row_pos, col]`` is the number of iterations in
    which that cell read back flipped; ``bank_pos``/``row_pos`` index
    into ``region.banks`` / ``region.rows``.
    """

    region: Region
    pattern_name: str
    trcd_ns: float
    iterations: int
    temperature_c: float
    counts: np.ndarray = field(repr=False)

    @property
    def fail_probabilities(self) -> np.ndarray:
        """Empirical per-cell failure probability (counts / iterations)."""
        return self.counts / float(self.iterations)

    @property
    def failing_cell_count(self) -> int:
        """Cells that failed at least once."""
        return int((self.counts > 0).sum())

    def failing_cells(self) -> np.ndarray:
        """(bank, row, col) coordinates of every cell that ever failed."""
        bank_pos, row_pos, cols = np.nonzero(self.counts)
        banks = np.asarray(self.region.banks)[bank_pos]
        rows = self.region.row_start + row_pos
        return np.stack([banks, rows, cols], axis=1)

    def cells_in_band(self, low: float = 0.4, high: float = 0.6) -> np.ndarray:
        """(bank, row, col) of cells with empirical Fprob in [low, high]."""
        probs = self.fail_probabilities
        bank_pos, row_pos, cols = np.nonzero((probs >= low) & (probs <= high))
        banks = np.asarray(self.region.banks)[bank_pos]
        rows = self.region.row_start + row_pos
        return np.stack([banks, rows, cols], axis=1)


def profile_region(
    device: DramDevice,
    pattern: DataPattern,
    region: Optional[Region] = None,
    trcd_ns: float = CHARACTERIZATION_TRCD_NS,
    iterations: int = 100,
    command_level: bool = False,
    write_pattern: bool = True,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> CharacterizationResult:
    """Run Algorithm 1 over ``region`` and return per-cell fail counts.

    Parameters mirror the paper's testing methodology (Section 4):
    ``trcd_ns`` defaults to the characterization value of 10 ns and
    ``iterations`` to the 100 rounds used for Fprob estimates.

    ``parallel``/``max_workers`` select the worker-sharded path: the
    region is cut into fixed (bank, row-block) tiles, each tile is
    evaluated by a worker drawing from its own index-assigned child
    noise stream (:meth:`~repro.noise.NoiseSource.spawn_streams`), and
    the counts land in the caller's preallocated array — via shared
    memory for process workers, direct writes for threads.  A seeded
    parallel run is bit-identical for any worker count; it differs from
    the (default) serial path, which preserves the historical
    single-stream draw order.  ``parallel=None`` enables the sharded
    path exactly when ``max_workers`` is given.
    """
    if iterations <= 0:
        raise ConfigurationError(f"iterations must be positive, got {iterations}")
    if parallel is None:
        parallel = max_workers is not None
    if parallel and command_level:
        raise ConfigurationError(
            "command_level profiling has no parallel path; it exists to "
            "validate the fast paths one command at a time"
        )
    if region is None:
        region = Region()
    geometry = device.geometry
    for bank in region.banks:
        geometry.validate_bank(bank)
    if region.row_start + region.row_count > geometry.rows_per_bank:
        raise ConfigurationError(
            f"region rows [{region.row_start}, "
            f"{region.row_start + region.row_count}) exceed bank size "
            f"{geometry.rows_per_bank}"
        )

    if write_pattern:
        device.write_pattern(pattern, banks=region.banks, rows=region.rows)

    counts = np.zeros(
        (len(region.banks), region.row_count, geometry.cols_per_row),
        dtype=np.int64,
    )
    with obs.span(
        "profile_region",
        banks=len(region.banks),
        rows=region.row_count,
        iterations=iterations,
    ):
        if command_level:
            _profile_command_level(device, region, trcd_ns, iterations, counts)
        elif parallel:
            _profile_parallel(
                device, region, trcd_ns, iterations, counts, max_workers
            )
        else:
            # One batched binomial draw per bank, written into the
            # preallocated region array; row probabilities are served (and
            # kept warm for the identification pass that follows) by the
            # device's probability plane.  Stream consumption matches the
            # former per-row loop exactly.
            for bank_pos, bank in enumerate(region.banks):
                device.sample_rows_fail_counts(
                    bank, region.rows, trcd_ns, iterations, out=counts[bank_pos]
                )

    return CharacterizationResult(
        region=region,
        pattern_name=pattern.name,
        trcd_ns=trcd_ns,
        iterations=iterations,
        temperature_c=device.temperature_c,
        counts=counts,
    )


def _profile_command_level(
    device: DramDevice,
    region: Region,
    trcd_ns: float,
    iterations: int,
    counts: np.ndarray,
) -> None:
    """Faithful per-command Algorithm 1 (column order, refresh first)."""
    geometry = device.geometry
    for _ in range(iterations):
        # Column (word) order, as Algorithm 1 lines 4-5: every access
        # goes to a closed row and therefore requires an activation.
        for word in range(geometry.words_per_row):
            col_slice = slice(
                word * geometry.word_bits, (word + 1) * geometry.word_bits
            )
            for bank_pos, bank in enumerate(region.banks):
                target = device.bank(bank)
                for row_pos, row in enumerate(region.rows):
                    target.refresh_row(row)  # lines 6-7: ACT + PRE at spec
                    expected = target.stored_row(row)[col_slice]
                    got = device.probe_word(bank, row, word, trcd_ns)  # 8-10
                    counts[bank_pos, row_pos, col_slice] += expected != got


#: Module slot holding each process worker's device copy (installed by
#: the pool initializer; inherited through fork, so the parent's
#: materialized rows and warm stored-row cache come along for free).
_WORKER_DEVICE: Optional[DramDevice] = None


def _install_worker_device(device: DramDevice) -> None:
    global _WORKER_DEVICE
    _WORKER_DEVICE = device


def _profile_tile_shared(task: Tuple) -> int:
    """Process-worker entry: evaluate one tile into shared memory.

    ``task`` is ``(shm_name, shape, tile, stream, trcd_ns, iterations)``;
    the device comes from the per-process slot.  Returns the tile index
    so the coordinator can account for completed work.
    """
    shm_name, shape, tile, stream, trcd_ns, iterations = task
    device = _WORKER_DEVICE
    assert device is not None, "worker initializer did not run"
    shared = SharedArray.attach(shm_name, shape)
    try:
        device.sample_rows_fail_counts(
            tile.bank,
            tile.rows,
            trcd_ns,
            iterations,
            out=shared.array[tile.bank_pos, tile.row_slice],
            noise=stream,
        )
    finally:
        shared.close()
    return tile.index


def _run_tile(
    device: DramDevice,
    counts: np.ndarray,
    tile: Tile,
    stream: NoiseSource,
    trcd_ns: float,
    iterations: int,
) -> int:
    """Thread-worker / fallback entry: tile counts written in place."""
    device.sample_rows_fail_counts(
        tile.bank,
        tile.rows,
        trcd_ns,
        iterations,
        out=counts[tile.bank_pos, tile.row_slice],
        noise=stream,
    )
    return tile.index


def _profile_parallel(
    device: DramDevice,
    region: Region,
    trcd_ns: float,
    iterations: int,
    counts: np.ndarray,
    max_workers: Optional[int],
) -> None:
    """Worker-sharded Algorithm 1 over fixed (bank, row-block) tiles.

    Determinism: the tiling is a pure function of the region, tile ``k``
    draws from child stream ``k``, and results are assembled by tile
    position — so counts are bit-identical for any worker count, with
    threads or processes, including the serial fallback.
    """
    tiles = partition_rows(region.banks, region.row_start, region.row_count)
    plane = device.plane
    # Materialize every stored row in canonical order *before* sharding:
    # a cold row powers up by drawing from the device's own stream, and
    # that draw must not race (threads) or diverge (processes).  Rows
    # already written/materialized make this a cache warm-up.
    for tile in tiles:
        for row in tile.rows:
            plane.row_stored(tile.bank, row)
    streams = device.noise.spawn_streams(len(tiles))

    if hasattr(device, "bits_elapsed"):
        # Clocked proxies (fault injectors) carry a shared bit clock
        # whose per-tile offsets must not depend on scheduling; run the
        # tiles in index order so the clock advances deterministically.
        # Results stay bit-identical across worker counts (trivially).
        for tile, stream in zip(tiles, streams):
            _run_tile(device, counts, tile, stream, trcd_ns, iterations)
        return

    remaining: List[Tuple[Tile, NoiseSource]] = []
    if process_backend_available():
        remaining = _profile_tiles_process(
            device, tiles, streams, trcd_ns, iterations, counts, max_workers
        )
    else:
        remaining = list(zip(tiles, streams))
    if remaining:
        _profile_tiles_thread(
            device, remaining, trcd_ns, iterations, counts, max_workers
        )


def _profile_tiles_process(
    device: DramDevice,
    tiles: Sequence[Tile],
    streams: Sequence[NoiseSource],
    trcd_ns: float,
    iterations: int,
    counts: np.ndarray,
    max_workers: Optional[int],
) -> List[Tuple[Tile, NoiseSource]]:
    """Run tiles on fork-based process workers via shared memory.

    Returns the (tile, stream) pairs that did not complete — the caller
    re-runs those on the thread/serial path, preserving each tile's
    stream so the fallback stays bit-identical.
    """
    try:
        shared = SharedArray.create(counts.shape, dtype=counts.dtype)
    except Exception:
        return list(zip(tiles, streams))
    completed: set = set()
    try:
        pool = WorkerPool(
            max_workers=max_workers,
            backend="process",
            initializer=_install_worker_device,
            initargs=(device,),
        )
        tasks = [
            (shared.name, counts.shape, tile, streams[tile.index], trcd_ns, iterations)
            for tile in tiles
        ]
        outcomes = pool.execute(_profile_tile_shared, tasks)
        for tile, outcome in zip(tiles, outcomes):
            if outcome.ok:
                completed.add(tile.index)
                bank_counts = shared.array[tile.bank_pos]
                counts[tile.bank_pos, tile.row_slice] = bank_counts[tile.row_slice]
    finally:
        shared.close()
        shared.unlink()
    return [
        (tile, streams[tile.index])
        for tile in tiles
        if tile.index not in completed
    ]


def _profile_tiles_thread(
    device: DramDevice,
    work: Sequence[Tuple[Tile, NoiseSource]],
    trcd_ns: float,
    iterations: int,
    counts: np.ndarray,
    max_workers: Optional[int],
) -> None:
    """Run tiles on thread workers, writing the caller's array directly."""

    def run(task: Tuple[Tile, NoiseSource]) -> int:
        tile, stream = task
        return _run_tile(device, counts, tile, stream, trcd_ns, iterations)

    pool = WorkerPool(max_workers=max_workers, backend="thread")
    outcomes = pool.execute(run, list(work))
    for task, outcome in zip(work, outcomes):
        if not outcome.ok:
            if outcome.error is not None and not isinstance(
                outcome.error, Exception
            ):  # pragma: no cover - defensive
                raise outcome.error
            # Last-resort serial re-run with the tile's own stream keeps
            # the result identical to a clean parallel pass.
            tile, stream = task
            _run_tile(device, counts, tile, stream, trcd_ns, iterations)


def profile_patterns(
    device: DramDevice,
    patterns: Sequence[DataPattern],
    region: Optional[Region] = None,
    trcd_ns: float = CHARACTERIZATION_TRCD_NS,
    iterations: int = 100,
) -> Iterable[CharacterizationResult]:
    """Run Algorithm 1 once per pattern (the Figure 5 sweep)."""
    for pattern in patterns:
        yield profile_region(
            device,
            pattern,
            region=region,
            trcd_ns=trcd_ns,
            iterations=iterations,
        )
