"""Multi-channel D-RaNGe (the 717.4 Mb/s system configuration).

The paper's headline numbers multiply one channel's throughput by the
system's channel count, since channels have independent command/data
buses and memory controllers (Section 2.1.1) and D-RaNGe runs one
firmware instance per controller.  :class:`MultiChannelDRange` builds
that system explicitly: one :class:`~repro.core.drange.DRange` per
channel, round-robin harvesting across them, and aggregate
throughput/latency accounting.

Channel independence is also a *redundancy* resource: each channel
carries its own SP 800-90B :class:`~repro.health.HealthMonitor`, and
the health-checked :meth:`MultiChannelDRange.request` path recovers a
degraded channel in place (re-identification with bounded retries, per
:class:`~repro.core.integration.RecoveryPolicy`) or — when recovery
fails — quarantines it and keeps serving from the survivors, with
throughput accounting updated.  Only when *every* channel is
quarantined does a request fail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.drange import DRange
from repro.core.events import EventLog
from repro.core.integration import RecoveryPolicy
from repro.core.profiling import Region
from repro.dram.device import DramDevice
from repro.errors import (
    ConfigurationError,
    InvalidRequestError,
    RecoveryExhaustedError,
    ReproError,
)
from repro.health import STARTUP_MIN_BITS, HealthMonitor
from repro.obs import runtime as obs
from repro.parallel.pool import WorkerPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import TrngBackend

#: One backend spec: a registered name or a live backend instance.
BackendSpec = Union[str, "TrngBackend"]


class MultiChannelDRange:
    """D-RaNGe across several independent memory channels.

    ``min_entropy`` tunes the per-channel health-test cutoffs;
    ``recovery`` bounds the per-channel self-healing attempts used by
    :meth:`request` (a default policy applies when omitted).

    ``backends`` picks the entropy mechanism per channel: one
    registered backend name (or instance) applied to every channel, or
    a sequence with one entry per device for a mixed system (e.g.
    ``["drange", "quac", "quac", "drange"]``).  Unknown names are
    rejected with :class:`~repro.errors.UnknownBackendError` before any
    channel is built.

    ``max_workers`` sizes the harvest pool: channels are issued
    concurrently (threads — the sampling kernels are numpy-bound and
    release the GIL), mirroring the paper's independent per-channel
    command buses.  Each channel owns its device and noise stream, so
    harvested bits are identical at any worker count; monitors are fed
    by the coordinator in channel order, preserving the serial
    quarantine/recovery semantics exactly.
    """

    def __init__(
        self,
        devices: Sequence[DramDevice],
        trcd_ns: float = 10.0,
        min_entropy: float = 0.9,
        recovery: Optional[RecoveryPolicy] = None,
        max_workers: Optional[int] = None,
        backends: Union[BackendSpec, Sequence[BackendSpec], None] = None,
    ) -> None:
        if not devices:
            raise ConfigurationError("need at least one channel device")
        specs = self._resolve_backend_specs(backends, len(devices))
        self._channels: List[DRange] = [
            DRange(device, trcd_ns=trcd_ns, backend=spec)
            for device, spec in zip(devices, specs)
        ]
        self._monitors: List[HealthMonitor] = [
            HealthMonitor(min_entropy=min_entropy) for _ in self._channels
        ]
        self._active: List[bool] = [True] * len(self._channels)
        self._recovery = recovery if recovery is not None else RecoveryPolicy()
        self._events = EventLog()
        self._events.subscribe(obs.event_counter("multichannel"))
        self._prepare_kwargs: Dict[str, object] = {}
        self._bits_served = 0
        self._max_workers = max_workers
        self._observe_survivors()

    @staticmethod
    def _resolve_backend_specs(
        backends: Union[BackendSpec, Sequence[BackendSpec], None],
        num_channels: int,
    ) -> List[BackendSpec]:
        """Expand and validate the per-channel backend mix.

        Every *name* in the mix is checked against the registry here,
        before any :class:`~repro.core.drange.DRange` (and hence any
        device work) is constructed — a typo in channel 3's backend
        must not leave channels 0–2 half-built.
        """
        from repro.backends import require_backend

        specs: List[BackendSpec]
        if backends is None:
            specs = ["drange"] * num_channels
        elif isinstance(backends, str):
            specs = [backends] * num_channels
        elif hasattr(backends, "name") and not isinstance(backends, Sequence):
            specs = [backends] * num_channels  # one shared instance
        else:
            specs = list(backends)
            if len(specs) != num_channels:
                raise ConfigurationError(
                    f"backends mix has {len(specs)} entries for "
                    f"{num_channels} channel(s)"
                )
        for spec in specs:
            if isinstance(spec, str):
                require_backend(spec)
        return specs

    def _observe_survivors(self) -> None:
        """Refresh the active-channel gauge (no-op while obs is off)."""
        obs.gauge_set("drange_channels_active", len(self.active_channels))

    def _harvest(
        self, indices: Sequence[int], per_channel: int
    ) -> List[np.ndarray]:
        """One concurrent harvest round: ``per_channel`` bits per channel.

        Returns the per-channel streams in ``indices`` order.  A worker
        failure is re-raised for the lowest failing channel index, the
        same error the serial loop would have surfaced first.
        """
        buffers = [
            np.empty(per_channel, dtype=np.uint8) for _ in indices
        ]

        def harvest_one(pos: int) -> int:
            index = indices[pos]
            self._channels[index].random_bits(per_channel, out=buffers[pos])
            return index

        pool = WorkerPool(max_workers=self._max_workers, backend="thread")
        outcomes = pool.execute(harvest_one, list(range(len(indices))))
        for outcome in outcomes:
            if not outcome.ok:
                assert outcome.error is not None
                raise outcome.error
        if obs.enabled():
            for index in indices:
                obs.counter_add(
                    "drange_channel_bits_total", per_channel, channel=index
                )
        return buffers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def channels(self) -> Sequence[DRange]:
        """Per-channel D-RaNGe instances."""
        return tuple(self._channels)

    @property
    def num_channels(self) -> int:
        """Number of channels, including quarantined ones."""
        return len(self._channels)

    @property
    def backend_names(self) -> Tuple[str, ...]:
        """Entropy mechanism per channel, in channel order."""
        return tuple(channel.backend_name for channel in self._channels)

    @property
    def monitors(self) -> Sequence[HealthMonitor]:
        """Per-channel SP 800-90B monitors."""
        return tuple(self._monitors)

    @property
    def active_channels(self) -> Tuple[int, ...]:
        """Indices of channels currently serving requests."""
        return tuple(i for i, ok in enumerate(self._active) if ok)

    @property
    def quarantined_channels(self) -> Tuple[int, ...]:
        """Indices of channels taken out of service after failed recovery."""
        return tuple(i for i, ok in enumerate(self._active) if not ok)

    @property
    def event_log(self) -> EventLog:
        """The structured robustness audit trail."""
        return self._events

    @property
    def events(self):
        """Recorded robustness events, oldest first."""
        return self._events.events

    @property
    def counters(self):
        """Aggregate robustness counters across all channels."""
        return self._events.counters

    @property
    def bits_served(self) -> int:
        """Total health-checked bits handed out via :meth:`request`."""
        return self._bits_served

    def reinstate(self, channel: int) -> None:
        """Return a quarantined channel to service (after manual repair).

        The channel's monitor is reset, so it must re-pass startup
        health testing on its next :meth:`request` round.
        """
        if not 0 <= channel < len(self._channels):
            raise ConfigurationError(f"no channel {channel}")
        self._active[channel] = True
        self._monitors[channel].reset()
        self._events.record("reinstated", "manual reinstatement", channel=channel)
        self._observe_survivors()

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def prepare(
        self,
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> int:
        """Run the offline phase on every channel; returns total cells.

        The arguments are remembered so channel recovery can re-identify
        under the same characterization footprint.
        """
        self._prepare_kwargs = dict(
            region=region,
            iterations=iterations,
            samples=samples,
            max_cells=max_cells,
        )
        total = 0
        for channel in self._channels:
            total += len(
                channel.prepare(
                    region=region,
                    iterations=iterations,
                    samples=samples,
                    max_cells=max_cells,
                )
            )
        return total

    # ------------------------------------------------------------------
    # Raw harvesting (no health checking)
    # ------------------------------------------------------------------

    def random_bits(self, num_bits: int) -> np.ndarray:
        """Harvest ``num_bits``, interleaving across all channels.

        Channels generate concurrently in hardware; the interleaving
        models the controller-side aggregation of their queues.  This
        raw path performs no health checking — use :meth:`request` for
        the monitored, failover-capable interface.
        """
        if num_bits <= 0:
            raise InvalidRequestError(
                f"num_bits must be positive, got {num_bits}"
            )
        per_channel = -(-num_bits // self.num_channels)
        streams = self._harvest(range(self.num_channels), per_channel)
        interleaved = np.stack(streams, axis=1)
        return interleaved.reshape(-1)[:num_bits]

    def random_bytes(self, num_bytes: int) -> bytes:
        """Harvest ``num_bytes`` across channels (raw path)."""
        return np.packbits(self.random_bits(num_bytes * 8)).tobytes()

    # ------------------------------------------------------------------
    # Health-checked service with failover
    # ------------------------------------------------------------------

    def _recovery_kwargs(self) -> Dict[str, object]:
        """Re-identification arguments: prepare-time values, policy overrides."""
        kwargs = dict(self._prepare_kwargs) or dict(
            region=None, iterations=100, samples=1000, max_cells=None
        )
        policy = self._recovery
        if policy.region is not None:
            kwargs["region"] = policy.region
            kwargs["iterations"] = policy.iterations
            kwargs["samples"] = policy.identify_samples
            kwargs["max_cells"] = policy.max_cells
        return kwargs

    def _recover_channel(self, index: int) -> bool:
        """Bounded re-identification + startup retest for one channel."""
        channel = self._channels[index]
        monitor = self._monitors[index]
        policy = self._recovery
        self._events.record(
            "recovery_started",
            f"up to {policy.max_retries} re-identification attempts",
            channel=index,
        )
        for attempt in range(policy.max_retries):
            delay = policy.backoff_s(attempt)
            self._events.record(
                "retry",
                f"attempt {attempt + 1}/{policy.max_retries} "
                f"(backoff {delay:.3g}s)",
                channel=index,
            )
            if policy.sleep is not None and delay > 0:
                policy.sleep(delay)
            try:
                channel.registry.discard(channel.device.temperature_c)
                cells = channel.prepare(**self._recovery_kwargs())
            except ReproError as exc:
                self._events.record(
                    "retry_failed", f"re-identification: {exc}", channel=index
                )
                continue
            if not cells:
                self._events.record(
                    "retry_failed",
                    "re-identification produced no RNG cells",
                    channel=index,
                )
                continue
            self._events.record(
                "reidentified", f"{len(cells)} RNG cells", channel=index
            )
            monitor.reset()
            try:
                fresh = channel.random_bits(
                    max(policy.startup_bits, STARTUP_MIN_BITS)
                )
            except ReproError as exc:
                self._events.record(
                    "retry_failed", f"startup harvest: {exc}", channel=index
                )
                continue
            self._events.bump("bits_discarded", int(fresh.size))
            if monitor.startup(fresh):
                self._events.record(
                    "recovered", f"healthy after {attempt + 1} attempt(s)",
                    channel=index,
                )
                return True
            alarm = monitor.alarms[-1] if monitor.alarms else None
            self._events.record(
                "startup_failed",
                alarm.detail if alarm else "startup test failed",
                channel=index,
            )
        self._events.record(
            "recovery_failed",
            f"{policy.max_retries} attempts exhausted",
            channel=index,
        )
        return False

    def _quarantine(self, index: int) -> None:
        self._active[index] = False
        self._events.record(
            "quarantine", "channel removed from service", channel=index
        )
        self._observe_survivors()

    def request(self, num_bits: int) -> np.ndarray:
        """Health-checked bits from the surviving channels.

        Every active channel's harvest passes through its own monitor;
        a channel that alarms is recovered in place or quarantined, the
        whole round's bits are conservatively discarded, and the round
        repeats with the survivors.  Raises
        :class:`~repro.errors.RecoveryExhaustedError` only when no
        active channel remains.
        """
        if num_bits <= 0:
            raise InvalidRequestError(
                f"num_bits must be positive, got {num_bits}"
            )
        with obs.span("multichannel.request", bits=num_bits):
            try:
                out = self._serve_request(num_bits)
            except BaseException:
                obs.counter_add(
                    "drange_multichannel_requests_total", outcome="error"
                )
                raise
        obs.counter_add("drange_multichannel_requests_total", outcome="ok")
        return out

    def _serve_request(self, num_bits: int) -> np.ndarray:
        """The uninstrumented request body (see :meth:`request`)."""
        recovered_this_request: set = set()
        while True:
            active = self.active_channels
            if not active:
                self._events.record(
                    "service_failed", "all channels quarantined"
                )
                raise RecoveryExhaustedError(
                    "all channels quarantined; no healthy entropy source left"
                )
            per_channel = -(-num_bits // len(active))
            # Harvest every active channel concurrently; feed the
            # monitors afterwards in channel order, so alarm/quarantine
            # events fire exactly as the serial loop recorded them.
            harvested = self._harvest(active, per_channel)
            streams = []
            degraded = []
            for pos, index in enumerate(active):
                bits = harvested[pos]
                if self._monitors[index].feed(bits):
                    streams.append(bits)
                else:
                    alarm = self._monitors[index].alarms[-1]
                    self._events.record(
                        "alarm", f"{alarm.test} — {alarm.detail}", channel=index
                    )
                    degraded.append(index)
            if not degraded:
                interleaved = np.stack(streams, axis=1).reshape(-1)
                self._bits_served += num_bits
                return interleaved[:num_bits]
            # Conservative: a poisoned round is discarded wholesale.
            self._events.bump(
                "bits_discarded", per_channel * len(active)
            )
            for index in degraded:
                if index in recovered_this_request:
                    # Recovered once already and degraded again within
                    # this request: the fault persists — quarantine.
                    self._quarantine(index)
                elif self._recover_channel(index):
                    recovered_this_request.add(index)
                else:
                    self._quarantine(index)

    # ------------------------------------------------------------------
    # Aggregate accounting
    # ------------------------------------------------------------------

    def system_throughput_mbps(self, banks_per_channel: int = 8) -> float:
        """Aggregate throughput: the sum over *active* channel estimates.

        Channels run concurrently, so the system rate is the sum — this
        is the measured counterpart of the paper's ×4 scaling.
        Quarantined channels contribute nothing: failover costs exactly
        their share of the headline rate.
        """
        total = 0.0
        for index in self.active_channels:
            channel = self._channels[index]
            if channel.uses_default_backend:
                model = channel.throughput_model()
                usable = min(banks_per_channel, model.available_banks)
                if usable:
                    total += model.estimate(usable).throughput_mbps
            else:
                total += channel.estimated_throughput_mbps()
        return total

    def system_latency_64bit_ns(self, banks_per_channel: int = 8) -> float:
        """64-bit latency with all active channels working in parallel."""
        from repro.core.latency import sixty_four_bit_latency

        active = self.active_channels
        if not active:
            raise RecoveryExhaustedError(
                "all channels quarantined; no latency to report"
            )
        first = self._channels[active[0]].device
        candidates: List[int] = []
        for index in active:
            channel = self._channels[index]
            if channel.uses_default_backend:
                candidates.extend(
                    plan.word1.data_rate_bits for plan in channel.plans()
                )
            else:
                candidates.append(channel.bits_per_access())
        bits_per_access = max(candidates, default=1)
        return sixty_four_bit_latency(
            first.timings,
            trcd_ns=10.0,
            channels=len(active),
            banks_per_channel=banks_per_channel,
            bits_per_access=max(bits_per_access, 1),
        ).latency_ns
