"""Multi-channel D-RaNGe (the 717.4 Mb/s system configuration).

The paper's headline numbers multiply one channel's throughput by the
system's channel count, since channels have independent command/data
buses and memory controllers (Section 2.1.1) and D-RaNGe runs one
firmware instance per controller.  :class:`MultiChannelDRange` builds
that system explicitly: one :class:`~repro.core.drange.DRange` per
channel, round-robin harvesting across them, and aggregate
throughput/latency accounting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.drange import DRange
from repro.core.profiling import Region
from repro.dram.device import DramDevice
from repro.errors import ConfigurationError


class MultiChannelDRange:
    """D-RaNGe across several independent memory channels."""

    def __init__(self, devices: Sequence[DramDevice], trcd_ns: float = 10.0) -> None:
        if not devices:
            raise ConfigurationError("need at least one channel device")
        self._channels: List[DRange] = [
            DRange(device, trcd_ns=trcd_ns) for device in devices
        ]

    @property
    def channels(self) -> Sequence[DRange]:
        """Per-channel D-RaNGe instances."""
        return tuple(self._channels)

    @property
    def num_channels(self) -> int:
        """Number of independent channels."""
        return len(self._channels)

    def prepare(
        self,
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> int:
        """Run the offline phase on every channel; returns total cells."""
        total = 0
        for channel in self._channels:
            total += len(
                channel.prepare(
                    region=region,
                    iterations=iterations,
                    samples=samples,
                    max_cells=max_cells,
                )
            )
        return total

    def random_bits(self, num_bits: int) -> np.ndarray:
        """Harvest ``num_bits``, interleaving across channels.

        Channels generate concurrently in hardware; the interleaving
        models the controller-side aggregation of their queues.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"num_bits must be positive, got {num_bits}")
        per_channel = -(-num_bits // self.num_channels)
        streams = [
            channel.random_bits(per_channel) for channel in self._channels
        ]
        interleaved = np.stack(streams, axis=1).reshape(-1)
        return interleaved[:num_bits]

    def random_bytes(self, num_bytes: int) -> bytes:
        """Harvest ``num_bytes`` across channels."""
        return np.packbits(self.random_bits(num_bytes * 8)).tobytes()

    def system_throughput_mbps(self, banks_per_channel: int = 8) -> float:
        """Aggregate throughput: the sum of channel estimates.

        Channels run concurrently, so the system rate is the sum — this
        is the measured counterpart of the paper's ×4 scaling.
        """
        total = 0.0
        for channel in self._channels:
            model = channel.throughput_model()
            usable = min(banks_per_channel, model.available_banks)
            if usable:
                total += model.estimate(usable).throughput_mbps
        return total

    def system_latency_64bit_ns(self, banks_per_channel: int = 8) -> float:
        """64-bit latency with all channels working in parallel."""
        from repro.core.latency import sixty_four_bit_latency

        first = self._channels[0].device
        bits_per_access = max(
            (
                plan.word1.data_rate_bits
                for channel in self._channels
                for plan in channel.plans()
            ),
            default=1,
        )
        return sixty_four_bit_latency(
            first.timings,
            trcd_ns=10.0,
            channels=self.num_channels,
            banks_per_channel=banks_per_channel,
            bits_per_access=max(bits_per_access, 1),
        ).latency_ns
