"""TRNG throughput model (Section 7.2 / Figure 8 / Equation 1).

Equation 1 of the paper::

    TRNG_Throughput(x banks) = Σ_bank TRNG_data_rate(bank)
                               / Alg2_Runtime(x banks)

The per-bank data rate comes from word selection
(:mod:`repro.core.selection`); the Algorithm 2 core-loop runtime comes
from replaying the loop's command stream through the timing engine —
the role Ramulator plays in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.selection import BankPlan
from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError
from repro.sim.engine import TimingEngine
from repro.units import mbps


def refresh_overhead_factor(timings: TimingParameters) -> float:
    """Fraction of time lost to mandatory refresh (tRFC per tREFI).

    Algorithm 2 must still let REF through (Section 6.3: sampling runs
    when DRAM "is not servicing other requests or maintenance
    commands"), so sustained throughput scales by ``1 − tRFC/tREFI``.
    """
    return 1.0 - timings.trfc_ns / timings.trefi_ns


def alg2_iteration_time_ns(
    timings: TimingParameters,
    num_banks: int,
    trcd_ns: float,
    measured_iterations: int = 8,
    warmup_iterations: int = 2,
    include_refresh: bool = False,
) -> float:
    """Steady-state time of one Algorithm 2 core-loop iteration.

    One iteration covers, for each of ``num_banks`` banks, both chosen
    words: ACT → reduced READ → write-back WRITE → PRE, twice.  Commands
    are interleaved across banks the way the paper's firmware exploits
    bank parallelism; the engine serializes them only where JEDEC
    constraints (tRRD, tFAW, bus occupancy, turnarounds) require.
    """
    if num_banks <= 0:
        raise ConfigurationError(f"num_banks must be positive, got {num_banks}")
    engine = TimingEngine(timings, banks=num_banks)

    # Software-pipelined schedule: reads of all banks, then write-backs
    # of all banks (grouping column commands minimizes bus turnarounds),
    # then per-bank PRE immediately chased by the next phase's ACT so
    # row cycles of consecutive phases overlap across banks.
    for bank in range(num_banks):
        engine.activate(bank, 0)

    def half_iteration(next_row: int) -> None:
        for bank in range(num_banks):
            engine.read(bank, trcd_ns=trcd_ns)
        for bank in range(num_banks):
            engine.write(bank)
        for bank in range(num_banks):
            engine.precharge(bank)
        for bank in range(num_banks):
            engine.activate(bank, next_row)

    for i in range(2 * warmup_iterations):
        half_iteration((i + 1) % 2)
    start = engine.now_ns
    for i in range(2 * measured_iterations):
        half_iteration(i % 2)
    iteration_ns = (engine.now_ns - start) / measured_iterations
    if include_refresh:
        iteration_ns /= refresh_overhead_factor(timings)
    return iteration_ns


@dataclass(frozen=True)
class ThroughputEstimate:
    """Throughput of one device at one bank count."""

    num_banks: int
    data_rate_bits: int
    iteration_ns: float

    @property
    def throughput_mbps(self) -> float:
        """Equation 1 in Mb/s."""
        if self.data_rate_bits == 0:
            return 0.0
        return mbps(self.data_rate_bits, self.iteration_ns)


class ThroughputModel:
    """Per-device Figure 8 evaluation: throughput vs banks used."""

    def __init__(
        self,
        plans: Sequence[BankPlan],
        timings: TimingParameters,
        trcd_ns: float = 10.0,
    ) -> None:
        if trcd_ns <= 0:
            raise ConfigurationError(f"trcd_ns must be positive, got {trcd_ns}")
        self._plans = sorted(plans, key=lambda p: -p.data_rate_bits)
        self._timings = timings
        self._trcd_ns = trcd_ns

    @property
    def available_banks(self) -> int:
        """Banks with a usable word plan."""
        return len(self._plans)

    def best_plans(self, num_banks: int) -> List[BankPlan]:
        """The ``num_banks`` plans with the greatest RNG-cell sums
        (Section 7.3's selection rule)."""
        if num_banks <= 0:
            raise ConfigurationError(f"num_banks must be positive, got {num_banks}")
        return list(self._plans[:num_banks])

    def estimate(self, num_banks: int) -> ThroughputEstimate:
        """Equation 1 for the best ``num_banks`` banks of this device."""
        chosen = self.best_plans(num_banks)
        data_rate = sum(plan.data_rate_bits for plan in chosen)
        iteration = alg2_iteration_time_ns(
            self._timings, max(len(chosen), 1), self._trcd_ns
        )
        return ThroughputEstimate(
            num_banks=len(chosen), data_rate_bits=data_rate, iteration_ns=iteration
        )

    def sweep(self, max_banks: int = 8) -> List[ThroughputEstimate]:
        """Figure 8's x-axis: estimates for 1..max_banks banks."""
        top = min(max_banks, self.available_banks)
        return [self.estimate(x) for x in range(1, top + 1)]

    @staticmethod
    def channel_scaled_mbps(per_channel_mbps: float, channels: int) -> float:
        """Multiply by channel count (the 717.4 Mb/s headline is 4×)."""
        if channels <= 0:
            raise ConfigurationError(f"channels must be positive, got {channels}")
        return per_channel_mbps * channels
