"""Structured robustness event log shared by the service layers.

Production entropy sources must be *auditable*: when an SP 800-90B
alarm fires, operators need to know what degraded, what the firmware
did about it, and how many bits were quarantined.  :class:`EventLog`
records that history as typed events plus monotonic counters, and is
used by both :class:`~repro.core.integration.DRangeService` (single
channel) and :class:`~repro.core.multichannel.MultiChannelDRange`
(per-channel failover).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ServiceEvent:
    """One entry of the robustness audit trail.

    ``kind`` is a short machine-readable tag (``"alarm"``, ``"retry"``,
    ``"recovered"``, ``"quarantine"``, ...); ``channel`` identifies the
    memory channel in multi-channel deployments (``None`` for a
    single-channel service).
    """

    kind: str
    detail: str = ""
    channel: Optional[int] = None


class EventLog:
    """Bounded in-memory event history with aggregate counters.

    Events beyond ``max_events`` drop the oldest entries (the counters
    keep counting), so a long-running service cannot grow without
    bound.
    """

    def __init__(self, max_events: int = 10_000) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self._max_events = max_events
        self._events: list = []
        self._counters: Counter = Counter()
        self._subscribers: List[Callable[[str, int], None]] = []

    @property
    def events(self) -> Tuple[ServiceEvent, ...]:
        """The retained event history, oldest first."""
        return tuple(self._events)

    @property
    def counters(self) -> Dict[str, int]:
        """Aggregate counts per event kind / named counter."""
        return dict(self._counters)

    def count(self, name: str) -> int:
        """Current value of one counter (0 when never bumped)."""
        return int(self._counters.get(name, 0))

    def subscribe(self, observer: Callable[[str, int], None]) -> None:
        """Attach a ``(kind, amount)`` observer to every record/bump.

        Observers see each recorded event as ``(kind, 1)`` and each
        bumped counter as ``(counter, amount)``.  The service layers use
        this to bridge the audit trail into the
        :mod:`repro.obs` metrics registry without the log depending on
        the observability package.
        """
        self._subscribers.append(observer)

    def _notify(self, kind: str, amount: int) -> None:
        for observer in self._subscribers:
            observer(kind, amount)

    def record(
        self, kind: str, detail: str = "", channel: Optional[int] = None
    ) -> ServiceEvent:
        """Append an event and bump its kind's counter."""
        event = ServiceEvent(kind=kind, detail=detail, channel=channel)
        self._events.append(event)
        if len(self._events) > self._max_events:
            del self._events[: len(self._events) - self._max_events]
        self._counters[kind] += 1
        self._notify(kind, 1)
        return event

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increase a named counter without logging an event."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self._counters[counter] += amount
        self._notify(counter, amount)

    def of_kind(self, kind: str) -> Tuple[ServiceEvent, ...]:
        """Retained events of one kind, oldest first."""
        return tuple(e for e in self._events if e.kind == kind)

    def __len__(self) -> int:
        return len(self._events)
