"""The D-RaNGe facade: profile → identify → sample in one object.

Typical use::

    from repro.core import DRange
    from repro.dram import DeviceFactory

    device = DeviceFactory().make_device("A")
    drange = DRange(device)
    drange.prepare()                  # Algorithm 1 + RNG-cell filter
    bits = drange.random_bits(10_000)
    data = drange.random_bytes(32)    # e.g. a 256-bit key
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np
import numpy.typing as npt

from repro.core.identification import (
    RngCell,
    RngCellRegistry,
    identify_rng_cells,
)
from repro.core.plan import CompiledSamplePlan
from repro.core.profiling import CharacterizationResult, Region, profile_region
from repro.core.sampler import DEFAULT_SAMPLING_TRCD_NS, DRangeSampler
from repro.core.selection import BankPlan, select_words
from repro.core.throughput import ThroughputModel
from repro.dram.datapattern import BEST_RNG_PATTERN, DataPattern, pattern_by_name
from repro.dram.device import DramDevice
from repro.errors import IdentificationError
from repro.memctrl.controller import MemoryController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.testbed.chamber import ThermalChamber


class DRange:
    """High-level D-RaNGe TRNG over one DRAM device.

    Parameters
    ----------
    device:
        The DRAM chip to harvest entropy from.
    trcd_ns:
        Reduced activation latency used for both identification and
        sampling (the paper's characterization value, 10 ns, within the
        6–13 ns failure window of Section 7.3).
    pattern:
        Data pattern held around the RNG cells.  Defaults to the
        manufacturer-specific pattern the paper selects in Section 5.2.
    """

    def __init__(
        self,
        device: DramDevice,
        trcd_ns: float = DEFAULT_SAMPLING_TRCD_NS,
        pattern: Optional[DataPattern] = None,
    ) -> None:
        self._device = device
        self._controller = MemoryController(device)
        self._trcd_ns = trcd_ns
        self._pattern = pattern or pattern_by_name(
            BEST_RNG_PATTERN[device.profile.name]
        )
        self._registry = RngCellRegistry(trcd_ns=trcd_ns)
        self._plans: Optional[List[BankPlan]] = None
        self._sampler: Optional[DRangeSampler] = None

    @property
    def device(self) -> DramDevice:
        """The underlying DRAM device."""
        return self._device

    @property
    def controller(self) -> MemoryController:
        """The memory controller hosting the firmware routine."""
        return self._controller

    @property
    def registry(self) -> RngCellRegistry:
        """Per-temperature identified RNG cells."""
        return self._registry

    @property
    def pattern(self) -> DataPattern:
        """Data pattern in use around the RNG cells."""
        return self._pattern

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def characterize(
        self,
        region: Optional[Region] = None,
        iterations: int = 100,
    ) -> CharacterizationResult:
        """Algorithm 1 over ``region`` with the configured pattern."""
        return profile_region(
            self._device,
            self._pattern,
            region=region,
            trcd_ns=self._trcd_ns,
            iterations=iterations,
        )

    def identify(
        self,
        characterization: CharacterizationResult,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> List[RngCell]:
        """Entropy-filter the ~50% cells and store them in the registry."""
        candidates = characterization.cells_in_band()
        cells = identify_rng_cells(
            self._device,
            candidates,
            trcd_ns=self._trcd_ns,
            samples=samples,
            max_cells=max_cells,
        )
        self._registry.store(self._device.temperature_c, cells)
        self._plans = None  # Any previous plan is stale.
        self._sampler = None
        return cells

    def prepare(
        self,
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> List[RngCell]:
        """Characterize + identify in one call; returns the RNG cells."""
        characterization = self.characterize(region=region, iterations=iterations)
        return self.identify(characterization, samples=samples, max_cells=max_cells)

    def prepare_at_temperatures(
        self,
        chamber: "ThermalChamber",
        temperatures_c: Sequence[float],
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> RngCellRegistry:
        """Identify one RNG-cell set per temperature (Section 6.1).

        Entropy is temperature-dependent (Section 5.3), so D-RaNGe keeps
        a per-temperature registry and samples the set matching the DRAM
        temperature at request time.  ``chamber`` is a
        :class:`~repro.testbed.chamber.ThermalChamber` holding this
        device; it is stepped through ``temperatures_c`` and an
        identification pass runs at each step.
        """
        if self._device not in chamber:
            chamber.add_device(self._device)
        for temperature in temperatures_c:
            chamber.set_dram_temperature(temperature)
            self.prepare(
                region=region,
                iterations=iterations,
                samples=samples,
                max_cells=max_cells,
            )
        return self._registry

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------

    def plans(self, banks: Optional[Sequence[int]] = None) -> List[BankPlan]:
        """Per-bank word plans at the current temperature."""
        if self._plans is None:
            cells = self._registry.cells_at(self._device.temperature_c)
            if not cells:
                raise IdentificationError(
                    "identification produced no RNG cells; profile a larger "
                    "region or loosen the tolerance"
                )
            self._plans = select_words(cells, self._device.geometry, banks=banks)
        return list(self._plans)

    def sampler(self) -> DRangeSampler:
        """The Algorithm 2 sampler bound to this device's plans."""
        if self._sampler is None:
            self._sampler = DRangeSampler(
                self._controller,
                self.plans(),
                trcd_ns=self._trcd_ns,
                pattern=self._pattern,
            )
        return self._sampler

    def compiled_plan(self) -> CompiledSamplePlan:
        """The compiled sampling plan generation executes from.

        Cached per device ``state_epoch``: writes, power cycles,
        temperature/voltage changes, and fault injections all force a
        transparent recompile on the next generation call.
        """
        return self.sampler().compiled_plan()

    def throughput_model(self) -> ThroughputModel:
        """Figure 8's throughput model for this device."""
        return ThroughputModel(
            self.plans(), self._device.timings, trcd_ns=self._trcd_ns
        )

    def random_bits(
        self,
        num_bits: int,
        fast: bool = True,
        out: Optional[npt.NDArray[np.uint8]] = None,
    ) -> npt.NDArray[np.uint8]:
        """Generate ``num_bits`` true random bits.

        ``out`` (fast path only) receives the bits in place — used by
        the multi-channel harvester to land each channel's stream
        directly in its interleave column.
        """
        sampler = self.sampler()
        if fast:
            return sampler.generate_fast(num_bits, out=out)
        bits = sampler.generate(num_bits)
        if out is not None:
            out[...] = bits
            return out
        return bits

    def random_bytes(self, num_bytes: int, fast: bool = True) -> bytes:
        """Generate ``num_bytes`` true random bytes."""
        bits = self.random_bits(num_bytes * 8, fast=fast)
        return np.packbits(bits).tobytes()
