"""The D-RaNGe facade: profile → identify → sample in one object.

Typical use::

    from repro.core import DRange
    from repro.dram import DeviceFactory

    device = DeviceFactory().make_device("A")
    drange = DRange(device)
    drange.prepare()                  # Algorithm 1 + RNG-cell filter
    bits = drange.random_bits(10_000)
    data = drange.random_bytes(32)    # e.g. a 256-bit key
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np
import numpy.typing as npt

from repro.core.identification import (
    RngCell,
    RngCellRegistry,
    identify_rng_cells,
)
from repro.core.plan import CompiledSamplePlan
from repro.core.profiling import CharacterizationResult, Region, profile_region
from repro.core.sampler import DEFAULT_SAMPLING_TRCD_NS, DRangeSampler
from repro.core.selection import BankPlan, select_words
from repro.core.throughput import ThroughputModel
from repro.dram.datapattern import BEST_RNG_PATTERN, DataPattern, pattern_by_name
from repro.dram.device import DramDevice
from repro.errors import IdentificationError
from repro.memctrl.controller import MemoryController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.backends.base import BackendPlan, BackendProfile, TrngBackend
    from repro.testbed.chamber import ThermalChamber


class BackendSampler:
    """Adapter exposing a non-default backend through the sampler API.

    :class:`~repro.core.integration.DRangeService` (and everything
    refilling through it, including ``BufferedRngService``) drives its
    entropy source via ``generate_fast(num_bits, out=)``; this adapter
    lets any :class:`~repro.backends.base.TrngBackend` slot in without
    the service layer knowing which mechanism is behind the channel.
    """

    def __init__(self, drange: "DRange") -> None:
        self._drange = drange

    @property
    def data_rate_bits_per_iteration(self) -> int:
        """Output bits one backend loop iteration yields."""
        return self._drange.backend_plan().bits_per_iteration

    def generate_fast(
        self, num_bits: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Harvest ``num_bits`` through the backend protocol."""
        return self._drange.random_bits(num_bits, out=out)

    def generate(self, num_bits: int) -> np.ndarray:
        """Alias of :meth:`generate_fast` (one path per backend)."""
        return self._drange.random_bits(num_bits)


class DRange:
    """High-level D-RaNGe TRNG over one DRAM device.

    Parameters
    ----------
    device:
        The DRAM chip to harvest entropy from.
    trcd_ns:
        Reduced activation latency used for both identification and
        sampling (the paper's characterization value, 10 ns, within the
        6–13 ns failure window of Section 7.3).
    pattern:
        Data pattern held around the RNG cells.  Defaults to the
        manufacturer-specific pattern the paper selects in Section 5.2.
    backend:
        Entropy mechanism: a registered backend name (``"drange"``,
        ``"quac"``) or a :class:`~repro.backends.base.TrngBackend`
        instance.  Unknown names raise
        :class:`~repro.errors.UnknownBackendError` before any device
        work starts.  The default keeps the paper's tRCD-violation
        pipeline, byte for byte.
    backend_options:
        Extra keyword arguments for the backend factory when
        ``backend`` is a name (ignored for the default backend, which
        is bound to this facade's ``trcd_ns``/``pattern``).
    """

    def __init__(
        self,
        device: DramDevice,
        trcd_ns: float = DEFAULT_SAMPLING_TRCD_NS,
        pattern: Optional[DataPattern] = None,
        backend: Union[str, "TrngBackend"] = "drange",
        backend_options: Optional[dict] = None,
    ) -> None:
        # Resolve the backend *first*: a typo'd name must fail before
        # the device is touched in any way.
        from repro.backends import DEFAULT_BACKEND, create_backend, require_backend
        from repro.backends.drange import DRangeBackend

        backend_obj: Optional["TrngBackend"] = None
        if isinstance(backend, str):
            name = require_backend(backend)
            if name != DEFAULT_BACKEND:
                backend_obj = create_backend(name, **(backend_options or {}))
        else:
            backend_obj = backend
            name = str(backend.name)
        self._device = device
        self._controller = MemoryController(device)
        self._trcd_ns = trcd_ns
        self._pattern = pattern or pattern_by_name(
            BEST_RNG_PATTERN[device.profile.name]
        )
        if backend_obj is None:
            backend_obj = DRangeBackend(trcd_ns=trcd_ns, pattern=self._pattern)
        self._backend = backend_obj
        self._backend_name = name
        self._is_default_backend = name == DEFAULT_BACKEND and isinstance(
            backend_obj, DRangeBackend
        )
        self._backend_profile: Optional["BackendProfile"] = None
        self._backend_plan: Optional["BackendPlan"] = None
        self._registry = RngCellRegistry(trcd_ns=trcd_ns)
        self._plans: Optional[List[BankPlan]] = None
        self._sampler: Optional[DRangeSampler] = None

    @property
    def device(self) -> DramDevice:
        """The underlying DRAM device."""
        return self._device

    @property
    def controller(self) -> MemoryController:
        """The memory controller hosting the firmware routine."""
        return self._controller

    @property
    def registry(self) -> RngCellRegistry:
        """Per-temperature identified RNG cells."""
        return self._registry

    @property
    def pattern(self) -> DataPattern:
        """Data pattern in use around the RNG cells."""
        return self._pattern

    @property
    def backend_name(self) -> str:
        """Name of the entropy mechanism behind this facade."""
        return self._backend_name

    @property
    def backend(self) -> "TrngBackend":
        """The :class:`~repro.backends.base.TrngBackend` in use."""
        return self._backend

    @property
    def uses_default_backend(self) -> bool:
        """True when generation runs the legacy tRCD-violation path."""
        return self._is_default_backend

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def characterize(
        self,
        region: Optional[Region] = None,
        iterations: int = 100,
    ) -> CharacterizationResult:
        """Algorithm 1 over ``region`` with the configured pattern."""
        return profile_region(
            self._device,
            self._pattern,
            region=region,
            trcd_ns=self._trcd_ns,
            iterations=iterations,
        )

    def identify(
        self,
        characterization: CharacterizationResult,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> List[RngCell]:
        """Entropy-filter the ~50% cells and store them in the registry."""
        candidates = characterization.cells_in_band()
        cells = identify_rng_cells(
            self._device,
            candidates,
            trcd_ns=self._trcd_ns,
            samples=samples,
            max_cells=max_cells,
        )
        self._registry.store(self._device.temperature_c, cells)
        self._plans = None  # Any previous plan is stale.
        self._sampler = None
        return cells

    def prepare(
        self,
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> list:
        """Characterize + identify in one call; returns the harvest sites.

        For the default backend this is Algorithm 1 plus the entropy
        filter and returns the identified :class:`RngCell` list, seeded
        runs bit-identical to the pre-backend code.  For other backends
        it delegates to ``backend.characterize`` and returns that
        profile's harvest locations.
        """
        if self._is_default_backend:
            characterization = self.characterize(region=region, iterations=iterations)
            return self.identify(
                characterization, samples=samples, max_cells=max_cells
            )
        profile = self._backend.characterize(
            self._device,
            region=region,
            iterations=iterations,
            samples=samples,
            max_cells=max_cells,
        )
        self._backend_profile = profile
        self._backend_plan = None
        return list(profile.cells)

    def prepare_at_temperatures(
        self,
        chamber: "ThermalChamber",
        temperatures_c: Sequence[float],
        region: Optional[Region] = None,
        iterations: int = 100,
        samples: int = 1000,
        max_cells: Optional[int] = None,
    ) -> RngCellRegistry:
        """Identify one RNG-cell set per temperature (Section 6.1).

        Entropy is temperature-dependent (Section 5.3), so D-RaNGe keeps
        a per-temperature registry and samples the set matching the DRAM
        temperature at request time.  ``chamber`` is a
        :class:`~repro.testbed.chamber.ThermalChamber` holding this
        device; it is stepped through ``temperatures_c`` and an
        identification pass runs at each step.
        """
        if self._device not in chamber:
            chamber.add_device(self._device)
        for temperature in temperatures_c:
            chamber.set_dram_temperature(temperature)
            self.prepare(
                region=region,
                iterations=iterations,
                samples=samples,
                max_cells=max_cells,
            )
        return self._registry

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------

    def backend_plan(self) -> "BackendPlan":
        """The backend's compiled plan, recompiled when the epoch moves.

        This is the generic (any-backend) analog of
        :meth:`compiled_plan`; for the default backend it wraps the
        same Algorithm 2 sampler the legacy accessors expose.
        """
        if self._is_default_backend:
            profile = self._backend_profile
            if profile is None or profile.is_stale(self._device):
                # Build the profile view from the already-identified
                # registry cells (no re-characterization).
                from repro.backends.drange import DRangeProfile

                cells = self._registry.cells_at(self._device.temperature_c)
                if not cells:
                    raise IdentificationError(
                        "identification produced no RNG cells; profile a "
                        "larger region or loosen the tolerance"
                    )
                profile = DRangeProfile(
                    device=self._device,
                    rng_cells=list(cells),
                    pattern=self._pattern,
                    trcd_ns=self._trcd_ns,
                    epoch=self._device.state_epoch,
                )
                self._backend_profile = profile
                self._backend_plan = None
        elif self._backend_profile is None:
            raise IdentificationError(
                f"backend {self._backend_name!r} is not prepared; call "
                f"prepare() first"
            )
        plan = self._backend_plan
        if plan is None or plan.is_stale(self._device):
            plan = self._backend.compile_plan(self._backend_profile)
            self._backend_plan = plan
        return plan

    def estimated_throughput_mbps(self, num_banks: Optional[int] = None) -> float:
        """Modeled sustained throughput of this channel's backend.

        For the default backend this is Equation 1 over the best
        ``num_banks`` banks (all usable banks when omitted); for other
        backends it is the compiled plan's modeled throughput.
        """
        if self._is_default_backend:
            model = self.throughput_model()
            banks = num_banks if num_banks is not None else model.available_banks
            return model.estimate(banks).throughput_mbps
        return self.backend_plan().throughput_mbps

    def bits_per_access(self) -> int:
        """Output bits one backend loop iteration (access round) yields."""
        if self._is_default_backend:
            return max(plan.data_rate_bits for plan in self.plans())
        return self.backend_plan().bits_per_iteration

    def plans(self, banks: Optional[Sequence[int]] = None) -> List[BankPlan]:
        """Per-bank word plans at the current temperature."""
        if self._plans is None:
            cells = self._registry.cells_at(self._device.temperature_c)
            if not cells:
                raise IdentificationError(
                    "identification produced no RNG cells; profile a larger "
                    "region or loosen the tolerance"
                )
            self._plans = select_words(cells, self._device.geometry, banks=banks)
        return list(self._plans)

    def sampler(self) -> Union[DRangeSampler, BackendSampler]:
        """The sampling engine bound to this device's plans.

        The default backend returns the Algorithm 2
        :class:`DRangeSampler`; other backends return a
        :class:`BackendSampler` adapter with the same
        ``generate_fast``/``generate`` surface, so the service layers
        (:class:`~repro.core.integration.DRangeService`,
        ``BufferedRngService`` refills) work with any mechanism.
        """
        if not self._is_default_backend:
            return BackendSampler(self)
        if self._sampler is None:
            self._sampler = DRangeSampler(
                self._controller,
                self.plans(),
                trcd_ns=self._trcd_ns,
                pattern=self._pattern,
            )
        return self._sampler

    def compiled_plan(self) -> CompiledSamplePlan:
        """The compiled sampling plan generation executes from.

        Cached per device ``state_epoch``: writes, power cycles,
        temperature/voltage changes, and fault injections all force a
        transparent recompile on the next generation call.
        """
        return self.sampler().compiled_plan()

    def throughput_model(self) -> ThroughputModel:
        """Figure 8's throughput model for this device."""
        return ThroughputModel(
            self.plans(), self._device.timings, trcd_ns=self._trcd_ns
        )

    def random_bits(
        self,
        num_bits: int,
        fast: bool = True,
        out: Optional[npt.NDArray[np.uint8]] = None,
    ) -> npt.NDArray[np.uint8]:
        """Generate ``num_bits`` true random bits.

        ``out`` (fast path only) receives the bits in place — used by
        the multi-channel harvester to land each channel's stream
        directly in its interleave column.  Non-default backends have a
        single generation path, so ``fast`` is ignored for them.
        """
        if not self._is_default_backend:
            plan = self.backend_plan()
            return self._backend.sample(plan, num_bits, out=out)
        sampler = self.sampler()
        if fast:
            return sampler.generate_fast(num_bits, out=out)
        bits = sampler.generate(num_bits)
        if out is not None:
            out[...] = bits
            return out
        return bits

    def random_bytes(self, num_bytes: int, fast: bool = True) -> bytes:
        """Generate ``num_bytes`` true random bytes."""
        bits = self.random_bits(num_bytes * 8, fast=fast)
        return np.packbits(bits).tobytes()
