"""D-RaNGe: the paper's primary contribution.

The pipeline has two halves, mirroring Section 6:

1. **RNG-cell identification** (offline, Section 6.1):
   :mod:`repro.core.profiling` runs Algorithm 1 to induce and count
   activation failures; :mod:`repro.core.identification` reads candidate
   cells many times and keeps those whose 3-bit-symbol distribution is
   flat (the Shannon-entropy filter), per temperature.

2. **Sampling** (online, Section 6.2):
   :mod:`repro.core.selection` picks the two highest-density DRAM words
   per bank; :mod:`repro.core.sampler` runs Algorithm 2 against the
   memory controller; :mod:`repro.core.throughput`,
   :mod:`repro.core.latency` and :mod:`repro.core.integration` model
   Equation 1's throughput, the 64-bit latency bounds, and the
   full-system firmware queue of Section 6.3.

:class:`repro.core.drange.DRange` is the one-stop facade most users
want.
"""

from repro.core.drange import BackendSampler, DRange
from repro.core.events import EventLog, ServiceEvent
from repro.core.identification import (
    RngCell,
    RngCellRegistry,
    identify_rng_cells,
    verify_unbiased,
)
from repro.core.integration import DRangeService, RecoveryPolicy
from repro.core.multichannel import MultiChannelDRange
from repro.core.plan import (
    CompiledSamplePlan,
    CompiledWord,
    compile_cells,
    compile_sample_plan,
)
from repro.core.profiling import CharacterizationResult, Region, profile_region
from repro.core.sampler import DRangeSampler
from repro.core.selection import BankPlan, select_words
from repro.core.throughput import ThroughputModel

__all__ = [
    "BackendSampler",
    "BankPlan",
    "CharacterizationResult",
    "CompiledSamplePlan",
    "CompiledWord",
    "DRange",
    "DRangeSampler",
    "DRangeService",
    "EventLog",
    "MultiChannelDRange",
    "RecoveryPolicy",
    "Region",
    "RngCell",
    "RngCellRegistry",
    "ServiceEvent",
    "ThroughputModel",
    "compile_cells",
    "compile_sample_plan",
    "identify_rng_cells",
    "profile_region",
    "select_words",
    "verify_unbiased",
]
