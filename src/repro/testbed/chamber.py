"""PID-controlled thermal chamber (Section 4 of the paper).

The paper stabilizes ambient temperature with heaters and fans under a
microcontroller PID loop to ±0.25 °C, reliably between 40 °C and 55 °C,
and keeps DRAM 15 °C above ambient with a local heater.  The DRAM-
temperature experiments (55–70 °C in Figure 6) are therefore ambient
sweeps of 40–55 °C.

:class:`ThermalChamber` reproduces that control loop: a first-order
thermal plant driven by a PID controller, with convergence checking
before devices are declared "at temperature".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dram.device import DramDevice
from repro.errors import ConfigurationError

#: Reliable ambient range of the paper's chamber, °C.
AMBIENT_RANGE_C = (40.0, 55.0)

#: DRAM runs this much above ambient (local heating source).
DRAM_OFFSET_C = 15.0

#: Control accuracy of the paper's PID loop.
ACCURACY_C = 0.25


class ThermalChamber:
    """A chamber holding devices at a PID-stabilized temperature."""

    def __init__(
        self,
        devices: Optional[List[DramDevice]] = None,
        kp: float = 0.8,
        ki: float = 0.15,
        kd: float = 0.05,
        time_constant_s: float = 30.0,
    ) -> None:
        if time_constant_s <= 0:
            raise ConfigurationError(
                f"time_constant_s must be positive, got {time_constant_s}"
            )
        self._devices = list(devices) if devices else []
        self._kp, self._ki, self._kd = kp, ki, kd
        self._tau = time_constant_s
        self._ambient_c = AMBIENT_RANGE_C[0]
        self._setpoint_c = AMBIENT_RANGE_C[0]
        self._integral = 0.0
        self._previous_error = 0.0

    @property
    def ambient_c(self) -> float:
        """Current chamber ambient temperature."""
        return self._ambient_c

    @property
    def dram_temperature_c(self) -> float:
        """Temperature of devices inside the chamber."""
        return self._ambient_c + DRAM_OFFSET_C

    @property
    def devices(self) -> Tuple[DramDevice, ...]:
        """Devices currently inside the chamber."""
        return tuple(self._devices)

    def __contains__(self, device: object) -> bool:
        """True when ``device`` sits in the chamber (identity semantics)."""
        return any(held is device for held in self._devices)

    def add_device(self, device: DramDevice) -> None:
        """Place a device in the chamber (adopts the chamber temperature)."""
        self._devices.append(device)
        device.set_temperature(self.dram_temperature_c)

    def set_dram_temperature(self, dram_temp_c: float, settle_steps: int = 500) -> float:
        """Drive devices to ``dram_temp_c`` and wait for convergence.

        Returns the achieved DRAM temperature.  Raises when the target's
        required ambient falls outside the chamber's reliable range —
        matching the paper's statement that 55–70 °C DRAM temperature is
        the full reliable span of the infrastructure.
        """
        ambient_target = dram_temp_c - DRAM_OFFSET_C
        low, high = AMBIENT_RANGE_C
        if not low <= ambient_target <= high:
            raise ConfigurationError(
                f"DRAM target {dram_temp_c}°C needs ambient {ambient_target}°C, "
                f"outside the chamber's reliable range [{low}, {high}]°C"
            )
        self._setpoint_c = ambient_target
        self._integral = 0.0
        self._previous_error = self._setpoint_c - self._ambient_c
        for _ in range(settle_steps):
            self._step(dt_s=1.0)
            if self.is_stable():
                break
        if not self.is_stable():
            raise ConfigurationError(
                f"chamber failed to settle at {ambient_target}°C ambient"
            )
        for device in self._devices:
            device.set_temperature(self.dram_temperature_c)
        return self.dram_temperature_c

    def _step(self, dt_s: float) -> None:
        """One PID control step over a first-order thermal plant."""
        error = self._setpoint_c - self._ambient_c
        self._integral += error * dt_s
        derivative = (error - self._previous_error) / dt_s
        self._previous_error = error
        drive = self._kp * error + self._ki * self._integral + self._kd * derivative
        # First-order plant: the chamber moves toward ambient + drive.
        self._ambient_c += (drive - 0.0) * dt_s / self._tau

    def is_stable(self) -> bool:
        """True when ambient is within the paper's ±0.25 °C accuracy."""
        return abs(self._setpoint_c - self._ambient_c) <= ACCURACY_C
