"""Characterization test-bed infrastructure (the paper's Section 4).

:mod:`repro.testbed.chamber` models the thermally controlled chamber:
a PID loop holding ambient temperature to ±0.25 °C within a reliable
40–55 °C range, with the DRAM devices held 15 °C above ambient by a
local heating source.
"""

from repro.testbed.chamber import ThermalChamber

__all__ = ["ThermalChamber"]
