"""Time-schedulable fault activation windows.

Faults are activated and cleared at configured *bit offsets* of the
global sampling stream — the injector's monotonically advancing clock —
so a whole failure scenario (heat excursion at bit 100k, cleared at
300k; burst noise throughout) is reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.models import FaultModel


@dataclass(frozen=True)
class FaultWindow:
    """One fault active over ``[start_bit, end_bit)`` of the stream.

    ``end_bit=None`` means the fault persists forever once activated.
    """

    fault: FaultModel
    start_bit: int = 0
    end_bit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_bit < 0:
            raise ConfigurationError(
                f"start_bit must be non-negative, got {self.start_bit}"
            )
        if self.end_bit is not None and self.end_bit <= self.start_bit:
            raise ConfigurationError(
                f"end_bit ({self.end_bit}) must exceed start_bit "
                f"({self.start_bit})"
            )

    def active_at(self, offset: int) -> bool:
        """True when the window covers bit ``offset``."""
        if offset < self.start_bit:
            return False
        return self.end_bit is None or offset < self.end_bit

    def overlaps(self, lo: int, hi: int) -> bool:
        """True when the window intersects ``[lo, hi)``."""
        if hi <= self.start_bit:
            return False
        return self.end_bit is None or lo < self.end_bit

    def mask(self, offsets: np.ndarray) -> np.ndarray:
        """Boolean mask of which global ``offsets`` fall in the window."""
        offsets = np.asarray(offsets, dtype=np.int64)
        active = offsets >= self.start_bit
        if self.end_bit is not None:
            active &= offsets < self.end_bit
        return active


class FaultSchedule:
    """An ordered collection of :class:`FaultWindow` entries.

    Windows may overlap; faults compose in insertion order (earlier
    entries transform first).
    """

    def __init__(self, windows: Sequence[FaultWindow] = ()) -> None:
        self._windows: List[FaultWindow] = list(windows)

    @property
    def windows(self) -> Tuple[FaultWindow, ...]:
        """All scheduled windows, in application order."""
        return tuple(self._windows)

    def add(
        self,
        fault: FaultModel,
        start_bit: int = 0,
        end_bit: Optional[int] = None,
    ) -> FaultWindow:
        """Schedule ``fault`` over ``[start_bit, end_bit)``; returns the window."""
        window = FaultWindow(fault=fault, start_bit=start_bit, end_bit=end_bit)
        self._windows.append(window)
        return window

    def remove(self, window: FaultWindow) -> None:
        """Deschedule a previously added window."""
        self._windows.remove(window)

    def clear(self) -> None:
        """Drop every scheduled window (a fully healed device)."""
        self._windows.clear()

    def active_at(self, offset: int) -> Tuple[FaultWindow, ...]:
        """Windows covering bit ``offset``."""
        return tuple(w for w in self._windows if w.active_at(offset))

    def overlapping(self, lo: int, hi: int) -> Tuple[FaultWindow, ...]:
        """Windows intersecting the half-open offset range ``[lo, hi)``."""
        return tuple(w for w in self._windows if w.overlaps(lo, hi))

    def __len__(self) -> int:
        return len(self._windows)

    def __bool__(self) -> bool:
        return bool(self._windows)
