"""Composable, deterministic fault models for the entropy source.

The paper's deployability argument (Section 1) is that D-RaNGe keeps
working under "temperature/voltage fluctuations, manufacturing
variation, and malicious external attacks".  Exercising the defenses —
SP 800-90B health tests, RNG-cell re-identification, channel failover —
requires *injecting* those hazards on demand.  Each class here models
one hazard as a pure transformation applied by a
:class:`~repro.faults.injector.FaultInjector` at three interception
points of a reduced-latency access:

* the **operating point** (temperature/voltage excursions),
* the per-access **failure probabilities** (aging, droop),
* the harvested **bits** themselves (stuck cells, bias drift, bursts).

Every model is deterministic: stochastic faults derive their randomness
from :func:`repro.dram.variation.uniform_field` keyed by a fault seed
and the *global bit offset*, so a fault scenario replays identically
regardless of how the stream is chunked into calls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

import numpy as np

from repro.dram.failures import OperatingPoint
from repro.dram.variation import uniform_field
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AccessContext:
    """Address and timing of the access a fault is being applied to.

    ``col`` is ``None`` for whole-word accesses (e.g. ``probe_word``),
    in which case cell-targeted faults do not apply.
    """

    bank: Optional[int] = None
    row: Optional[int] = None
    col: Optional[int] = None
    trcd_ns: Optional[float] = None


class FaultModel:
    """Base class: an identity transformation at every interception point.

    ``ages`` arrays hold, per affected bit, the number of bits elapsed
    since the fault's schedule window opened — the knob that lets drift
    and aging models evolve monotonically and deterministically.
    """

    name = "fault"

    def transform_operating_point(
        self, op: OperatingPoint, age: int
    ) -> OperatingPoint:
        """Shift the access conditions (temperature, voltage)."""
        return op

    def transform_probabilities(
        self, probs: np.ndarray, ages: np.ndarray, ctx: AccessContext
    ) -> np.ndarray:
        """Rescale per-access failure probabilities."""
        return probs

    def transform_bits(
        self, bits: np.ndarray, ages: np.ndarray, ctx: AccessContext
    ) -> np.ndarray:
        """Corrupt already-harvested bits."""
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class StuckCellFault(FaultModel):
    """RNG cells latch a constant — the classic stuck-at failure.

    With ``cells=None`` every access is stuck; otherwise only accesses
    whose ``(bank, row, col)`` is listed are affected.  A stuck source
    is what the SP 800-90B repetition count test exists to catch.
    """

    name = "stuck_cell"

    def __init__(
        self,
        value: int = 1,
        cells: Optional[FrozenSet[Tuple[int, int, int]]] = None,
    ) -> None:
        if value not in (0, 1):
            raise ConfigurationError(f"stuck value must be 0 or 1, got {value}")
        self.value = value
        self.cells = frozenset(cells) if cells is not None else None

    def _targets(self, ctx: AccessContext) -> bool:
        if self.cells is None:
            return True
        if ctx.col is None:
            return False
        return (ctx.bank, ctx.row, ctx.col) in self.cells

    def transform_bits(self, bits, ages, ctx):
        if not self._targets(ctx):
            return bits
        return np.full_like(bits, self.value)


class BiasDriftFault(FaultModel):
    """Entropy collapse: output drifts toward a constant over time.

    Each affected bit is overwritten with ``target`` with probability
    ``min(rate_per_bit * age, max_severity)`` — a ramp from full entropy
    to (near-)determinism, the signature of a failing charge pump or an
    adversarial data-pattern attack.  The adaptive proportion test is
    the intended detector.
    """

    name = "bias_drift"

    def __init__(
        self,
        target: int = 1,
        rate_per_bit: float = 1e-4,
        max_severity: float = 1.0,
        seed: int = 2019,
    ) -> None:
        if target not in (0, 1):
            raise ConfigurationError(f"drift target must be 0 or 1, got {target}")
        if rate_per_bit <= 0:
            raise ConfigurationError(
                f"rate_per_bit must be positive, got {rate_per_bit}"
            )
        if not 0.0 < max_severity <= 1.0:
            raise ConfigurationError(
                f"max_severity must be in (0, 1], got {max_severity}"
            )
        self.target = target
        self.rate_per_bit = rate_per_bit
        self.max_severity = max_severity
        self.seed = seed

    def transform_bits(self, bits, ages, ctx):
        severity = np.minimum(
            np.asarray(ages, dtype=np.float64) * self.rate_per_bit,
            self.max_severity,
        )
        u = uniform_field(np.uint64(self.seed), np.asarray(ages, dtype=np.uint64))
        return np.where(u < severity, self.target, bits).astype(bits.dtype)


class TemperatureExcursionFault(FaultModel):
    """The device heats (or cools) away from its identification point.

    Shifts the operating temperature by ``delta_c``, optionally ramping
    linearly over ``ramp_bits`` — the hazard Section 6.1's
    per-temperature registry defends against.  Because the shift acts
    on the operating point, *re-identification through the injector
    sees the excursed temperature too*, so recovery genuinely adapts.
    """

    name = "temperature_excursion"

    def __init__(self, delta_c: float = 25.0, ramp_bits: int = 0) -> None:
        if ramp_bits < 0:
            raise ConfigurationError(f"ramp_bits must be >= 0, got {ramp_bits}")
        self.delta_c = delta_c
        self.ramp_bits = ramp_bits

    def transform_operating_point(self, op, age):
        scale = 1.0 if self.ramp_bits == 0 else min(age / self.ramp_bits, 1.0)
        return replace(op, temperature_c=op.temperature_c + self.delta_c * scale)


class VoltageDroopFault(FaultModel):
    """Supply droop: reduced VDD slows sensing, scaling failure rates.

    Multiplies the operating point's ``vdd_ratio`` by ``droop_ratio``
    (< 1).  The failure model turns that into longer development time
    constants, i.e. uniformly higher failure probabilities — exactly
    the reduced-voltage behavior of the study the paper cites [30].
    """

    name = "voltage_droop"

    def __init__(self, droop_ratio: float = 0.85) -> None:
        if not 0.0 < droop_ratio < 1.0:
            raise ConfigurationError(
                f"droop_ratio must be in (0, 1), got {droop_ratio}"
            )
        self.droop_ratio = droop_ratio

    def transform_operating_point(self, op, age):
        return replace(op, vdd_ratio=max(op.vdd_ratio * self.droop_ratio, 0.5))


class CellAgingFault(FaultModel):
    """Monotonic margin decay: cells fail ever more often as they age.

    Models wear-out (charge-trap accumulation) as a failure-probability
    floor that rises with the fault's age and never recedes:
    ``p' = p + (1 - p) * min(decay_per_bit * age, max_decay)``.
    """

    name = "cell_aging"

    def __init__(self, decay_per_bit: float = 1e-6, max_decay: float = 0.5) -> None:
        if decay_per_bit <= 0:
            raise ConfigurationError(
                f"decay_per_bit must be positive, got {decay_per_bit}"
            )
        if not 0.0 < max_decay <= 1.0:
            raise ConfigurationError(
                f"max_decay must be in (0, 1], got {max_decay}"
            )
        self.decay_per_bit = decay_per_bit
        self.max_decay = max_decay

    def transform_probabilities(self, probs, ages, ctx):
        decay = np.minimum(
            np.asarray(ages, dtype=np.float64) * self.decay_per_bit,
            self.max_decay,
        )
        return probs + (1.0 - probs) * decay


class TransientBurstFault(FaultModel):
    """Periodic bursts of flipped bits — EMI / particle-strike style.

    Within every ``period`` bits of the fault's lifetime, the first
    ``burst_bits`` are inverted; the rest pass through untouched.  The
    pattern is a pure function of the fault's age, so bursts land at
    the same stream positions on every replay.
    """

    name = "transient_burst"

    def __init__(self, period: int = 4096, burst_bits: int = 64) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if not 0 < burst_bits <= period:
            raise ConfigurationError(
                f"burst_bits must be in (0, period], got {burst_bits}"
            )
        self.period = period
        self.burst_bits = burst_bits

    def transform_bits(self, bits, ages, ctx):
        in_burst = (np.asarray(ages, dtype=np.int64) % self.period) < self.burst_bits
        return np.where(in_burst, 1 - bits, bits).astype(bits.dtype)
