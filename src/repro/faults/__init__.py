"""Fault injection: deterministic, schedulable hazards for the TRNG.

The robustness counterpart of :mod:`repro.core`: composable fault
models (:mod:`repro.faults.models`), bit-offset activation windows
(:mod:`repro.faults.schedule`), and drop-in device/noise wrappers that
apply them (:mod:`repro.faults.injector`).  Together with the
self-healing :class:`~repro.core.integration.DRangeService` and the
failover-capable :class:`~repro.core.multichannel.MultiChannelDRange`,
this package lets a test — or an operator — answer "what happens when
the entropy source degrades?" with an experiment instead of a guess.
"""

from repro.faults.injector import FaultInjector, FaultyNoiseSource
from repro.faults.models import (
    AccessContext,
    BiasDriftFault,
    CellAgingFault,
    FaultModel,
    StuckCellFault,
    TemperatureExcursionFault,
    TransientBurstFault,
    VoltageDroopFault,
)
from repro.faults.schedule import FaultSchedule, FaultWindow

__all__ = [
    "AccessContext",
    "BiasDriftFault",
    "CellAgingFault",
    "FaultInjector",
    "FaultModel",
    "FaultSchedule",
    "FaultWindow",
    "FaultyNoiseSource",
    "StuckCellFault",
    "TemperatureExcursionFault",
    "TransientBurstFault",
    "VoltageDroopFault",
]
