"""Fault injection wrappers for devices and noise sources.

:class:`FaultInjector` wraps a :class:`~repro.dram.device.DramDevice`
and presents the same interface (everything not overridden is forwarded
verbatim), so it drops into every layer that accepts a device —
``DRange``, ``MemoryController``, ``MultiChannelDRange``.  The wrapper
intercepts the vectorized sampling entry points and routes each access
through the active :class:`~repro.faults.schedule.FaultSchedule`
windows:

1. the operating point is transformed (temperature/voltage faults),
2. failure probabilities are transformed (aging/droop faults),
3. the harvested bits are transformed (stuck/drift/burst faults).

A monotonically increasing *bit clock* (``bits_elapsed``) indexes the
schedule, advancing with every sampled bit — including identification
and characterization traffic, so a fault scheduled "now" also poisons
any subsequent re-identification attempt, exactly like real hardware.

:class:`FaultyNoiseSource` applies the same probability-level faults
inside a :class:`~repro.noise.NoiseSource`, covering code paths that
draw noise directly (the command-level ``generate`` loop).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.device import DramDevice
from repro.dram.failures import OperatingPoint
from repro.faults.models import AccessContext, FaultModel
from repro.faults.schedule import FaultSchedule, FaultWindow
from repro.noise import NoiseSource


class FaultInjector:
    """A :class:`DramDevice` proxy that injects scheduled faults.

    Construct the injector around a device *before* handing the device
    to ``DRange``/``MultiChannelDRange`` so every sampling layer sees
    the faulted view::

        device = DeviceFactory().make_device("A")
        faulty = FaultInjector(device)
        drange = DRange(faulty)
        ...
        faulty.inject(BiasDriftFault())          # activates at the current clock
    """

    def __init__(
        self, device: DramDevice, schedule: Optional[FaultSchedule] = None
    ) -> None:
        self._device = device
        self._schedule = schedule if schedule is not None else FaultSchedule()
        self._bits_elapsed = 0
        self._fault_epoch = 0

    # ------------------------------------------------------------------
    # Introspection and scheduling
    # ------------------------------------------------------------------

    @property
    def wrapped(self) -> DramDevice:
        """The underlying (healthy) device."""
        return self._device

    @property
    def schedule(self) -> FaultSchedule:
        """The fault activation schedule."""
        return self._schedule

    @property
    def bits_elapsed(self) -> int:
        """Bit clock: total faultable accesses performed so far."""
        return self._bits_elapsed

    @property
    def state_epoch(self) -> int:
        """The wrapped device's epoch plus a fault-schedule component.

        Injecting or healing a fault bumps this, so probability planes
        and compiled sampling plans built against the faulted view are
        invalidated exactly like a stored-state mutation would
        invalidate them.
        """
        return self._device.state_epoch + self._fault_epoch

    def inject(
        self,
        fault: FaultModel,
        start_bit: Optional[int] = None,
        end_bit: Optional[int] = None,
    ) -> FaultWindow:
        """Schedule ``fault`` starting now (or at ``start_bit``)."""
        start = self._bits_elapsed if start_bit is None else start_bit
        self._fault_epoch += 1
        return self._schedule.add(fault, start_bit=start, end_bit=end_bit)

    def heal(self) -> None:
        """Clear the schedule: the device behaves nominally again."""
        self._fault_epoch += 1
        self._schedule.clear()

    def advance(self, bits: int) -> None:
        """Manually advance the bit clock (idle time between harvests)."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        self._bits_elapsed += bits

    def __getattr__(self, name):
        return getattr(self._device, name)

    # ------------------------------------------------------------------
    # Fault application helpers
    # ------------------------------------------------------------------

    def _transform_op(self, op: OperatingPoint, offset: int) -> OperatingPoint:
        for window in self._schedule.active_at(offset):
            op = window.fault.transform_operating_point(
                op, offset - window.start_bit
            )
        return op

    def _transform_probabilities(
        self, probs: np.ndarray, offsets: np.ndarray, ctx: AccessContext
    ) -> np.ndarray:
        if offsets.size == 0:
            return probs
        lo, hi = int(offsets[0]), int(offsets[-1]) + 1
        for window in self._schedule.overlapping(lo, hi):
            mask = window.mask(offsets)
            if not mask.any():
                continue
            ages = offsets[mask] - window.start_bit
            probs = probs.astype(np.float64, copy=True)
            probs[mask] = np.clip(
                window.fault.transform_probabilities(probs[mask], ages, ctx),
                0.0,
                1.0,
            )
        return probs

    def _transform_bits(
        self, bits: np.ndarray, offsets: np.ndarray, ctx: AccessContext
    ) -> np.ndarray:
        if offsets.size == 0:
            return bits
        lo, hi = int(offsets[0]), int(offsets[-1]) + 1
        for window in self._schedule.overlapping(lo, hi):
            mask = window.mask(offsets)
            if not mask.any():
                continue
            ages = offsets[mask] - window.start_bit
            bits = bits.copy()
            bits[mask] = window.fault.transform_bits(bits[mask], ages, ctx)
        return bits

    # ------------------------------------------------------------------
    # Intercepted device entry points
    # ------------------------------------------------------------------

    def operating_point(self, trcd_ns: float) -> OperatingPoint:
        """Access conditions with active operating-point faults applied."""
        return self._transform_op(
            self._device.operating_point(trcd_ns), self._bits_elapsed
        )

    def sample_cell_bits(
        self, bank: int, row: int, col: int, count: int, trcd_ns: float
    ) -> np.ndarray:
        """Faulted counterpart of :meth:`DramDevice.sample_cell_bits`."""
        device = self._device
        device.geometry.validate_col(col)
        start = self._bits_elapsed
        offsets = np.arange(start, start + count, dtype=np.int64)
        ctx = AccessContext(bank=bank, row=row, col=col, trcd_ns=trcd_ns)

        op = self._transform_op(device.operating_point(trcd_ns), start)
        plane = device.plane
        stored_row = plane.row_stored(bank, row)
        base = plane.row_probabilities(bank, row, op)
        probs = self._transform_probabilities(
            np.full(count, base[col], dtype=np.float64), offsets, ctx
        )
        flips = device.noise.bernoulli(probs)
        stored_bit = int(stored_row[col])
        bits = np.where(flips, 1 - stored_bit, stored_bit).astype(np.uint8)
        bits = self._transform_bits(bits, offsets, ctx)
        self._bits_elapsed = start + count
        return bits

    def row_failure_probabilities(
        self, bank: int, row: int, trcd_ns: float
    ) -> np.ndarray:
        """Per-cell failure probabilities under the active faults."""
        device = self._device
        offset = self._bits_elapsed
        op = self._transform_op(device.operating_point(trcd_ns), offset)
        probs = np.array(device.plane.row_probabilities(bank, row, op))
        ctx = AccessContext(bank=bank, row=row, trcd_ns=trcd_ns)
        offsets = np.full(probs.size, offset, dtype=np.int64)
        return self._transform_probabilities(probs, offsets, ctx)

    def sample_row_fail_counts(
        self, bank: int, row: int, trcd_ns: float, iterations: int
    ) -> np.ndarray:
        """Faulted characterization counts; advances the clock by ``iterations``."""
        probs = self.row_failure_probabilities(bank, row, trcd_ns)
        counts = self._device.noise.binomial(iterations, probs)
        self._bits_elapsed += iterations
        return counts

    def sample_rows_fail_counts(
        self,
        bank: int,
        rows,
        trcd_ns: float,
        iterations: int,
        out: Optional[np.ndarray] = None,
        noise: Optional[NoiseSource] = None,
    ) -> np.ndarray:
        """Faulted counterpart of :meth:`DramDevice.sample_rows_fail_counts`.

        Per-row probabilities are transformed at the same bit-clock
        offsets the per-row loop would have used (row ``i`` at
        ``start + i × iterations``), then drawn in one binomial matrix
        call — bit-identical to sequential
        :meth:`sample_row_fail_counts` calls for a seeded source.
        ``out``/``noise`` mirror the device's signature (preallocated
        destination; caller-owned stream for the worker-sharded path).
        """
        device = self._device
        source = device.noise if noise is None else noise
        row_list = list(rows)
        if not row_list:
            empty = np.zeros((0, device.geometry.cols_per_row), dtype=np.int64)
            return empty if out is None else out
        start = self._bits_elapsed
        plane = device.plane
        transformed = []
        for i, row in enumerate(row_list):
            offset = start + i * iterations
            op = self._transform_op(device.operating_point(trcd_ns), offset)
            probs = np.array(plane.row_probabilities(bank, row, op))
            ctx = AccessContext(bank=bank, row=row, trcd_ns=trcd_ns)
            offsets = np.full(probs.size, offset, dtype=np.int64)
            transformed.append(
                self._transform_probabilities(probs, offsets, ctx)
            )
        counts = source.binomial(iterations, np.stack(transformed))
        self._bits_elapsed = start + len(row_list) * iterations
        if out is not None:
            out[...] = counts
            return out
        return counts

    def cells_failure_probabilities(
        self, cells: np.ndarray, trcd_ns: float
    ) -> np.ndarray:
        """Per-cell probabilities of a coordinate batch under active faults.

        Evaluated at the current bit clock without advancing it — the
        compiled-plan snapshot contract.
        """
        device = self._device
        cells = np.asarray(cells, dtype=np.int64).reshape(-1, 3)
        offset = self._bits_elapsed
        op = self._transform_op(device.operating_point(trcd_ns), offset)
        plane = device.plane
        offsets = np.asarray([offset], dtype=np.int64)
        out = np.empty(len(cells), dtype=np.float64)
        for i, (bank, row, col) in enumerate(cells):
            base = plane.row_probabilities(int(bank), int(row), op)[int(col)]
            ctx = AccessContext(
                bank=int(bank), row=int(row), col=int(col), trcd_ns=trcd_ns
            )
            out[i] = self._transform_probabilities(
                np.asarray([base], dtype=np.float64), offsets, ctx
            )[0]
        return out

    def sample_cells_bits(
        self,
        cells: np.ndarray,
        count: int,
        trcd_ns: float,
        mixture: bool = False,
        probabilities: Optional[np.ndarray] = None,
        stored_bits: Optional[np.ndarray] = None,
        noise: Optional[NoiseSource] = None,
    ) -> np.ndarray:
        """Faulted counterpart of :meth:`DramDevice.sample_cells_bits`.

        With no fault window overlapping the batch, the wrapped device's
        batched path runs unchanged (the clock still advances).  Under
        active windows, ``mixture=False`` replays the per-cell loop —
        cell ``j``'s draws at offsets ``start + j·count …`` — exactly as
        sequential :meth:`sample_cell_bits` calls, keeping seeded
        identification bit-identical; ``mixture=True`` applies faults in
        the output's iteration-major bit order (offset ``start + i·N +
        j`` for iteration ``i``, cell ``j``), matching where each bit
        lands in the generated stream.

        ``probabilities``/``stored_bits`` snapshots are accepted for
        interface parity but deliberately dropped: a plan compiled while
        a fault window covered the bit clock carries transformed values,
        and the clock's movement is invisible to ``state_epoch`` — so
        faulted sampling always re-derives from the live schedule.
        ``noise`` substitutes a caller-owned stream on the no-fault fast
        path (faulted paths draw from the device's own source, whose
        sequential consumption the bit clock assumes).
        """
        del probabilities, stored_bits
        device = self._device
        cells = np.asarray(cells, dtype=np.int64).reshape(-1, 3)
        start = self._bits_elapsed
        total = count * len(cells)
        if not self._schedule.overlapping(start, start + max(total, 1)):
            bits = device.sample_cells_bits(
                cells, count, trcd_ns, mixture=mixture, noise=noise
            )
            self._bits_elapsed = start + total
            return bits
        if not mixture:
            columns = [
                self.sample_cell_bits(
                    int(bank), int(row), int(col), count, trcd_ns
                )
                for bank, row, col in cells
            ]
            return np.ascontiguousarray(np.stack(columns, axis=0).T)
        return self._sample_cells_iteration_major(cells, count, trcd_ns)

    def _sample_cells_iteration_major(
        self, cells: np.ndarray, count: int, trcd_ns: float
    ) -> np.ndarray:
        """Faulted batched sampling in output (iteration-major) order."""
        device = self._device
        n = len(cells)
        start = self._bits_elapsed
        op = self._transform_op(device.operating_point(trcd_ns), start)
        plane = device.plane
        stored = np.empty(n, dtype=np.uint8)
        probs = np.empty((count, n), dtype=np.float64)
        contexts = []
        strides = start + np.arange(count, dtype=np.int64) * n
        for j, (bank, row, col) in enumerate(cells):
            key = (int(bank), int(row), int(col))
            stored[j] = plane.row_stored(key[0], key[1])[key[2]]
            base = plane.row_probabilities(key[0], key[1], op)[key[2]]
            ctx = AccessContext(
                bank=key[0], row=key[1], col=key[2], trcd_ns=trcd_ns
            )
            contexts.append(ctx)
            probs[:, j] = self._transform_probabilities(
                np.full(count, base, dtype=np.float64), strides + j, ctx
            )
        flips = device.noise.bernoulli(probs)
        bits = np.where(
            flips, (1 - stored)[np.newaxis, :], stored[np.newaxis, :]
        ).astype(np.uint8)
        for j, ctx in enumerate(contexts):
            bits[:, j] = self._transform_bits(bits[:, j], strides + j, ctx)
        self._bits_elapsed = start + count * n
        return bits

    def probe_word(
        self, bank: int, row: int, word: int, trcd_ns: float
    ) -> np.ndarray:
        """Command-level probe under operating-point and untargeted bit faults."""
        device = self._device
        target = device.bank(bank)
        if target.open_row is not None:
            target.precharge()
        target.activate(row, trcd_ns=trcd_ns)
        bits = target.read(word, op=self.operating_point(trcd_ns))
        target.precharge()
        word_bits = bits.size
        start = self._bits_elapsed
        offsets = np.full(word_bits, start, dtype=np.int64)
        ctx = AccessContext(bank=bank, row=row, col=None, trcd_ns=trcd_ns)
        bits = self._transform_bits(np.asarray(bits, dtype=np.uint8), offsets, ctx)
        self._bits_elapsed = start + word_bits
        return bits


class FaultyNoiseSource(NoiseSource):
    """A :class:`NoiseSource` whose Bernoulli draws pass through faults.

    For code paths that never touch the device's vectorized samplers
    (the faithful command-level ``generate`` loop draws noise per read
    inside the bank), building the device with a ``FaultyNoiseSource``
    injects probability-level faults at the noise layer.  The schedule
    is indexed by a draw counter playing the role of the bit clock.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        super().__init__(seed)
        self._schedule = schedule if schedule is not None else FaultSchedule()
        self._draws = 0

    @property
    def schedule(self) -> FaultSchedule:
        """The fault activation schedule for this source."""
        return self._schedule

    @property
    def draws_elapsed(self) -> int:
        """Total Bernoulli-equivalent draws performed so far."""
        return self._draws

    def _faulted(self, probabilities: np.ndarray) -> np.ndarray:
        probs = np.clip(
            np.asarray(probabilities, dtype=np.float64).ravel(), 0.0, 1.0
        )
        start = self._draws
        offsets = np.arange(start, start + probs.size, dtype=np.int64)
        ctx = AccessContext()
        for window in self._schedule.overlapping(start, start + probs.size):
            mask = window.mask(offsets)
            if not mask.any():
                continue
            ages = offsets[mask] - window.start_bit
            probs[mask] = np.clip(
                window.fault.transform_probabilities(probs[mask], ages, ctx),
                0.0,
                1.0,
            )
        self._draws = start + probs.size
        return probs

    def bernoulli(self, probabilities: np.ndarray) -> np.ndarray:
        """Bernoulli draws with scheduled probability faults applied."""
        arr = np.asarray(probabilities, dtype=np.float64)
        return super().bernoulli(self._faulted(arr).reshape(arr.shape))

    def bernoulli_plane(
        self,
        probabilities: np.ndarray,
        count: int,
        invert: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Faulted probability-plane draws.

        The mixture decomposition assumes per-column constant
        probabilities, which scheduled faults break (they vary with the
        draw clock), so this falls back to the full faulted Bernoulli
        matrix in the same iteration-major shape.  Faults transform the
        *flip* probabilities, as in :meth:`bernoulli`; the ``invert``
        column fold is applied on top of the faulted draws.
        """
        probs = np.asarray(probabilities, dtype=np.float64).ravel()
        flips = self.bernoulli(np.broadcast_to(probs, (count, probs.size)))
        if invert is not None:
            flips = flips ^ np.asarray(invert).ravel().astype(bool)[np.newaxis, :]
        return flips

    def binomial(self, trials: int, probabilities: np.ndarray) -> np.ndarray:
        """Binomial draws with scheduled probability faults applied."""
        arr = np.asarray(probabilities, dtype=np.float64)
        return super().binomial(trials, self._faulted(arr).reshape(arr.shape))
