"""Section 5 / 7.2 DDR3 cross-validation.

The paper verifies its LPDDR4 observations on four DDR3 devices from a
single manufacturer using SoftMC.  This experiment does the same
against the reproduction's SoftMC host: four DDR3 devices are profiled
with explicit command programs (ACT → short WAIT → READ → PRE), and the
key qualitative observations are checked:

* reduced-latency reads induce activation failures on DDR3 too;
* failures concentrate into weak columns with a row-distance gradient;
* ~50%-probability RNG cells exist, so D-RaNGe is implementable on a
  wide range of commodity DRAM devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.spatial import SpatialSummary, summarize_bitmap
from repro.dram.datapattern import pattern_by_name
from repro.dram.device import DeviceFactory, DramDevice
from repro.dram.timing import DDR3_1600
from repro.experiments.common import ExperimentConfig, format_table
from repro.softmc.host import SoftMCHost
from repro.softmc.program import Program

#: tRCD used for the DDR3 probes (spec is 13.75 ns); chosen so the
#: post-charge-sharing sense window matches the LPDDR4 campaign.
DDR3_REDUCED_TRCD_NS = 9.5


@dataclass
class Ddr3DeviceResult:
    """Cross-validation summary for one DDR3 device."""

    serial: str
    summary: SpatialSummary
    band_cells: int
    softmc_failures: int
    softmc_reads: int

    @property
    def softmc_observed_failures(self) -> bool:
        """Did the command-level SoftMC probe itself observe failures?"""
        return self.softmc_failures > 0


@dataclass
class Ddr3Result:
    """Section 5's DDR3 verification across four devices."""

    devices: List[Ddr3DeviceResult]

    @property
    def all_devices_fail_like_lpddr4(self) -> bool:
        """Every device shows failures, structure, and RNG-band cells."""
        return all(
            d.summary.failing_cells > 0
            and d.summary.has_column_structure
            and d.band_cells > 0
            and d.softmc_observed_failures
            for d in self.devices
        )

    def format_report(self) -> str:
        rows = [
            [
                d.serial,
                str(d.summary.failing_cells),
                str(len(d.summary.failing_columns)),
                f"{d.summary.row_gradient_correlation:+.2f}",
                str(d.band_cells),
                f"{d.softmc_failures}/{d.softmc_reads}",
            ]
            for d in self.devices
        ]
        return "\n".join(
            [
                "Section 5 — DDR3 cross-validation via SoftMC "
                f"(tRCD {DDR3_REDUCED_TRCD_NS} ns, spec "
                f"{DDR3_1600.trcd_ns} ns)",
                format_table(
                    [
                        "device",
                        "failing cells",
                        "weak cols",
                        "row corr",
                        "RNG-band cells",
                        "SoftMC fails/reads",
                    ],
                    rows,
                ),
            ]
        )


def _softmc_probe(device: DramDevice, row: int, repeats: int = 40):
    """Command-level probe of one row's word 0 via a SoftMC program."""
    host = SoftMCHost(device)
    program = Program()
    program.loop(repeats)
    program.act(0, row).wait(DDR3_REDUCED_TRCD_NS).read(0, 0).pre(0)
    program.end_loop()
    result = host.execute(program)
    expected = device.bank(0).stored_row(row)[: device.geometry.word_bits]
    failures = sum(
        int((bits != expected).sum()) for *_, bits in result.reads
    )
    return failures, len(result.reads)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    num_devices: int = 4,
    rows: int = 512,
) -> Ddr3Result:
    """Profile ``num_devices`` DDR3 chips and cross-validate."""
    factory = DeviceFactory(
        master_seed=config.master_seed,
        timings=DDR3_1600,
        noise_seed=config.noise_seed,
    )
    pattern = pattern_by_name("solid0")
    out: List[Ddr3DeviceResult] = []
    for index in range(num_devices):
        device = factory.make_device("A", 100 + index)
        device.write_pattern(pattern, banks=[0], rows=range(rows))
        probs = np.stack(
            [
                device.row_failure_probabilities(0, r, DDR3_REDUCED_TRCD_NS)
                for r in range(rows)
            ]
        )
        counts = np.stack(
            [
                device.sample_row_fail_counts(
                    0, r, DDR3_REDUCED_TRCD_NS, config.iterations
                )
                for r in range(rows)
            ]
        )
        bitmap = counts > 0
        summary = summarize_bitmap(bitmap, device.geometry.subarray_rows)
        band = int(((probs > 0.4) & (probs < 0.6)).sum())
        # Command-level SoftMC probe on the row whose first word has the
        # highest aggregate failure count.
        hot_row = int(
            counts[:, : device.geometry.word_bits].sum(axis=1).argmax()
        )
        failures, reads = _softmc_probe(device, hot_row)
        out.append(
            Ddr3DeviceResult(
                serial=device.serial,
                summary=summary,
                band_cells=band,
                softmc_failures=failures,
                softmc_reads=reads,
            )
        )
    return Ddr3Result(devices=out)
