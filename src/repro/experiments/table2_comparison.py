"""Table 2: comparison with prior DRAM-based TRNG proposals.

Builds all four baseline rows from their models and the D-RaNGe row
from the core throughput/latency/energy pipelines, then reports the
headline speedups (the paper: 211× peak / 128× average over the best
prior design, Pyo+).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.base import TrngProperties
from repro.baselines.comparison import (
    ComparisonRow,
    comparison_row,
    comparison_table,
    throughput_advantage,
)
from repro.baselines.pyo import CommandScheduleTrng
from repro.baselines.retention_trng import RetentionTrng
from repro.baselines.startup_trng import StartupTrng
from repro.core.latency import paper_scenarios
from repro.experiments import sec73_energy
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig8_throughput import Fig8Result
from repro.experiments.fig8_throughput import run as run_fig8


@dataclass
class Table2Result:
    """All rows plus the derived speedup headlines."""

    rows: List[ComparisonRow]
    drange_peak_mbps: float
    drange_avg_mbps: float

    @property
    def best_prior_mbps(self) -> float:
        """Peak throughput of the best prior design."""
        priors = [
            row.peak_throughput_mbps
            for row in self.rows
            if row.properties.name != "D-RaNGe"
            and row.peak_throughput_mbps == row.peak_throughput_mbps  # not NaN
        ]
        return max(priors)

    @property
    def peak_speedup(self) -> float:
        """Paper: ~211× over the best prior DRAM TRNG."""
        return throughput_advantage(self.drange_peak_mbps, self.best_prior_mbps)

    @property
    def average_speedup(self) -> float:
        """Paper: ~128× on average."""
        return throughput_advantage(self.drange_avg_mbps, self.best_prior_mbps)

    def format_report(self) -> str:
        table = comparison_table([], extra_rows=self.rows)
        return "\n".join(
            [
                "Table 2 — comparison to previous DRAM-based TRNG proposals",
                table,
                "",
                f"D-RaNGe vs best prior (peak): {self.peak_speedup:.0f}x "
                "[paper: 211x]",
                f"D-RaNGe vs best prior (avg):  {self.average_speedup:.0f}x "
                "[paper: 128x]",
            ]
        )


def run(
    config: ExperimentConfig = ExperimentConfig(devices_per_manufacturer=1),
    fig8: Optional[Fig8Result] = None,
) -> Table2Result:
    """Evaluate every design and assemble Table 2.

    Pass a precomputed ``fig8`` result to reuse its device sweep (the
    benchmark harness does this to avoid re-profiling).
    """
    device = config.factory().make_device("A", 0)
    baselines = [
        CommandScheduleTrng(noise=device.noise.spawn()),
        RetentionTrng(device),
        StartupTrng(device),
    ]
    rows = [comparison_row(trng) for trng in baselines]
    # Keller+ shares the retention entropy source and headline numbers.
    keller = rows[1]
    rows.insert(
        1,
        ComparisonRow(
            properties=TrngProperties(
                name="Keller+",
                year=2014,
                entropy_source="Data Retention",
                true_random=True,
                streaming_capable=True,
            ),
            latency_64bit_ns=keller.latency_64bit_ns,
            energy_per_bit_j=keller.energy_per_bit_j,
            peak_throughput_mbps=keller.peak_throughput_mbps,
        ),
    )

    if fig8 is None:
        fig8 = run_fig8(config)
    energy = sec73_energy.run(config)
    latencies = paper_scenarios(device.timings, config.trcd_ns)
    drange_row = ComparisonRow(
        properties=TrngProperties(
            name="D-RaNGe",
            year=2018,
            entropy_source="Activation Failures",
            true_random=True,
            streaming_capable=True,
        ),
        latency_64bit_ns=latencies[-1].latency_ns,
        energy_per_bit_j=energy.nj_per_bit * 1e-9,
        peak_throughput_mbps=fig8.max_throughput_4ch_mbps,
    )
    rows.append(drange_row)
    return Table2Result(
        rows=rows,
        drange_peak_mbps=fig8.max_throughput_4ch_mbps,
        drange_avg_mbps=fig8.avg_throughput_4ch_mbps,
    )
