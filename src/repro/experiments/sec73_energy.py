"""Section 7.3 "Low Energy Consumption": D-RaNGe's energy per bit.

The paper feeds Ramulator command traces of Algorithm 2 into DRAMPower,
subtracts an idling trace's energy, and divides by the bits generated:
4.4 nJ/bit on average.  ``run`` does the same with the reproduction's
engine trace and power model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.drange import DRange
from repro.core.profiling import Region
from repro.experiments.common import ExperimentConfig
from repro.power.idd import LPDDR4_IDD
from repro.power.model import PowerModel

#: The paper's reported average.
PAPER_NJ_PER_BIT = 4.4


@dataclass
class EnergyResult:
    """Energy accounting for one Algorithm 2 run."""

    bits_generated: int
    duration_ns: float
    gross_energy_j: float
    idle_energy_j: float

    @property
    def net_energy_j(self) -> float:
        """Active-minus-idle attribution (the paper's method)."""
        return self.gross_energy_j - self.idle_energy_j

    @property
    def nj_per_bit(self) -> float:
        """Net energy per generated bit in nanojoules."""
        return self.net_energy_j / self.bits_generated * 1e9

    def format_report(self) -> str:
        return "\n".join(
            [
                "Section 7.3 — energy per generated bit",
                f"bits generated: {self.bits_generated}",
                f"loop duration: {self.duration_ns:.0f} ns",
                f"gross energy: {self.gross_energy_j * 1e9:.1f} nJ",
                f"idle energy (same window): {self.idle_energy_j * 1e9:.1f} nJ",
                f"energy per bit: {self.nj_per_bit:.2f} nJ/bit "
                f"(paper: {PAPER_NJ_PER_BIT} nJ/bit)",
            ]
        )


def run(
    config: ExperimentConfig = ExperimentConfig(devices_per_manufacturer=1),
    manufacturer: str = "A",
    num_bits: int = 512,
) -> EnergyResult:
    """Generate bits through the faithful loop and account the trace."""
    device = config.factory().make_device(manufacturer, 0)
    drange = DRange(device, trcd_ns=config.trcd_ns)
    drange.prepare(
        region=Region(
            banks=config.region_banks,
            row_start=0,
            row_count=min(config.region_rows, device.geometry.rows_per_bank),
        ),
        iterations=config.iterations,
        samples=config.identification_samples,
    )
    sampler = drange.sampler()
    engine = drange.controller.engine
    start_len = len(engine.trace)
    start_ns = engine.now_ns
    bits = sampler.generate(num_bits)
    duration_ns = engine.now_ns - start_ns

    model = PowerModel(LPDDR4_IDD, device.timings)
    # Account only the generation window's commands.
    from repro.sim.trace import CommandTrace

    window = CommandTrace()
    commands = list(engine.trace)[start_len:]
    offset = commands[0].issue_ns if commands else 0.0
    for command in commands:
        window.append(command.kind, command.bank, command.issue_ns - offset)
    breakdown = model.trace_energy(window, duration_ns=window.duration_ns)
    idle = model.idle_energy(window.duration_ns)
    return EnergyResult(
        bits_generated=int(bits.size),
        duration_ns=duration_ns,
        gross_energy_j=breakdown.total_j,
        idle_energy_j=idle,
    )
