"""Figure 7: density of RNG cells in DRAM words, per bank.

The paper histograms, over 472 banks from 59 devices, how many DRAM
words in each bank contain x RNG cells (x = 0..4), per manufacturer.
Key shapes: every bank has words with at least one RNG cell; counts
fall off steeply with x; the maximum observed density is 4 per word.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.stats import BoxStats, box_stats
from repro.core.drange import DRange
from repro.core.profiling import Region
from repro.experiments.common import ExperimentConfig, format_table


@dataclass
class DensityDistribution:
    """Per-bank word counts by RNG-cell density for one manufacturer."""

    manufacturer: str
    #: per_bank_counts[x] = list over banks of "#words with exactly x
    #: RNG cells" (x >= 1).
    per_bank_counts: Dict[int, List[int]]

    def box(self, x: int) -> BoxStats:
        """Distribution over banks of words holding exactly x RNG cells."""
        return box_stats(self.per_bank_counts.get(x, [0]))

    @property
    def max_density(self) -> int:
        """Highest RNG-cell count observed in one word."""
        populated = [x for x, counts in self.per_bank_counts.items() if any(counts)]
        return max(populated) if populated else 0

    @property
    def banks_with_cells(self) -> int:
        """Banks holding at least one RNG-cell word."""
        ones = self.per_bank_counts.get(1, [])
        totals = np.zeros(len(ones), dtype=np.int64)
        for counts in self.per_bank_counts.values():
            totals += np.asarray(counts)
        return int((totals > 0).sum())


@dataclass
class Fig7Result:
    """Fig. 7 across manufacturers."""

    distributions: List[DensityDistribution]
    banks_per_manufacturer: int

    def format_report(self) -> str:
        lines = [
            "Figure 7 — RNG cells per DRAM word, distribution over "
            f"{self.banks_per_manufacturer} banks per manufacturer"
        ]
        for dist in self.distributions:
            lines.append(
                f"\nManufacturer {dist.manufacturer} "
                f"(max density {dist.max_density} cells/word, "
                f"{dist.banks_with_cells} banks populated):"
            )
            rows = []
            for x in sorted(dist.per_bank_counts):
                stats = dist.box(x)
                rows.append(
                    [
                        str(x),
                        f"{stats.median:.0f}",
                        f"{stats.q1:.0f}",
                        f"{stats.q3:.0f}",
                        f"{stats.minimum:.0f}",
                        f"{stats.maximum:.0f}",
                    ]
                )
            lines.append(
                format_table(
                    ["cells/word", "median", "q1", "q3", "min", "max"], rows
                )
            )
        return "\n".join(lines)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturers: Sequence[str] = ("A", "B", "C"),
) -> Fig7Result:
    """Identify RNG cells per device and histogram per-bank densities."""
    distributions: List[DensityDistribution] = []
    banks_counted = 0
    for manufacturer in manufacturers:
        per_bank: Dict[int, List[int]] = {}
        banks_counted = 0
        for device in config.devices(manufacturer):
            drange = DRange(device, trcd_ns=config.trcd_ns)
            cells = drange.prepare(
                region=Region(
                    banks=config.region_banks,
                    row_start=0,
                    row_count=min(
                        config.region_rows, device.geometry.rows_per_bank
                    ),
                ),
                iterations=config.iterations,
                samples=config.identification_samples,
            )
            word_bits = device.geometry.word_bits
            for bank in config.region_banks:
                density = Counter()
                for cell in cells:
                    if cell.bank == bank:
                        density[(cell.row, cell.col // word_bits)] += 1
                by_count = Counter(density.values())
                max_x = max(by_count) if by_count else 1
                for x in range(1, max(max_x + 1, 5)):
                    per_bank.setdefault(x, []).append(by_count.get(x, 0))
                banks_counted += 1
        # Pad shorter lists (banks appended before a new max_x appeared).
        for x, counts in per_bank.items():
            while len(counts) < banks_counted:
                counts.append(0)
        distributions.append(
            DensityDistribution(manufacturer=manufacturer, per_bank_counts=per_bank)
        )
    return Fig7Result(
        distributions=distributions, banks_per_manufacturer=banks_counted
    )
