"""Figure 5: data-pattern dependence of activation failures.

For a representative device of each manufacturer, run Algorithm 1 with
all 40 characterization patterns and report each pattern's *coverage*
(fraction of the union of discovered failures it finds), plus the
walking-pattern aggregate (mean/min/max over the 16 shifts) and the
count of ~50%-probability cells each pattern surfaces (the paper's
second analysis, which picks the per-manufacturer RNG pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.coverage import coverage_ratios
from repro.core.profiling import Region, profile_region
from repro.dram.datapattern import all_characterization_patterns
from repro.experiments.common import ExperimentConfig, format_table


@dataclass
class ManufacturerDpd:
    """Fig. 5 data for one manufacturer's representative device."""

    manufacturer: str
    device_serial: str
    coverage: Dict[str, float]
    band_cells: Dict[str, int]

    def walking_aggregate(self, walk_value: int) -> Tuple[float, float, float]:
        """(mean, min, max) coverage across the 16 walking shifts."""
        values = [
            ratio
            for name, ratio in self.coverage.items()
            if name.startswith(f"walk{walk_value}_")
        ]
        return float(np.mean(values)), float(min(values)), float(max(values))

    @property
    def best_band_pattern(self) -> str:
        """Pattern finding the most cells with Fprob in the 40–60% band."""
        return max(self.band_cells, key=lambda name: self.band_cells[name])


@dataclass
class Fig5Result:
    """Fig. 5 across manufacturers."""

    per_manufacturer: List[ManufacturerDpd]

    def format_report(self) -> str:
        lines = ["Figure 5 — data-pattern dependence (coverage ratios)"]
        for dpd in self.per_manufacturer:
            lines.append(f"\nManufacturer {dpd.manufacturer} ({dpd.device_serial}):")
            rows = []
            scalar = [
                n
                for n in dpd.coverage
                if not n.startswith(("walk0_", "walk1_"))
            ]
            for name in sorted(scalar, key=lambda n: -dpd.coverage[n]):
                rows.append(
                    [name, f"{dpd.coverage[name]:.3f}", str(dpd.band_cells[name])]
                )
            for walk_value in (1, 0):
                mean, low, high = dpd.walking_aggregate(walk_value)
                band = int(
                    np.mean(
                        [
                            count
                            for name, count in dpd.band_cells.items()
                            if name.startswith(f"walk{walk_value}_")
                        ]
                    )
                )
                rows.append(
                    [
                        f"WALK{walk_value} (16 shifts)",
                        f"{mean:.3f} [{low:.3f}, {high:.3f}]",
                        str(band),
                    ]
                )
            lines.append(format_table(["pattern", "coverage", "Fprob40-60 cells"], rows))
            lines.append(f"best RNG-cell pattern: {dpd.best_band_pattern}")
        return "\n".join(lines)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturers: Sequence[str] = ("A", "B", "C"),
    pattern_names: Optional[Sequence[str]] = None,
    rows: Optional[int] = None,
) -> Fig5Result:
    """Run the pattern sweep for one device per manufacturer."""
    patterns = all_characterization_patterns()
    if pattern_names is not None:
        wanted = set(pattern_names)
        patterns = [p for p in patterns if p.name in wanted]
    results: List[ManufacturerDpd] = []
    for manufacturer in manufacturers:
        device = config.factory().make_device(manufacturer, 0)
        row_count = rows if rows is not None else min(
            config.region_rows, device.geometry.rows_per_bank
        )
        region = Region(banks=(0,), row_start=0, row_count=row_count)
        failures: Dict[str, np.ndarray] = {}
        band: Dict[str, int] = {}
        for pattern in patterns:
            characterization = profile_region(
                device,
                pattern,
                region=region,
                trcd_ns=config.trcd_ns,
                iterations=config.iterations,
            )
            failures[pattern.name] = characterization.failing_cells()
            band[pattern.name] = len(characterization.cells_in_band())
        results.append(
            ManufacturerDpd(
                manufacturer=manufacturer,
                device_serial=device.serial,
                coverage=coverage_ratios(failures),
                band_cells=band,
            )
        )
    return Fig5Result(per_manufacturer=results)
