"""Section 7.3 "Low System Interference": idle-bandwidth throughput.

The paper runs SPEC CPU2006 workloads in simulation, measures the DRAM
bandwidth they leave idle, and converts it into the D-RaNGe throughput
achievable with *no significant slowdown*: 83.1 Mb/s average (98.3 max,
49.1 min).  This experiment does the same over the synthetic workload
catalog, plus the storage-overhead accounting (six reserved rows per
bank ⇒ 0.018%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.throughput import alg2_iteration_time_ns
from repro.dram.geometry import DeviceGeometry
from repro.dram.timing import LPDDR4_3200, TimingParameters
from repro.experiments.common import ExperimentConfig, format_table
from repro.sim.workloads import Workload, spec_workloads
from repro.units import mbps


@dataclass
class WorkloadThroughput:
    """Idle-bandwidth D-RaNGe throughput under one workload."""

    workload: Workload
    idle_fraction: float
    throughput_mbps: float


@dataclass
class InterferenceResult:
    """Per-workload throughputs plus the paper's summary stats."""

    per_workload: List[WorkloadThroughput]
    full_rate_mbps: float
    storage_overhead: float

    @property
    def average_mbps(self) -> float:
        return float(np.mean([w.throughput_mbps for w in self.per_workload]))

    @property
    def max_mbps(self) -> float:
        return max(w.throughput_mbps for w in self.per_workload)

    @property
    def min_mbps(self) -> float:
        return min(w.throughput_mbps for w in self.per_workload)

    def format_report(self) -> str:
        rows = [
            [
                w.workload.name,
                f"{w.workload.bandwidth_gbps:.2f}",
                f"{w.idle_fraction:.2f}",
                f"{w.throughput_mbps:.1f}",
            ]
            for w in sorted(self.per_workload, key=lambda w: -w.throughput_mbps)
        ]
        return "\n".join(
            [
                "Section 7.3 — D-RaNGe throughput from idle DRAM bandwidth",
                format_table(
                    ["workload", "demand GB/s", "idle frac", "Mb/s"], rows
                ),
                f"average (max, min): {self.average_mbps:.1f} "
                f"({self.max_mbps:.1f}, {self.min_mbps:.1f}) Mb/s "
                "[paper: 83.1 (98.3, 49.1)]",
                f"DRAM storage overhead: {self.storage_overhead:.4%} "
                "[paper: 0.018%]",
            ]
        )


def storage_overhead(geometry: DeviceGeometry) -> float:
    """Six reserved rows per bank over the whole device.

    Two RNG-cell rows plus each row's two physical neighbors
    (Section 7.3's accounting).
    """
    reserved_rows = 6 * geometry.banks
    total_rows = geometry.rows_per_bank * geometry.banks
    return reserved_rows / total_rows


@dataclass
class SlowdownResult:
    """Trace-driven slowdown measurement for one workload."""

    workload_name: str
    duty_cycle: float
    baseline_latency_ns: float
    with_drange_latency_ns: float
    drange_bits: int
    duration_ns: float

    @property
    def slowdown(self) -> float:
        """Mean request-latency ratio (1.0 = no interference)."""
        if self.baseline_latency_ns <= 0:
            return 1.0
        return self.with_drange_latency_ns / self.baseline_latency_ns

    @property
    def drange_mbps(self) -> float:
        """Random-bit rate achieved alongside the workload."""
        if self.duration_ns <= 0:
            return 0.0
        return mbps(self.drange_bits, self.duration_ns)


def simulate_slowdown(
    workload: Workload,
    policy: str = "idle",
    duty_cycle: float = 0.25,
    duration_ns: float = 200_000.0,
    window_ns: float = 1_000.0,
    data_rate_bits_per_bank: int = 4,
    banks: int = 8,
    timings: TimingParameters = LPDDR4_3200,
    noise_seed: int = 1,
) -> SlowdownResult:
    """Trace-driven interference: schedule a workload with and without
    interleaved D-RaNGe sampling.

    Application requests flow through the FR-FCFS scheduler.  Two
    firmware policies are modeled (Section 6.3 / 7.3):

    * ``"idle"`` — opportunistic: a window with no application arrivals
      runs one Algorithm 2 core-loop iteration (the paper's
      idle-bandwidth harvesting; "no significant impact");
    * ``"fixed"`` — duty-cycled: every ``1/duty_cycle``-th window runs an
      iteration regardless of traffic (the throughput/interference
      tradeoff knob).
    """
    from repro.memctrl.requests import MemRequest
    from repro.memctrl.scheduler import FrFcfsScheduler
    from repro.noise import NoiseSource
    from repro.sim.engine import TimingEngine
    from repro.sim.workloads import generate_request_trace

    if policy not in ("idle", "fixed"):
        raise ValueError(f"policy must be 'idle' or 'fixed', got {policy!r}")
    if not 0.0 < duty_cycle <= 1.0:
        raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
    capacity = timings.data_rate_mtps * 2.0 / 1e3
    trace = generate_request_trace(
        workload, duration_ns, capacity, banks=banks,
        noise=NoiseSource(seed=noise_seed),
    )
    arrivals = [
        MemRequest(bank=r.bank, row=r.row, word=0, arrival_ns=r.arrival_ns)
        for r in trace
        if not r.is_write
    ]

    def _drange_iteration(engine) -> None:
        for phase_row in (0, 1):
            for bank in range(banks):
                engine.activate(bank, phase_row)
            for bank in range(banks):
                engine.read(bank, trcd_ns=10.0)
            for bank in range(banks):
                engine.write(bank)
            for bank in range(banks):
                engine.precharge(bank)

    def mean_latency(with_drange: bool):
        engine = TimingEngine(timings, banks=banks)
        scheduler = FrFcfsScheduler(engine)
        drange_bits = 0
        done = []
        n_windows = int(duration_ns // window_ns) + 1
        fixed_period = max(round(1.0 / duty_cycle), 1)
        for window_index in range(n_windows):
            window_start = window_index * window_ns
            window_end = window_start + window_ns
            batch = [
                MemRequest(bank=r.bank, row=r.row, word=r.word,
                           arrival_ns=r.arrival_ns)
                for r in arrivals
                if window_start <= r.arrival_ns < window_end
            ]
            sample_now = with_drange and (
                (policy == "idle" and not batch)
                or (policy == "fixed" and window_index % fixed_period == 0)
            )
            if sample_now:
                scheduler.close_all()
                if engine.now_ns < window_start:
                    engine.idle_until(window_start)
                # Fill the free window with loop iterations, leaving
                # headroom for the tail iteration to drain.
                while engine.now_ns + 500.0 < window_end:
                    _drange_iteration(engine)
                    drange_bits += data_rate_bits_per_bank * banks
            if batch:
                done.extend(scheduler.run(batch))
        if not done:
            return 0.0, drange_bits
        return float(np.mean([r.latency_ns for r in done])), drange_bits

    baseline, _ = mean_latency(False)
    with_drange, bits = mean_latency(True)
    return SlowdownResult(
        workload_name=workload.name,
        duty_cycle=duty_cycle,
        baseline_latency_ns=baseline,
        with_drange_latency_ns=with_drange,
        drange_bits=bits,
        duration_ns=duration_ns,
    )


def run(
    config: ExperimentConfig = ExperimentConfig(),
    timings: TimingParameters = LPDDR4_3200,
    data_rate_bits_per_bank: int = 4,
    banks: int = 8,
) -> InterferenceResult:
    """Convert each workload's idle bus fraction into TRNG throughput.

    ``data_rate_bits_per_bank`` reflects a typical device's per-bank
    RNG-cell density (Figure 7); paper-scale rows for a full-size
    device use 64 K rows per bank.
    """
    iteration_ns = alg2_iteration_time_ns(timings, banks, config.trcd_ns)
    full_rate = mbps(data_rate_bits_per_bank * banks, iteration_ns)
    channel_capacity_gbps = timings.data_rate_mtps * 2.0 / 1e3  # x16 bus

    per_workload = []
    for workload in spec_workloads():
        idle = workload.idle_fraction(channel_capacity_gbps)
        per_workload.append(
            WorkloadThroughput(
                workload=workload,
                idle_fraction=idle,
                throughput_mbps=full_rate * idle,
            )
        )
    geometry = DeviceGeometry(rows_per_bank=32768, subarray_rows=512)
    return InterferenceResult(
        per_workload=per_workload,
        full_rate_mbps=full_rate,
        storage_overhead=storage_overhead(geometry),
    )
