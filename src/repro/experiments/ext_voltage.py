"""Extension: supply-voltage dependence of activation failures.

The paper's introduction names voltage fluctuation as a condition an
effective TRNG must tolerate, and cites the reduced-voltage DRAM study
[30].  This extension sweeps the supply (0.90–1.10 × nominal) and
measures how the failure population and the RNG band shift — the
voltage analogue of Figure 6's temperature study.  The practical
conclusion mirrors Section 6.1's temperature handling: RNG-cell sets
should be identified per operating voltage when a platform undervolts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.profiling import Region, profile_region
from repro.dram.datapattern import BEST_RNG_PATTERN, pattern_by_name
from repro.experiments.common import ExperimentConfig, format_table


@dataclass
class VoltagePoint:
    """Failure statistics at one supply point."""

    vdd_ratio: float
    mean_marginal_fprob: float
    failing_cells: int
    band_cells: int


@dataclass
class VoltageResult:
    """The voltage sweep for one device."""

    device_serial: str
    points: List[VoltagePoint]

    @property
    def undervolt_raises_fprob(self) -> bool:
        """Marginal-cell Fprob decreases monotonically with voltage."""
        ordered = sorted(self.points, key=lambda p: p.vdd_ratio)
        means = [p.mean_marginal_fprob for p in ordered]
        return all(b <= a + 1e-9 for a, b in zip(means, means[1:]))

    def format_report(self) -> str:
        rows = [
            [
                f"{p.vdd_ratio:.2f}",
                f"{p.mean_marginal_fprob:.3f}",
                str(p.failing_cells),
                str(p.band_cells),
            ]
            for p in self.points
        ]
        return "\n".join(
            [
                f"Extension — supply-voltage sweep ({self.device_serial}, "
                "tRCD 10 ns)",
                format_table(
                    ["VDD ratio", "marginal Fprob", "failing cells",
                     "band cells"],
                    rows,
                ),
            ]
        )


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturer: str = "A",
    vdd_sweep: Sequence[float] = (1.10, 1.05, 1.00, 0.95, 0.90),
    rows: int = 512,
) -> VoltageResult:
    """Profile the same region at each supply point."""
    device = config.factory().make_device(manufacturer, 0)
    pattern = pattern_by_name(BEST_RNG_PATTERN[manufacturer])
    region = Region(banks=(0,), row_start=0, row_count=rows)

    # Marginal reference population at nominal voltage.
    nominal = profile_region(
        device, pattern, region=region,
        trcd_ns=config.trcd_ns, iterations=config.iterations,
    ).fail_probabilities
    marginal = (nominal > 0.01) & (nominal < 0.99)

    points: List[VoltagePoint] = []
    for vdd in vdd_sweep:
        device.set_vdd_ratio(vdd)
        result = profile_region(
            device, pattern, region=region,
            trcd_ns=config.trcd_ns, iterations=config.iterations,
            write_pattern=False,
        )
        probs = result.fail_probabilities
        points.append(
            VoltagePoint(
                vdd_ratio=vdd,
                mean_marginal_fprob=float(probs[marginal].mean())
                if marginal.any()
                else 0.0,
                failing_cells=result.failing_cell_count,
                band_cells=len(result.cells_in_band()),
            )
        )
    device.set_vdd_ratio(1.0)
    return VoltageResult(device_serial=device.serial, points=points)
