"""Extension: entropy from tRP violations (the paper's footnote 4).

The paper: "We believe that reducing other timing parameters could be
used to generate true random values, but we leave their exploration to
future work."  This experiment explores the most natural candidate,
tRP: a truncated precharge leaves the bitlines biased toward the
previously latched row, so the *next* activation — even at spec tRCD —
can sample metastable cells.

Method: latch an *inverted* row (all bitlines end opposite to the
target's data), precharge with a reduced tRP, then activate and read
the target row at spec tRCD.  The residual fights every cell's
development uniformly, so cells whose margin sits near
``development − residual`` turn metastable — the same 50%-band
structure reduced tRCD produces, via a different timing parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dram.datapattern import pattern_by_name
from repro.dram.device import DramDevice
from repro.experiments.common import ExperimentConfig, format_table


@dataclass
class TrpSweepPoint:
    """Failure statistics at one tRP value."""

    trp_ns: float
    residual: float
    failing_cells: int
    band_cells: int


@dataclass
class TrpResult:
    """The tRP-violation sweep for one device."""

    device_serial: str
    spec_trp_ns: float
    points: List[TrpSweepPoint]
    sample_bits_mean: float

    @property
    def produces_entropy(self) -> bool:
        """Does some tRP value yield ~50% (band) cells at spec tRCD?"""
        return any(point.band_cells > 0 for point in self.points)

    def format_report(self) -> str:
        rows = [
            [
                f"{point.trp_ns:.0f}",
                f"{point.residual:.3f}",
                str(point.failing_cells),
                str(point.band_cells),
            ]
            for point in self.points
        ]
        return "\n".join(
            [
                "Extension — tRP-violation entropy "
                f"({self.device_serial}, spec tRP {self.spec_trp_ns} ns, "
                "reads at spec tRCD)",
                format_table(
                    ["tRP ns", "residual", "failing cells", "band cells"],
                    rows,
                ),
                f"sampled band-cell ones-ratio: {self.sample_bits_mean:.3f}",
            ]
        )


def _probe_with_trp(
    device: DramDevice,
    bank: int,
    target_row: int,
    primer_row: int,
    trp_ns: float,
    iterations: int,
) -> np.ndarray:
    """Fail counts for one row read at spec tRCD after a short PRE.

    The primer row stores the target's inverse, so the residual opposes
    every target cell's development.
    """
    target = device.bank(bank)
    geometry = device.geometry
    counts = np.zeros(geometry.cols_per_row, dtype=np.int64)
    expected = target.stored_row(target_row)
    for _ in range(iterations):
        if target.open_row is not None:
            target.precharge()
        target.activate(primer_row)
        target.precharge(trp_ns=trp_ns)
        target.activate(target_row)
        for word in range(geometry.words_per_row):
            got = target.read(word, op=device.operating_point(
                device.timings.trcd_ns
            ))
            sl = slice(word * geometry.word_bits, (word + 1) * geometry.word_bits)
            counts[sl] += got != expected[sl]
            break  # only the first word is failure-eligible
        target.precharge()
    return counts


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturer: str = "A",
    trp_sweep_ns: Sequence[float] = (18.0, 12.0, 10.0, 8.0, 6.0, 5.0),
    rows: int = 64,
    row_start: int = 448,
    iterations: int = 50,
) -> TrpResult:
    """Sweep tRP and measure failure/band statistics at spec tRCD."""
    device = config.factory().make_device(manufacturer, 0)
    geometry = device.geometry
    target_pattern = pattern_by_name("solid0")
    primer_pattern = pattern_by_name("solid1")

    # Interleave target/primer rows so each target has a same-bank primer.
    target_rows = list(range(row_start, row_start + rows, 2))
    for row in target_rows:
        device.bank(0).write_row(
            row, target_pattern.row_values(row, geometry.cols_per_row)
        )
        device.bank(0).write_row(
            row + 1, primer_pattern.row_values(row + 1, geometry.cols_per_row)
        )

    points: List[TrpSweepPoint] = []
    band_coords: List[Tuple[int, int]] = []
    for trp in trp_sweep_ns:
        failing = 0
        band = 0
        for row in target_rows:
            counts = _probe_with_trp(device, 0, row, row + 1, trp, iterations)
            word_counts = counts[: geometry.word_bits]
            failing += int((word_counts > 0).sum())
            in_band = (word_counts >= 0.4 * iterations) & (
                word_counts <= 0.6 * iterations
            )
            band += int(in_band.sum())
            if trp == trp_sweep_ns[-1]:
                band_coords.extend(
                    (row, int(col)) for col in np.flatnonzero(in_band)
                )
        residual = device.failure_model.precharge_residual(
            trp, device.timings.trp_ns
        )
        points.append(
            TrpSweepPoint(
                trp_ns=trp, residual=residual,
                failing_cells=failing, band_cells=band,
            )
        )

    # Sample one discovered band cell many times to show it is balanced.
    sample_mean = 0.5
    if band_coords:
        row, col = band_coords[0]
        bits = []
        target = device.bank(0)
        for _ in range(400):
            if target.open_row is not None:
                target.precharge()
            target.activate(row + 1)
            target.precharge(trp_ns=trp_sweep_ns[-1])
            target.activate(row)
            word = col // geometry.word_bits
            got = target.read(
                word, op=device.operating_point(device.timings.trcd_ns)
            )
            bits.append(int(got[col % geometry.word_bits]))
            target.precharge()
        sample_mean = float(np.mean(bits))

    return TrpResult(
        device_serial=device.serial,
        spec_trp_ns=device.timings.trp_ns,
        points=points,
        sample_bits_mean=sample_mean,
    )
