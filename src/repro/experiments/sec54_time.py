"""Section 5.4: entropy (failure-probability) variation over time.

The paper records each cell's Fprob over 250 rounds spanning 15 days
and finds no significant change — the basis for the ≥15-day
re-identification interval.  ``run`` repeats rounds of Algorithm 1
under fixed conditions and reports per-cell Fprob drift statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.profiling import Region, profile_region
from repro.dram.datapattern import BEST_RNG_PATTERN, pattern_by_name
from repro.experiments.common import ExperimentConfig


@dataclass
class TimeStabilityResult:
    """Per-round Fprob trajectories for the tracked cells."""

    device_serial: str
    rounds: int
    iterations_per_round: int
    trajectories: np.ndarray  # (rounds, cells)

    @property
    def per_cell_std(self) -> np.ndarray:
        """Std of each cell's measured Fprob across rounds."""
        return self.trajectories.std(axis=0)

    @property
    def binomial_expected_std(self) -> float:
        """Measurement noise floor for a p=0.5 cell with N iterations."""
        return float(np.sqrt(0.25 / self.iterations_per_round))

    @property
    def max_drift(self) -> float:
        """Largest |last-round − first-round| Fprob over tracked cells."""
        if self.trajectories.shape[0] < 2:
            return 0.0
        return float(
            np.abs(self.trajectories[-1] - self.trajectories[0]).max()
        )

    def is_stable(self, slack: float = 2.0) -> bool:
        """True when round-to-round variation is measurement noise.

        Checks that the observed per-cell std does not exceed ``slack``
        times the binomial sampling floor.
        """
        return bool(
            (self.per_cell_std <= slack * self.binomial_expected_std).all()
        )

    def format_report(self) -> str:
        return "\n".join(
            [
                f"Section 5.4 — Fprob stability over {self.rounds} rounds "
                f"({self.device_serial})",
                f"tracked cells: {self.trajectories.shape[1]}",
                f"mean Fprob (first round): {self.trajectories[0].mean():.3f}",
                f"max per-cell std: {self.per_cell_std.max():.4f} "
                f"(binomial floor {self.binomial_expected_std:.4f})",
                f"max first-to-last drift: {self.max_drift:.4f}",
                f"stable (2x noise floor): {self.is_stable()}",
            ]
        )


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturer: str = "A",
    rounds: int = 25,
    rows: int = 256,
    max_cells: int = 200,
) -> TimeStabilityResult:
    """Track marginal cells' Fprob across repeated rounds.

    The paper's 250 rounds over 15 days scale down to ``rounds`` here;
    since the variation field is frozen, wall-clock time between rounds
    has no effect by construction — which is exactly the property being
    demonstrated.
    """
    device = config.factory().make_device(manufacturer, 0)
    pattern = pattern_by_name(BEST_RNG_PATTERN[manufacturer])
    region = Region(banks=(0,), row_start=0, row_count=rows)

    first = profile_region(
        device, pattern, region=region,
        trcd_ns=config.trcd_ns, iterations=config.iterations,
    )
    probs = first.fail_probabilities
    tracked = np.argwhere((probs > 0.2) & (probs < 0.8))[:max_cells]
    if tracked.size == 0:
        raise ValueError("no marginal cells found to track; enlarge the region")

    trajectories: List[np.ndarray] = []
    for _ in range(rounds):
        round_result = profile_region(
            device, pattern, region=region,
            trcd_ns=config.trcd_ns, iterations=config.iterations,
            write_pattern=False,
        )
        round_probs = round_result.fail_probabilities
        trajectories.append(
            np.array([round_probs[b, r, c] for b, r, c in tracked])
        )
    return TimeStabilityResult(
        device_serial=device.serial,
        rounds=rounds,
        iterations_per_round=config.iterations,
        trajectories=np.stack(trajectories),
    )
