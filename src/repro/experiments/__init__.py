"""One module per table/figure of the paper's evaluation.

Every experiment module exposes a ``run(config)`` function returning a
structured result object with a ``format_report()`` method that prints
the same rows/series the paper reports.  ``ExperimentConfig`` scales the
experiments: the defaults match laptop-scale runs; crank the device
counts and region sizes up for paper-scale sweeps.

| Module                  | Paper artifact                                |
|-------------------------|-----------------------------------------------|
| fig4_spatial            | Fig. 4  spatial failure bitmap                |
| fig5_dpd                | Fig. 5  data-pattern coverage                 |
| fig6_temperature        | Fig. 6  ΔFprob under +5 °C                    |
| sec54_time              | §5.4    Fprob stability over rounds           |
| table1_nist             | Table 1 NIST suite on RNG-cell bitstreams     |
| fig7_density            | Fig. 7  RNG cells per word per bank           |
| fig8_throughput         | Fig. 8  throughput vs banks                   |
| sec73_latency           | §7.3    64-bit latency scenarios              |
| sec73_energy            | §7.3    energy per bit                        |
| sec73_interference      | §7.3    idle-bandwidth throughput + slowdown  |
| table2_comparison       | Table 2 prior DRAM TRNG comparison            |
| sec5_ddr3               | §5      DDR3 cross-validation via SoftMC      |
| ext_trp                 | footnote 4: tRP-violation entropy (extension) |
| ext_voltage             | supply-voltage sweep (extension)              |
| report                  | run everything, emit one text report          |
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
