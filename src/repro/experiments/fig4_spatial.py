"""Figure 4: spatial distribution of activation failures.

The paper plots every observed activation failure in a representative
1024×1024 cell array and observes (1) failures repeat down specific
columns within a subarray and (2) failure density grows toward
higher-numbered rows of each subarray.  ``run`` reproduces the bitmap
and extracts both observations quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.spatial import SpatialSummary, render_bitmap, summarize_bitmap
from repro.core.profiling import Region, profile_region
from repro.dram.datapattern import pattern_by_name
from repro.experiments.common import ExperimentConfig


@dataclass
class Fig4Result:
    """Bitmap and structure summary for one device region."""

    device_serial: str
    bitmap: np.ndarray
    summary: SpatialSummary
    subarray_rows: int

    def format_report(self) -> str:
        lines = [
            f"Figure 4 — activation-failure bitmap ({self.device_serial})",
            f"rows x cols: {self.bitmap.shape[0]} x {self.bitmap.shape[1]}",
            f"failing cells: {self.summary.failing_cells}",
            f"failing columns: {len(self.summary.failing_columns)}",
            "failing columns per subarray: "
            + ", ".join(str(c) for c in self.summary.columns_per_subarray),
            f"row-gradient correlation (within subarray): "
            f"{self.summary.row_gradient_correlation:+.3f}",
            "",
            render_bitmap(self.bitmap),
        ]
        return "\n".join(lines)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturer: str = "A",
    rows: int = 1024,
    cols: int = 1024,
    pattern_name: str = "solid1",
    iterations: int = 16,
) -> Fig4Result:
    """Profile a rows×cols region of one device and map its failures.

    The paper uses solid 1s for this figure; 16 iterations are plenty to
    mark every cell that fails with non-trivial probability.
    """
    device = config.factory().make_device(manufacturer, 0)
    result = profile_region(
        device,
        pattern_by_name(pattern_name),
        region=Region(banks=(0,), row_start=0, row_count=rows),
        trcd_ns=config.trcd_ns,
        iterations=iterations,
    )
    bitmap = (result.counts[0, :, :cols] > 0).astype(np.uint8)
    summary = summarize_bitmap(bitmap, device.geometry.subarray_rows)
    return Fig4Result(
        device_serial=device.serial,
        bitmap=bitmap,
        summary=summary,
        subarray_rows=device.geometry.subarray_rows,
    )
