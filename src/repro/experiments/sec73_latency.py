"""Section 7.3 "Low Latency": 64-bit generation latency scenarios."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.latency import LatencyEstimate, paper_scenarios
from repro.dram.timing import LPDDR4_3200, TimingParameters
from repro.experiments.common import ExperimentConfig, format_table

#: The paper's reported values for the three scenarios, worst to best.
PAPER_LATENCIES_NS = (960.0, 220.0, 100.0)


@dataclass
class LatencyResult:
    """Measured vs paper-reported 64-bit latencies."""

    estimates: Tuple[LatencyEstimate, ...]

    def format_report(self) -> str:
        rows: List[List[str]] = []
        for estimate, paper_ns in zip(self.estimates, PAPER_LATENCIES_NS):
            rows.append(
                [
                    estimate.scenario,
                    f"{estimate.latency_ns:.0f}",
                    f"{paper_ns:.0f}",
                ]
            )
        return "\n".join(
            [
                "Section 7.3 — latency to generate 64 random bits",
                format_table(["scenario", "measured ns", "paper ns"], rows),
            ]
        )

    @property
    def ordering_matches_paper(self) -> bool:
        """Latency must fall monotonically from worst to best scenario."""
        values = [e.latency_ns for e in self.estimates]
        return all(a > b for a, b in zip(values, values[1:]))


def run(
    config: ExperimentConfig = ExperimentConfig(),
    timings: TimingParameters = LPDDR4_3200,
) -> LatencyResult:
    """Evaluate the three paper configurations through the engine."""
    return LatencyResult(estimates=paper_scenarios(timings, config.trcd_ns))
