"""Figure 6: effect of temperature variation on failure probability.

For devices of each manufacturer, measure each cell's Fprob (100
iterations) at temperature T and at T+5 °C across the 55–70 °C range,
then summarize ΔFprob — the paper's box-and-whiskers of Fprob(T+5)
conditioned on Fprob(T).  Shape targets: the mass sits above the x=y
line (higher temperature → more failures), fewer than ~25% of points
fall below it, and manufacturer A tracks the line most tightly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.stats import BoxStats, box_stats
from repro.core.profiling import Region, profile_region
from repro.dram.datapattern import BEST_RNG_PATTERN, pattern_by_name
from repro.experiments.common import ExperimentConfig, format_table
from repro.testbed.chamber import ThermalChamber


@dataclass
class TemperaturePairs:
    """(Fprob@T, Fprob@T+5) samples for one manufacturer."""

    manufacturer: str
    base_fprob: np.ndarray
    stepped_fprob: np.ndarray

    @property
    def delta(self) -> np.ndarray:
        """Per-cell Fprob change under +5 °C."""
        return self.stepped_fprob - self.base_fprob

    @property
    def plateau_mask(self) -> np.ndarray:
        """Cells measured inside the metastable blob (Fprob ≈ 50%).

        These cells sit *on* the x=y line by construction (their outcome
        probability is pinned to 1/2 until temperature pushes them out
        of the plateau), so measurement noise splits them evenly across
        the diagonal; the below-diagonal statistic is computed on the
        transition cells instead.
        """
        return (self.base_fprob > 0.42) & (self.base_fprob < 0.58)

    @property
    def fraction_below_diagonal(self) -> float:
        """Fraction of *transition* cells whose Fprob decreased."""
        mask = ~self.plateau_mask
        if mask.sum() == 0:
            return 0.0
        return float((self.delta[mask] < 0).mean())

    def binned_box_stats(self, bins: int = 10) -> List[Tuple[float, BoxStats]]:
        """Box stats of Fprob@T+5 per Fprob@T bin (the figure's boxes)."""
        out = []
        edges = np.linspace(0.0, 1.0, bins + 1)
        for i in range(bins):
            mask = (self.base_fprob >= edges[i]) & (self.base_fprob < edges[i + 1])
            if mask.sum() >= 3:
                out.append(
                    ((edges[i] + edges[i + 1]) / 2, box_stats(self.stepped_fprob[mask]))
                )
        return out


@dataclass
class Fig6Result:
    """Fig. 6 across manufacturers."""

    per_manufacturer: List[TemperaturePairs]
    temperatures_c: Tuple[float, ...]

    def format_report(self) -> str:
        lines = [
            "Figure 6 — Fprob at T vs T+5C "
            f"(DRAM temperatures {self.temperatures_c} C)"
        ]
        for pairs in self.per_manufacturer:
            lines.append(f"\nManufacturer {pairs.manufacturer}: "
                         f"{pairs.base_fprob.size} marginal cells")
            lines.append(
                f"mean dFprob: {pairs.delta.mean():+.4f}   "
                f"std: {pairs.delta.std():.4f}   "
                f"below x=y (transition cells): "
                f"{pairs.fraction_below_diagonal:.1%}   "
                f"metastable blob: {pairs.plateau_mask.mean():.1%}"
            )
            rows = []
            for center, stats in pairs.binned_box_stats():
                rows.append(
                    [
                        f"{center:.2f}",
                        f"{stats.q1:.3f}",
                        f"{stats.median:.3f}",
                        f"{stats.q3:.3f}",
                        str(stats.n),
                    ]
                )
            lines.append(
                format_table(["Fprob@T bin", "q1@T+5", "median@T+5", "q3@T+5", "n"], rows)
            )
        return "\n".join(lines)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturers: Sequence[str] = ("A", "B", "C"),
    base_temps_c: Sequence[float] = (55.0, 60.0, 65.0),
    rows: int = 512,
) -> Fig6Result:
    """Measure Fprob at each base temperature and +5 °C above it."""
    results: List[TemperaturePairs] = []
    for manufacturer in manufacturers:
        pattern = pattern_by_name(BEST_RNG_PATTERN[manufacturer])
        base_all: List[np.ndarray] = []
        stepped_all: List[np.ndarray] = []
        for device in config.devices(manufacturer):
            chamber = ThermalChamber()
            chamber.add_device(device)
            region = Region(banks=(0,), row_start=0, row_count=rows)
            for base_temp in base_temps_c:
                chamber.set_dram_temperature(base_temp)
                base = profile_region(
                    device, pattern, region=region,
                    trcd_ns=config.trcd_ns, iterations=config.iterations,
                ).fail_probabilities
                chamber.set_dram_temperature(base_temp + 5.0)
                stepped = profile_region(
                    device, pattern, region=region,
                    trcd_ns=config.trcd_ns, iterations=config.iterations,
                ).fail_probabilities
                # Only marginal cells are informative (the figure's axes
                # are percentages of 100 trials; 0%/100% cells saturate).
                mask = (base > 0.01) & (base < 0.99)
                base_all.append(base[mask])
                stepped_all.append(stepped[mask])
        results.append(
            TemperaturePairs(
                manufacturer=manufacturer,
                base_fprob=np.concatenate(base_all),
                stepped_fprob=np.concatenate(stepped_all),
            )
        )
    return Fig6Result(
        per_manufacturer=results,
        temperatures_c=tuple(base_temps_c),
    )
