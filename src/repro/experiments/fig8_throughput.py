"""Figure 8: TRNG throughput vs number of banks used.

For a sample of devices per manufacturer: identify RNG cells, select
the two best words per bank, and evaluate Equation 1 for 1..8 banks
through the timing engine.  Shape targets: throughput grows with bank
count; per-manufacturer medians are similar; with all 8 banks every
device clears tens of Mb/s; 4-channel scaling gives the paper's
headline maximum/average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.stats import box_stats
from repro.core.drange import DRange
from repro.core.profiling import Region
from repro.core.throughput import ThroughputModel
from repro.experiments.common import ExperimentConfig, format_table


@dataclass
class Fig8Result:
    """Throughput distributions per manufacturer and bank count."""

    #: per_manufacturer[mfr][x] = list over devices of Mb/s at x banks.
    per_manufacturer: Dict[str, Dict[int, List[float]]]
    channels: int = 4

    def device_peaks_mbps(self) -> List[float]:
        """Best per-channel throughput of every device (max banks)."""
        peaks = []
        for by_banks in self.per_manufacturer.values():
            if not by_banks:
                continue
            top = max(by_banks)
            peaks.extend(by_banks[top])
        return peaks

    @property
    def max_throughput_4ch_mbps(self) -> float:
        """Paper headline: best device × 4 channels (717.4 Mb/s)."""
        peaks = self.device_peaks_mbps()
        return max(peaks) * self.channels if peaks else 0.0

    @property
    def avg_throughput_4ch_mbps(self) -> float:
        """Paper headline: average device × 4 channels (435.7 Mb/s)."""
        peaks = self.device_peaks_mbps()
        return float(np.mean(peaks)) * self.channels if peaks else 0.0

    def format_report(self) -> str:
        lines = ["Figure 8 — TRNG throughput (Mb/s) vs banks used"]
        for manufacturer, by_banks in self.per_manufacturer.items():
            lines.append(f"\nManufacturer {manufacturer}:")
            rows = []
            for x in sorted(by_banks):
                stats = box_stats(by_banks[x])
                rows.append(
                    [
                        str(x),
                        f"{stats.median:.1f}",
                        f"{stats.minimum:.1f}",
                        f"{stats.maximum:.1f}",
                    ]
                )
            lines.append(format_table(["banks", "median", "min", "max"], rows))
        lines.append(
            f"\n4-channel maximum: {self.max_throughput_4ch_mbps:.1f} Mb/s"
            f"   4-channel average: {self.avg_throughput_4ch_mbps:.1f} Mb/s"
        )
        return "\n".join(lines)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    manufacturers: Sequence[str] = ("A", "B", "C"),
    max_banks: int = 8,
) -> Fig8Result:
    """Evaluate Equation 1 for every sampled device and bank count."""
    per_manufacturer: Dict[str, Dict[int, List[float]]] = {}
    for manufacturer in manufacturers:
        by_banks: Dict[int, List[float]] = {}
        for device in config.devices(manufacturer):
            drange = DRange(device, trcd_ns=config.trcd_ns)
            drange.prepare(
                region=Region(
                    banks=config.region_banks,
                    row_start=0,
                    row_count=min(
                        config.region_rows, device.geometry.rows_per_bank
                    ),
                ),
                iterations=config.iterations,
                samples=config.identification_samples,
            )
            model = drange.throughput_model()
            for estimate in model.sweep(max_banks):
                by_banks.setdefault(estimate.num_banks, []).append(
                    estimate.throughput_mbps
                )
        per_manufacturer[manufacturer] = by_banks
    return Fig8Result(per_manufacturer=per_manufacturer)
