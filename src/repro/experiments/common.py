"""Shared configuration and helpers for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.dram.device import DeviceFactory, DramDevice
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by the experiments.

    The defaults run each experiment in seconds on a laptop while
    keeping every qualitative shape of the paper's figures.  For
    paper-scale runs, raise ``devices_per_manufacturer`` (the paper
    samples 59 devices for Figures 7/8) and the region sizes.
    """

    master_seed: int = 2019
    noise_seed: int = None  # None → OS entropy (true random mode)
    devices_per_manufacturer: int = 3
    region_banks: Tuple[int, ...] = tuple(range(8))
    region_rows: int = 1024
    iterations: int = 100
    trcd_ns: float = 10.0
    identification_samples: int = 1000

    def __post_init__(self) -> None:
        if self.devices_per_manufacturer <= 0:
            raise ConfigurationError(
                "devices_per_manufacturer must be positive, got "
                f"{self.devices_per_manufacturer}"
            )
        if self.iterations <= 0:
            raise ConfigurationError(
                f"iterations must be positive, got {self.iterations}"
            )

    def factory(self) -> DeviceFactory:
        """Device factory seeded for this configuration."""
        return DeviceFactory(
            master_seed=self.master_seed, noise_seed=self.noise_seed
        )

    def devices(self, manufacturer: str) -> List[DramDevice]:
        """The configured sample of one manufacturer's devices."""
        factory = self.factory()
        return [
            factory.make_device(manufacturer, index)
            for index in range(self.devices_per_manufacturer)
        ]


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align a small text table (header + separator + rows)."""
    table = [list(header)] + [list(r) for r in rows]
    widths = [max(len(str(row[i])) for row in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
