"""Table 1: NIST suite results on D-RaNGe bitstreams.

The paper samples 4 RNG cells from each of 59 devices one million times
each and runs all 15 NIST tests on the resulting 1 Mb bitstreams,
reporting the average P-value per test (all PASS at α = 1e-4) and a
minimum per-cell Shannon entropy of 0.9507.

``run`` reproduces the pipeline end-to-end: prepare (Algorithm 1 +
identification) per device, sample each selected RNG cell into its own
bitstream, run the suite, and aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.entropy import shannon_entropy
from repro.core.drange import DRange
from repro.core.identification import verify_unbiased
from repro.core.profiling import Region
from repro.experiments.common import ExperimentConfig, format_table
from repro.nist.suite import (
    SuiteReport,
    acceptable_proportion_range,
    p_value_uniformity,
    run_suite,
)


@dataclass
class Table1Result:
    """Aggregated NIST results across RNG-cell bitstreams."""

    reports: List[SuiteReport]
    entropies: List[float]
    stream_bits: int
    alpha: float

    @property
    def mean_p_values(self) -> Dict[str, float]:
        """Average P-value per test over all bitstreams."""
        sums: Dict[str, List[float]] = {}
        for report in self.reports:
            for result in report.results:
                sums.setdefault(result.name, []).append(result.p_value)
        return {name: float(np.mean(ps)) for name, ps in sums.items()}

    @property
    def pass_proportion(self) -> Dict[str, float]:
        """Fraction of bitstreams passing each test."""
        totals: Dict[str, List[bool]] = {}
        for report in self.reports:
            for result in report.results:
                totals.setdefault(result.name, []).append(result.passed)
        return {name: float(np.mean(oks)) for name, oks in totals.items()}

    @property
    def uniformity(self) -> Dict[str, float]:
        """NIST final-analysis uniformity of P-values per test."""
        per_test: Dict[str, List[float]] = {}
        for report in self.reports:
            for result in report.results:
                per_test.setdefault(result.name, []).append(result.p_value)
        return {
            name: p_value_uniformity(ps) for name, ps in per_test.items()
        }

    @property
    def min_entropy(self) -> float:
        """Minimum Shannon entropy across RNG cells (paper: 0.9507)."""
        return min(self.entropies)

    @property
    def all_passed(self) -> bool:
        return all(report.all_passed for report in self.reports)

    def format_report(self) -> str:
        mean_p = self.mean_p_values
        proportion = self.pass_proportion
        low, high = acceptable_proportion_range(self.alpha, len(self.reports))
        rows = []
        for name, p in mean_p.items():
            ok = proportion[name] >= low
            p_text = ">0.999" if p > 0.999 else f"{p:.3f}"
            rows.append([name, p_text, "PASS" if ok else "FAIL"])
        lines = [
            f"Table 1 — NIST suite over {len(self.reports)} bitstreams of "
            f"{self.stream_bits} bits (alpha={self.alpha})",
            format_table(["NIST Test Name", "P-value", "Status"], rows),
            f"acceptable pass proportion: [{low:.3f}, {high:.3f}]",
            f"minimum RNG-cell Shannon entropy: {self.min_entropy:.4f}",
        ]
        return "\n".join(lines)


def run(
    config: ExperimentConfig = ExperimentConfig(devices_per_manufacturer=1),
    manufacturers: Sequence[str] = ("A", "B", "C"),
    cells_per_device: int = 4,
    stream_bits: int = 262_144,
    alpha: float = 1e-4,
    verify_samples: int = 100_000,
) -> Table1Result:
    """Generate per-RNG-cell bitstreams and run the full NIST suite.

    ``stream_bits`` defaults to 256 Kb (minutes-scale); pass 1_000_000
    for the paper's exact stream length.  Identified cells go through a
    second-stage bias verification (:func:`verify_unbiased`) sized for
    the stream length before NIST testing.
    """
    reports: List[SuiteReport] = []
    entropies: List[float] = []
    for manufacturer in manufacturers:
        for index in range(config.devices_per_manufacturer):
            device = config.factory().make_device(manufacturer, index)
            drange = DRange(device, trcd_ns=config.trcd_ns)
            cells = drange.prepare(
                region=Region(
                    banks=config.region_banks,
                    row_start=0,
                    row_count=min(
                        config.region_rows, device.geometry.rows_per_bank
                    ),
                ),
                iterations=config.iterations,
                samples=config.identification_samples,
                max_cells=4 * cells_per_device,
            )
            cells = verify_unbiased(
                device, cells, trcd_ns=config.trcd_ns, samples=verify_samples
            )
            for cell in cells[:cells_per_device]:
                bits = device.sample_cell_bits(
                    cell.bank, cell.row, cell.col, stream_bits, config.trcd_ns
                )
                entropies.append(shannon_entropy(bits))
                reports.append(run_suite(bits, alpha=alpha))
    if not reports:
        raise ValueError("no RNG cells were identified; enlarge the region")
    return Table1Result(
        reports=reports,
        entropies=entropies,
        stream_bits=stream_bits,
        alpha=alpha,
    )
