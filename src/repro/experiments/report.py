"""One-shot full reproduction: run every experiment, emit one report.

``generate_report`` runs each paper artifact (and the two extensions)
at the requested configuration and concatenates the per-experiment
reports into a single text document — the programmatic counterpart of
``pytest benchmarks/ --benchmark-only``, for embedding in notebooks,
CI logs, or the CLI's ``experiment all``.
"""

from __future__ import annotations

import io
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.experiments import (
    ext_trp,
    ext_voltage,
    fig4_spatial,
    fig5_dpd,
    fig6_temperature,
    fig7_density,
    fig8_throughput,
    sec5_ddr3,
    sec54_time,
    sec73_energy,
    sec73_interference,
    sec73_latency,
    table1_nist,
    table2_comparison,
)
from repro.experiments.common import ExperimentConfig

#: Experiment id → runner, in the paper's presentation order.  Runners
#: are scaled-down so the full sweep finishes in minutes.
RUNNERS: Dict[str, Callable[[ExperimentConfig], object]] = {
    "fig4": lambda c: fig4_spatial.run(c, rows=512, cols=512),
    "fig5": lambda c: fig5_dpd.run(
        c,
        pattern_names=(
            "solid0", "solid1", "checkered0", "checkered1",
            "rowstripe", "colstripe",
            "walk1_00", "walk1_07", "walk1_15",
            "walk0_00", "walk0_07", "walk0_15",
        ),
        rows=512,
    ),
    "fig6": lambda c: fig6_temperature.run(
        c, base_temps_c=(55.0, 65.0), rows=256
    ),
    "sec54": lambda c: sec54_time.run(c, rounds=10, rows=256),
    "sec5_ddr3": lambda c: sec5_ddr3.run(c, num_devices=2, rows=512),
    "table1": lambda c: table1_nist.run(
        c, cells_per_device=2, stream_bits=100_000
    ),
    "fig7": fig7_density.run,
    "fig8": fig8_throughput.run,
    "latency": sec73_latency.run,
    "energy": lambda c: sec73_energy.run(c, num_bits=256),
    "interference": sec73_interference.run,
    "table2": table2_comparison.run,
    "ext_trp": lambda c: ext_trp.run(c, rows=32, iterations=40),
    "ext_voltage": lambda c: ext_voltage.run(c, rows=256),
}


def generate_report(
    config: Optional[ExperimentConfig] = None,
    experiments: Optional[Sequence[str]] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Tuple[str, Dict[str, float]]:
    """Run the selected experiments; returns (report text, timings).

    ``experiments`` defaults to everything in :data:`RUNNERS`.  Each
    section carries the experiment id, its wall time, and the same rows
    the paper reports.
    """
    if config is None:
        config = ExperimentConfig(
            devices_per_manufacturer=1,
            region_banks=(0, 1, 2, 3),
            region_rows=512,
        )
    names = list(RUNNERS) if experiments is None else list(experiments)
    unknown = set(names) - set(RUNNERS)
    if unknown:
        raise ValueError(f"unknown experiment id(s): {sorted(unknown)}")

    out = io.StringIO()
    timings: Dict[str, float] = {}
    out.write("D-RaNGe reproduction — full experiment report\n")
    out.write("=" * 72 + "\n")
    for name in names:
        start = clock()
        result = RUNNERS[name](config)
        elapsed = clock() - start
        timings[name] = elapsed
        out.write(f"\n[{name}]  ({elapsed:.1f}s)\n")
        out.write("-" * 72 + "\n")
        out.write(result.format_report())
        out.write("\n")
    total = sum(timings.values())
    out.write("\n" + "=" * 72 + "\n")
    out.write(f"{len(names)} experiments in {total:.1f}s\n")
    return out.getvalue(), timings
