"""IDD current specifications for the energy model.

These follow the structure of JEDEC datasheet IDD tables (and of
DRAMPower's input parameters [1, 25]): one quiescent current per device
state plus burst currents for column accesses.  Values are
representative datasheet-class numbers for each technology, not
measurements of specific parts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IddSpec:
    """Current (mA) and voltage (V) parameters of one device class.

    Attributes
    ----------
    vdd:
        Supply voltage.
    idd0:
        Average current of an ACT–PRE cycle at minimum tRC.
    idd2n:
        Precharge-standby current (all banks idle).
    idd3n:
        Active-standby current (a row open, no column traffic).
    idd4r / idd4w:
        Burst read / write current.
    idd5:
        Refresh current averaged over tRFC.
    """

    name: str
    vdd: float
    idd0: float
    idd2n: float
    idd3n: float
    idd4r: float
    idd4w: float
    idd5: float

    def __post_init__(self) -> None:
        for field_name in ("vdd", "idd0", "idd2n", "idd3n", "idd4r", "idd4w", "idd5"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ConfigurationError(f"{field_name} must be positive, got {value}")
        if self.idd0 <= self.idd3n:
            raise ConfigurationError("idd0 must exceed idd3n (activation adds power)")
        if self.idd4r <= self.idd3n or self.idd4w <= self.idd3n:
            raise ConfigurationError("burst currents must exceed active standby")


#: Representative LPDDR4 x16 currents (datasheet class, VDD2 rail).
LPDDR4_IDD = IddSpec(
    name="LPDDR4",
    vdd=1.1,
    idd0=58.0,
    idd2n=26.0,
    idd3n=34.0,
    idd4r=230.0,
    idd4w=245.0,
    idd5=160.0,
)

#: Representative DDR3 x8 currents.
DDR3_IDD = IddSpec(
    name="DDR3",
    vdd=1.35,
    idd0=55.0,
    idd2n=32.0,
    idd3n=38.0,
    idd4r=140.0,
    idd4w=150.0,
    idd5=190.0,
)
