"""DRAM energy modeling (the reproduction's DRAMPower [1, 25]).

:mod:`repro.power.idd` carries the IDD current specs per device class;
:mod:`repro.power.model` converts a timestamped command trace into
energy using the standard current-based accounting, including the
"active minus idle" differencing the paper uses to attribute energy to
D-RaNGe (Section 7.3, "Low Energy Consumption": 4.4 nJ/bit).
"""

from repro.power.idd import DDR3_IDD, LPDDR4_IDD, IddSpec
from repro.power.model import EnergyBreakdown, PowerModel

__all__ = ["DDR3_IDD", "EnergyBreakdown", "IddSpec", "LPDDR4_IDD", "PowerModel"]
