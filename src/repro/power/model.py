"""Command-trace energy accounting (DRAMPower-style).

Energy is attributed with the standard current-based decomposition:

* every ACT(+implied PRE) pays ``vdd · (idd0 − idd3n) · tRC``;
* every READ/WRITE burst pays ``vdd · (idd4x − idd3n) · t_burst``;
* every REF pays ``vdd · (idd5 − idd3n) · tRFC``;
* background pays ``vdd · idd3n`` (active standby) over the trace
  duration — callers that want the paper's "active minus idle"
  attribution subtract :meth:`PowerModel.idle_energy` over the same
  window, exactly as Section 7.3 subtracts the idling trace.

All energies are reported in joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import CommandKind
from repro.dram.timing import TimingParameters
from repro.power.idd import IddSpec
from repro.sim.trace import CommandTrace

_MA_NS_TO_COULOMB = 1e-12  # 1 mA · 1 ns = 1e-12 C


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one trace, split by contribution (joules)."""

    activation_j: float
    read_j: float
    write_j: float
    refresh_j: float
    background_j: float

    @property
    def total_j(self) -> float:
        """Sum of all contributions."""
        return (
            self.activation_j
            + self.read_j
            + self.write_j
            + self.refresh_j
            + self.background_j
        )


class PowerModel:
    """Converts command traces to energy under one IDD spec."""

    def __init__(self, idd: IddSpec, timings: TimingParameters) -> None:
        self._idd = idd
        self._timings = timings

    @property
    def idd(self) -> IddSpec:
        """Current spec in use."""
        return self._idd

    def trace_energy(self, trace: CommandTrace, duration_ns: float = None) -> EnergyBreakdown:
        """Energy of ``trace`` over ``duration_ns`` (defaults to trace span)."""
        idd = self._idd
        t = self._timings
        if duration_ns is None:
            duration_ns = trace.duration_ns
        if duration_ns < trace.duration_ns:
            raise ValueError(
                f"duration_ns {duration_ns} shorter than trace span "
                f"{trace.duration_ns}"
            )
        acts = trace.count(CommandKind.ACT)
        reads = trace.count(CommandKind.READ)
        writes = trace.count(CommandKind.WRITE)
        refs = trace.count(CommandKind.REF)
        scale = idd.vdd * _MA_NS_TO_COULOMB
        return EnergyBreakdown(
            activation_j=acts * (idd.idd0 - idd.idd3n) * t.trc_ns * scale,
            read_j=reads * (idd.idd4r - idd.idd3n) * t.burst_ns * scale,
            write_j=writes * (idd.idd4w - idd.idd3n) * t.burst_ns * scale,
            refresh_j=refs * (idd.idd5 - idd.idd3n) * t.trfc_ns * scale,
            background_j=idd.idd3n * duration_ns * scale,
        )

    def idle_energy(self, duration_ns: float) -> float:
        """Energy of an idle (precharge-standby) device over a window."""
        if duration_ns < 0:
            raise ValueError(f"duration_ns must be non-negative, got {duration_ns}")
        return self._idd.vdd * self._idd.idd2n * duration_ns * _MA_NS_TO_COULOMB

    def net_energy(self, trace: CommandTrace, duration_ns: float = None) -> float:
        """Trace energy minus the idle energy of the same window.

        This is the attribution the paper uses for D-RaNGe and the
        retention baseline: "subtract quantity (2) [idling] from (1)
        [generating random numbers]".
        """
        breakdown = self.trace_energy(trace, duration_ns)
        window = duration_ns if duration_ns is not None else trace.duration_ns
        return breakdown.total_j - self.idle_energy(window)

    def energy_per_bit(
        self, trace: CommandTrace, bits: int, duration_ns: float = None
    ) -> float:
        """Net energy divided by the random bits harvested (J/bit)."""
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        return self.net_energy(trace, duration_ns) / bits
