"""A DIEHARD-style statistical battery (Marsaglia [97]).

The paper names DIEHARD alongside NIST as the standard validation
suites for TRNGs (Section 2.2).  This package implements a compact
battery of the classic DIEHARD-family tests adapted to bitstreams, each
returning the same :class:`~repro.nist.result.TestResult` record as the
NIST tests so reports can mix both suites:

* birthday spacings,
* overlapping 5-bit patterns (a bit-level OPSO analogue),
* binary rank of 6×8 matrices,
* count-the-1s (chi-square over byte popcounts),
* runs up-and-down (of the byte stream).
"""

from repro.diehard.battery import (
    DIEHARD_TESTS,
    binary_rank_6x8,
    birthday_spacings,
    count_the_ones,
    overlapping_5bit,
    run_battery,
    runs_up_down,
)

__all__ = [
    "DIEHARD_TESTS",
    "binary_rank_6x8",
    "birthday_spacings",
    "count_the_ones",
    "overlapping_5bit",
    "run_battery",
    "runs_up_down",
]
