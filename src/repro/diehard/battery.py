"""The DIEHARD-style tests.

Each test consumes a 0/1 bitstream and returns a
:class:`~repro.nist.result.TestResult`.  Statistics follow the classic
Marsaglia battery, adapted where necessary to operate on bitstreams
(the original operated on 32-bit integer files).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

import numpy as np
from scipy.special import erfc, gammaincc
from scipy.stats import poisson

from repro.errors import InsufficientDataError
from repro.nist.bits import BitsLike, as_bits, require_length
from repro.nist.gf2 import rank_gf2
from repro.nist.result import DEFAULT_ALPHA, TestResult
from repro.nist.serial import _psi_squared
from repro.parallel.pool import WorkerPool, resolve_workers

#: Birthday-spacings parameters: m birthdays in a 2**day_bits-day year.
BDAY_BITS = 24
BDAY_PER_SAMPLE = 512
#: λ = m³ / (4·n) — the Poisson rate of duplicate spacings per sample.
BDAY_LAMBDA = BDAY_PER_SAMPLE**3 / (4.0 * 2.0**BDAY_BITS)


def birthday_spacings(data: BitsLike) -> TestResult:
    """Duplicate spacings between random "birthdays" are Poisson.

    Draw 512 birthdays of a 2^24-day year from 24-bit words, sort, and
    count duplicated spacings; per sample the count is Poisson(λ=2).
    The total over all samples is tested against Poisson(k·λ).
    """
    bits = as_bits(data)
    sample_bits = BDAY_BITS * BDAY_PER_SAMPLE
    require_length(bits, 2 * sample_bits, "birthday_spacings")
    k_samples = bits.size // sample_bits

    total_duplicates = 0
    for s in range(k_samples):
        chunk = bits[s * sample_bits : (s + 1) * sample_bits]
        words = chunk.reshape(BDAY_PER_SAMPLE, BDAY_BITS)
        weights = 1 << np.arange(BDAY_BITS, dtype=np.int64)[::-1]
        birthdays = (words * weights).sum(axis=1)
        spacings = np.sort(np.diff(np.sort(birthdays)))
        total_duplicates += int(
            (np.diff(spacings) == 0).sum()
        )

    expected = k_samples * BDAY_LAMBDA
    # Two-sided Poisson tail probability.
    lower = poisson.cdf(total_duplicates, expected)
    upper = poisson.sf(total_duplicates - 1, expected)
    p = float(min(1.0, 2.0 * min(lower, upper)))
    return TestResult(
        "birthday_spacings",
        p,
        statistics={
            "duplicates": float(total_duplicates),
            "expected": expected,
            "samples": float(k_samples),
        },
    )


def overlapping_5bit(data: BitsLike) -> TestResult:
    """Overlapping 5-bit pattern frequencies (an OPSO-style monkey test).

    Uses the ψ² difference statistic over overlapping 5-bit windows,
    which is chi-square distributed for a random stream.
    """
    bits = as_bits(data)
    require_length(bits, 4096, "overlapping_5bit")
    m = 5
    delta = _psi_squared(bits, m) - _psi_squared(bits, m - 1)
    p = float(gammaincc(2.0 ** (m - 2), delta / 2.0))
    return TestResult(
        "overlapping_5bit", p, statistics={"delta_psi2": float(delta)}
    )


@lru_cache(maxsize=None)
def _rank_probability(rows: int, cols: int, rank: int) -> float:
    """Probability of a random GF(2) rows×cols matrix having ``rank``."""
    if rank < 0 or rank > min(rows, cols):
        return 0.0
    exponent = rank * (rows + cols - rank) - rows * cols
    product = 1.0
    for i in range(rank):
        product *= (
            (1.0 - 2.0 ** (i - rows))
            * (1.0 - 2.0 ** (i - cols))
            / (1.0 - 2.0 ** (i - rank))
        )
    return 2.0**exponent * product


def binary_rank_6x8(data: BitsLike) -> TestResult:
    """Rank distribution of 6×8 GF(2) matrices cut from the stream."""
    bits = as_bits(data)
    matrix_bits = 48
    require_length(bits, 100 * matrix_bits, "binary_rank_6x8")
    n_matrices = bits.size // matrix_bits
    matrices = bits[: n_matrices * matrix_bits].reshape(n_matrices, 6, 8)

    counts = np.zeros(3, dtype=np.float64)  # rank 6, 5, <=4
    for i in range(n_matrices):
        rank = rank_gf2(matrices[i])
        if rank == 6:
            counts[0] += 1
        elif rank == 5:
            counts[1] += 1
        else:
            counts[2] += 1

    p6 = _rank_probability(6, 8, 6)
    p5 = _rank_probability(6, 8, 5)
    probabilities = np.array([p6, p5, 1.0 - p6 - p5])
    expected = n_matrices * probabilities
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    p = float(gammaincc(1.0, chi2 / 2.0))
    return TestResult(
        "binary_rank_6x8",
        p,
        statistics={"chi2": chi2, "n_matrices": float(n_matrices)},
    )


def count_the_ones(data: BitsLike) -> TestResult:
    """Chi-square of byte popcounts against Binomial(8, 1/2)."""
    bits = as_bits(data)
    require_length(bits, 8 * 256, "count_the_ones")
    n_bytes = bits.size // 8
    popcounts = bits[: n_bytes * 8].reshape(n_bytes, 8).sum(axis=1)
    counts = np.bincount(popcounts, minlength=9).astype(np.float64)
    probabilities = np.array(
        [math.comb(8, k) / 256.0 for k in range(9)]
    )
    expected = n_bytes * probabilities
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    p = float(gammaincc(4.0, chi2 / 2.0))
    return TestResult(
        "count_the_ones", p, statistics={"chi2": chi2, "n_bytes": float(n_bytes)}
    )


def runs_up_down(data: BitsLike) -> TestResult:
    """Runs up-and-down over the byte sequence.

    For n distinct values the total number of ascending/descending runs
    is asymptotically N((2n−1)/3, (16n−29)/90); ties (equal adjacent
    bytes) are dropped first.
    """
    bits = as_bits(data)
    require_length(bits, 8 * 1000, "runs_up_down")
    n_bytes = bits.size // 8
    weights = 1 << np.arange(8, dtype=np.int64)[::-1]
    values = (bits[: n_bytes * 8].reshape(n_bytes, 8) * weights).sum(axis=1)
    # Drop ties so the up/down direction is always defined.
    keep = np.concatenate([[True], np.diff(values) != 0])
    values = values[keep]
    n = values.size
    if n < 100:
        raise InsufficientDataError(
            f"runs_up_down has only {n} tie-free values, needs >= 100"
        )
    directions = np.sign(np.diff(values))
    n_runs = 1 + int((np.diff(directions) != 0).sum())
    mean = (2.0 * n - 1.0) / 3.0
    var = (16.0 * n - 29.0) / 90.0
    z = (n_runs - mean) / math.sqrt(var)
    p = float(erfc(abs(z) / math.sqrt(2.0)))
    return TestResult(
        "runs_up_down",
        p,
        statistics={"runs": float(n_runs), "expected": mean, "z": float(z)},
    )


#: The battery, in canonical order.
DIEHARD_TESTS: Tuple[Tuple[str, Callable[[BitsLike], TestResult]], ...] = (
    ("birthday_spacings", birthday_spacings),
    ("overlapping_5bit", overlapping_5bit),
    ("binary_rank_6x8", binary_rank_6x8),
    ("count_the_ones", count_the_ones),
    ("runs_up_down", runs_up_down),
)


def run_battery(
    data: BitsLike,
    alpha: float = DEFAULT_ALPHA,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    test_timeout_s: Optional[float] = None,
) -> List[TestResult]:
    """Run the full battery; skips tests the stream is too short for.

    ``parallel``/``max_workers`` run the tests concurrently on thread
    workers; every test is a pure read-only function of the stream, so
    results match the serial run and come back in canonical battery
    order.  ``test_timeout_s`` bounds each test — a test that exceeds
    it is dropped, like one the stream is too short for.  The runner
    degrades to the serial loop when no pool can be created.
    ``parallel=None`` enables the concurrent path exactly when
    ``max_workers`` or ``test_timeout_s`` is given.
    """
    bits = as_bits(data)
    if parallel is None:
        parallel = max_workers is not None or test_timeout_s is not None

    raw: List[Optional[TestResult]] = []
    if parallel and len(DIEHARD_TESTS) > 1:
        workers = resolve_workers(max_workers)
        if test_timeout_s is not None:
            # Timeout enforcement needs a live executor; the serial
            # fallback a 1-worker pool resolves to cannot interrupt a
            # running test.
            workers = max(workers, 2)
        pool = WorkerPool(max_workers=workers, backend="thread")
        outcomes = pool.execute(
            lambda test: test(bits),
            [test for _, test in DIEHARD_TESTS],
            timeout_s=test_timeout_s,
        )
        for outcome in outcomes:
            if outcome.ok:
                raw.append(outcome.value)
            elif outcome.timed_out or isinstance(
                outcome.error, InsufficientDataError
            ):
                raw.append(None)
            else:
                assert outcome.error is not None
                raise outcome.error
    else:
        for _, test in DIEHARD_TESTS:
            try:
                raw.append(test(bits))
            except InsufficientDataError:
                raw.append(None)

    results: List[TestResult] = []
    for result in raw:
        if result is None:
            continue
        # Rebuild unconditionally with the requested alpha: a float
        # inequality guard here saves nothing and trips on rounding.
        results.append(
            TestResult(
                result.name,
                result.p_value,
                p_values=result.p_values,
                statistics=result.statistics,
                alpha=alpha,
            )
        )
    return results
