"""Bitstream utilities shared by the NIST tests."""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.errors import InsufficientDataError

BitsLike = Union[np.ndarray, bytes, bytearray, Iterable[int]]


def as_bits(data: BitsLike) -> np.ndarray:
    """Normalize input into a uint8 array of 0/1 bits.

    Accepts a 0/1 integer array/iterable, or raw ``bytes`` which are
    unpacked MSB-first.
    """
    if isinstance(data, (bytes, bytearray)):
        return np.unpackbits(np.frombuffer(bytes(data), dtype=np.uint8))
    bits = np.asarray(data)
    if bits.ndim != 1:
        raise ValueError(f"bitstream must be 1-D, got shape {bits.shape}")
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bitstream must contain only 0s and 1s")
    return bits.astype(np.uint8)


def require_length(bits: np.ndarray, minimum: int, test_name: str) -> None:
    """Raise :class:`InsufficientDataError` for too-short streams."""
    if bits.size < minimum:
        raise InsufficientDataError(
            f"{test_name} requires at least {minimum} bits, got {bits.size}"
        )


def to_pm1(bits: np.ndarray) -> np.ndarray:
    """Map bits {0, 1} to {−1, +1} as float64."""
    return 2.0 * bits.astype(np.float64) - 1.0


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a 0/1 array into bytes, MSB-first (inverse of :func:`as_bits`)."""
    return np.packbits(as_bits(bits)).tobytes()


def pattern_codes(bits: np.ndarray, m: int, wrap: bool = True) -> np.ndarray:
    """Integer code of every (overlapping) m-bit window.

    With ``wrap=True`` (the serial / approximate-entropy convention) the
    stream is extended circularly so there are exactly ``n`` windows.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    bits = as_bits(bits)
    if wrap:
        extended = np.concatenate([bits, bits[: m - 1]]) if m > 1 else bits
    else:
        extended = bits
    n_windows = extended.size - m + 1
    if n_windows <= 0:
        raise ValueError(f"stream of {bits.size} bits has no {m}-bit windows")
    codes = np.zeros(n_windows, dtype=np.int64)
    for k in range(m):
        codes = (codes << 1) | extended[k : k + n_windows]
    return codes


def pattern_counts(bits: np.ndarray, m: int, wrap: bool = True) -> np.ndarray:
    """Occurrence count of each of the 2**m patterns."""
    codes = pattern_codes(bits, m, wrap=wrap)
    return np.bincount(codes, minlength=1 << m).astype(np.float64)
