"""Linear complexity test (SP 800-22 §2.10).

The per-block linear complexity is computed with the Berlekamp–Massey
algorithm, vectorized *across blocks*: all blocks advance through the
bit positions in lock-step, with the data-dependent branches of the
algorithm expressed as row masks.  The trick that keeps the update
vectorizable is storing the previous connection polynomial pre-shifted
(``B`` always holds ``b(x)·x^(n-m)``), so the per-row varying shift
becomes one global shift per step.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincc

from repro.nist.bits import BitsLike, as_bits, require_length
from repro.nist.result import TestResult

#: Category probabilities for the T statistic (SP 800-22 §2.10.4).
_PI = (0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833)

#: Category upper edges for T: (-inf,-2.5], (-2.5,-1.5], ... (2.5, inf).
_EDGES = (-2.5, -1.5, -0.5, 0.5, 1.5, 2.5)


def berlekamp_massey_blocks(blocks: np.ndarray) -> np.ndarray:
    """Linear complexity of every row of a 0/1 matrix.

    Runs Berlekamp–Massey on all rows simultaneously; returns an int
    array of per-row complexities.
    """
    blocks = np.asarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2:
        raise ValueError(f"blocks must be 2-D, got shape {blocks.shape}")
    n_blocks, m = blocks.shape
    c = np.zeros((n_blocks, m + 1), dtype=np.uint8)
    b = np.zeros((n_blocks, m + 1), dtype=np.uint8)
    c[:, 0] = 1
    b[:, 0] = 1
    lengths = np.zeros(n_blocks, dtype=np.int64)

    for n in range(m):
        # B always holds b(x)·x^(n-m_last); advance the shift first.
        b[:, 1:] = b[:, :-1]
        b[:, 0] = 0
        # Discrepancy: parity of c(x) against the reversed bit window.
        window = blocks[:, n::-1]
        d = (c[:, : n + 1] & window).sum(axis=1, dtype=np.int64) & 1
        update = d == 1
        if not update.any():
            continue
        promote = update & (2 * lengths <= n)
        if promote.any():
            old_c = c[promote].copy()
        c[update] ^= b[update]
        if promote.any():
            lengths[promote] = n + 1 - lengths[promote]
            b[promote] = old_c
    return lengths


def linear_complexity(data: BitsLike, block_size: int = 500) -> TestResult:
    """Distribution of per-block linear complexity around its mean."""
    bits = as_bits(data)
    if not 500 <= block_size <= 5000:
        raise ValueError(f"block_size must be in [500, 5000], got {block_size}")
    require_length(bits, block_size, "linear_complexity")
    n_blocks = bits.size // block_size
    blocks = bits[: n_blocks * block_size].reshape(n_blocks, block_size)
    lengths = berlekamp_massey_blocks(blocks).astype(np.float64)

    m = float(block_size)
    mu = (
        m / 2.0
        + (9.0 + (-1.0) ** (block_size + 1)) / 36.0
        - (m / 3.0 + 2.0 / 9.0) / 2.0**m
    )
    t = (-1.0) ** block_size * (lengths - mu) + 2.0 / 9.0

    counts = np.zeros(len(_PI), dtype=np.float64)
    counts[0] = (t <= _EDGES[0]).sum()
    for i in range(1, len(_EDGES)):
        counts[i] = ((t > _EDGES[i - 1]) & (t <= _EDGES[i])).sum()
    counts[-1] = (t > _EDGES[-1]).sum()

    expected = n_blocks * np.asarray(_PI)
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    k = len(_PI) - 1
    p = float(gammaincc(k / 2.0, chi2 / 2.0))
    return TestResult(
        "linear_complexity",
        p,
        statistics={"chi2": chi2, "n_blocks": float(n_blocks), "mu": mu},
    )
