"""Result records for NIST tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Significance level the paper uses (recommended by SP 800-22).
DEFAULT_ALPHA = 1e-4


@dataclass(frozen=True)
class TestResult:
    """Outcome of one NIST test on one bitstream.

    ``p_value`` is the headline P-value (for multi-P tests such as
    random excursions it is the *minimum*, the conservative choice for
    a PASS decision); ``p_values`` carries all of them.
    """

    name: str
    p_value: float
    p_values: Tuple[float, ...] = ()
    statistics: Dict[str, float] = field(default_factory=dict)
    alpha: float = DEFAULT_ALPHA
    family_wise: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "p_values",
            self.p_values if self.p_values else (self.p_value,),
        )
        for p in self.p_values:
            if not 0.0 <= p <= 1.0 + 1e-12:
                raise ValueError(f"{self.name}: p-value {p} outside [0, 1]")

    @property
    def effective_alpha(self) -> float:
        """Per-sub-test threshold.

        With ``family_wise`` set (used by the 148-template
        non-overlapping test), the threshold is Bonferroni-corrected so
        the *family-wise* false-positive rate is ``alpha`` — matching
        how the reference suite treats each template as its own test
        rather than failing a stream on the minimum of 148 draws.
        """
        if self.family_wise and len(self.p_values) > 1:
            return self.alpha / len(self.p_values)
        return self.alpha

    @property
    def passed(self) -> bool:
        """True when every P-value clears the (effective) level."""
        threshold = self.effective_alpha
        return all(p >= threshold for p in self.p_values)

    @property
    def status(self) -> str:
        """"PASS" or "FAIL", as printed in Table 1."""
        return "PASS" if self.passed else "FAIL"
