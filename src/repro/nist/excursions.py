"""Random excursions (SP 800-22 §2.14) and variant (§2.15) tests."""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np
from scipy.special import erfc, gammaincc

from repro.errors import InsufficientDataError
from repro.nist.bits import BitsLike, as_bits, require_length, to_pm1
from repro.nist.result import TestResult

#: States examined by the random excursions test.
_STATES = (-4, -3, -2, -1, 1, 2, 3, 4)

#: States examined by the variant test.
_VARIANT_STATES = tuple(x for x in range(-9, 10) if x != 0)

#: Maximum visit-count category (0, 1, 2, 3, 4, ≥5).
_MAX_VISITS = 5


def _random_walk(bits: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    """Walk S' (zero-padded) and its cycle boundaries.

    Returns ``(walk, zero_positions, J)`` where J is the cycle count.
    """
    partial = np.cumsum(to_pm1(bits)).astype(np.int64)
    walk = np.concatenate([[0], partial, [0]])
    zeros = np.flatnonzero(walk == 0)
    j_cycles = zeros.size - 1
    return walk, zeros, j_cycles


def _require_cycles(j_cycles: int, n: int, test_name: str) -> None:
    minimum = max(500, int(0.005 * math.sqrt(n)))
    if j_cycles < minimum:
        raise InsufficientDataError(
            f"{test_name} requires at least {minimum} zero-crossing cycles, "
            f"got {j_cycles} (stream too short or too biased)"
        )


def _state_pi(x: int) -> np.ndarray:
    """Visit-count category probabilities π_k(x) for one state."""
    ax = abs(x)
    base = 1.0 - 1.0 / (2.0 * ax)
    pi = np.zeros(_MAX_VISITS + 1)
    pi[0] = base
    for k in range(1, _MAX_VISITS):
        pi[k] = base ** (k - 1) / (4.0 * ax * ax)
    pi[_MAX_VISITS] = base ** (_MAX_VISITS - 1) / (2.0 * ax)
    return pi


def random_excursion(data: BitsLike) -> TestResult:
    """Visits to states ±1..±4 per zero-crossing cycle of the walk."""
    bits = as_bits(data)
    require_length(bits, 10_000, "random_excursion")
    walk, zeros, j_cycles = _random_walk(bits)
    _require_cycles(j_cycles, bits.size, "random_excursion")

    # Per-cycle visit counts per state.
    cycle_index = np.searchsorted(zeros, np.arange(walk.size), side="right") - 1
    p_values: List[float] = []
    for x in _STATES:
        at_state = walk == x
        visits_per_cycle = np.bincount(
            cycle_index[at_state], minlength=j_cycles
        )[:j_cycles]
        categories = np.minimum(visits_per_cycle, _MAX_VISITS)
        nu = np.bincount(categories, minlength=_MAX_VISITS + 1).astype(np.float64)
        expected = j_cycles * _state_pi(x)
        chi2 = float(((nu - expected) ** 2 / expected).sum())
        p_values.append(float(gammaincc(_MAX_VISITS / 2.0, chi2 / 2.0)))

    p_arr = np.asarray(p_values)
    return TestResult(
        "random_excursion",
        float(p_arr.min()),
        p_values=tuple(p_values),
        statistics={"J": float(j_cycles), "mean_p": float(p_arr.mean())},
    )


def random_excursion_variant(data: BitsLike) -> TestResult:
    """Total visits to states ±1..±9 across the whole walk."""
    bits = as_bits(data)
    require_length(bits, 10_000, "random_excursion_variant")
    walk, _, j_cycles = _random_walk(bits)
    _require_cycles(j_cycles, bits.size, "random_excursion_variant")

    p_values: List[float] = []
    for x in _VARIANT_STATES:
        xi = float((walk == x).sum())
        denom = math.sqrt(2.0 * j_cycles * (4.0 * abs(x) - 2.0))
        p_values.append(float(erfc(abs(xi - j_cycles) / denom)))

    p_arr = np.asarray(p_values)
    return TestResult(
        "random_excursion_variant",
        float(p_arr.min()),
        p_values=tuple(p_values),
        statistics={"J": float(j_cycles), "mean_p": float(p_arr.mean())},
    )
