"""NIST SP 800-22 statistical test suite for randomness.

The paper validates D-RaNGe's output with "the standard NIST statistical
test suite" [122] (Table 1).  The suite's reference implementation is a
C program; this package is a from-scratch NumPy implementation of all
15 tests following NIST SP 800-22 rev. 1a, exposing one function per
test plus :func:`repro.nist.suite.run_suite` which reproduces Table 1's
rows.

Every test returns a :class:`~repro.nist.result.TestResult` carrying the
P-value(s), the PASS/FAIL decision at a significance level, and the
intermediate statistics, and declares its minimum stream length so the
suite can mark short-stream runs as not applicable instead of reporting
misleading P-values.
"""

from repro.nist.result import TestResult
from repro.nist.suite import ALL_TESTS, SuiteReport, run_suite

__all__ = ["ALL_TESTS", "SuiteReport", "TestResult", "run_suite"]
