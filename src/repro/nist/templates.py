"""Template matching tests (SP 800-22 §2.7 and §2.8)."""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import gammaincc

from repro.nist.bits import BitsLike, as_bits, require_length
from repro.nist.result import TestResult

#: Default template length (the SP 800-22 recommendation).
DEFAULT_M = 9

#: Probabilities of 0..5+ overlapping all-ones-template matches per
#: 1032-bit block (SP 800-22 §2.8.4, for m=9, M=1032).
_OVERLAPPING_PI = (0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865)


def _is_aperiodic(bits: Tuple[int, ...]) -> bool:
    """True when no proper shift of the template matches itself."""
    m = len(bits)
    for shift in range(1, m):
        if bits[shift:] == bits[: m - shift]:
            return False
    return True


@lru_cache(maxsize=None)
def aperiodic_templates(m: int) -> Tuple[Tuple[int, ...], ...]:
    """All aperiodic m-bit templates, in ascending numeric order.

    For m=9 this yields the 148 templates of the reference suite.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    out: List[Tuple[int, ...]] = []
    for value in range(1 << m):
        bits = tuple((value >> (m - 1 - k)) & 1 for k in range(m))
        if _is_aperiodic(bits):
            out.append(bits)
    return tuple(out)


def _match_positions(bits: np.ndarray, template: Sequence[int]) -> np.ndarray:
    """Boolean array: does a template match start at each position?"""
    m = len(template)
    n_windows = bits.size - m + 1
    if n_windows <= 0:
        return np.zeros(0, dtype=bool)
    match = np.ones(n_windows, dtype=bool)
    for k, bit in enumerate(template):
        match &= bits[k : k + n_windows] == bit
    return match


def _greedy_count(match: np.ndarray, m: int) -> int:
    """Non-overlapping occurrence count from an overlapping match mask."""
    positions = np.flatnonzero(match)
    count = 0
    next_free = -1
    for pos in positions:
        if pos >= next_free:
            count += 1
            next_free = pos + m
    return count


def non_overlapping_template_matching(
    data: BitsLike,
    m: int = DEFAULT_M,
    n_blocks: int = 8,
    templates: Optional[Sequence[Sequence[int]]] = None,
) -> TestResult:
    """SP 800-22 §2.7 — too many/few occurrences of aperiodic templates.

    One P-value is computed per template; the headline value is the
    minimum (all templates must pass).  ``templates`` defaults to every
    aperiodic template of length ``m``.
    """
    bits = as_bits(data)
    require_length(bits, n_blocks * 128, "non_overlapping_template_matching")
    block_size = bits.size // n_blocks
    if block_size <= m:
        raise ValueError(
            f"blocks of {block_size} bits cannot hold {m}-bit templates"
        )
    if templates is None:
        templates = aperiodic_templates(m)

    mean = (block_size - m + 1) / 2.0**m
    var = block_size * (1.0 / 2.0**m - (2.0 * m - 1.0) / 2.0 ** (2 * m))
    blocks = [
        bits[j * block_size : (j + 1) * block_size] for j in range(n_blocks)
    ]

    p_values = []
    for template in templates:
        counts = np.array(
            [_greedy_count(_match_positions(block, template), len(template)) for block in blocks],
            dtype=np.float64,
        )
        chi2 = float(((counts - mean) ** 2 / var).sum())
        p_values.append(float(gammaincc(n_blocks / 2.0, chi2 / 2.0)))

    p_arr = np.asarray(p_values)
    return TestResult(
        "non_overlapping_template_matching",
        float(p_arr.min()),
        p_values=tuple(p_values),
        statistics={
            "templates": float(len(p_values)),
            "mean_p": float(p_arr.mean()),
            "block_size": float(block_size),
        },
        family_wise=True,
    )


def overlapping_template_matching(
    data: BitsLike, m: int = DEFAULT_M, block_size: int = 1032
) -> TestResult:
    """SP 800-22 §2.8 — occurrences of the all-ones template, overlapping."""
    bits = as_bits(data)
    require_length(bits, block_size, "overlapping_template_matching")
    n_blocks = bits.size // block_size
    template = [1] * m

    counts = np.zeros(len(_OVERLAPPING_PI), dtype=np.float64)
    for j in range(n_blocks):
        block = bits[j * block_size : (j + 1) * block_size]
        occurrences = int(_match_positions(block, template).sum())
        counts[min(occurrences, len(_OVERLAPPING_PI) - 1)] += 1

    expected = n_blocks * np.asarray(_OVERLAPPING_PI)
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    k = len(_OVERLAPPING_PI) - 1
    p = float(gammaincc(k / 2.0, chi2 / 2.0))
    return TestResult(
        "overlapping_template_matching",
        p,
        statistics={"chi2": chi2, "n_blocks": float(n_blocks)},
    )
