"""Binary matrix rank test (SP 800-22 §2.5)."""

from __future__ import annotations

import math

import numpy as np

from repro.nist.bits import BitsLike, as_bits, require_length
from repro.nist.gf2 import pack_rows, rank_packed
from repro.nist.result import TestResult

#: Matrix dimensions used by the test.
M_ROWS = 32
Q_COLS = 32

#: Asymptotic probabilities of rank 32 / 31 / ≤30 for random 32×32
#: GF(2) matrices (SP 800-22 §2.5.4).
P_FULL = 0.2888
P_MINUS1 = 0.5776
P_REST = 0.1336


def binary_matrix_rank(data: BitsLike) -> TestResult:
    """Rank distribution of disjoint 32×32 matrices cut from the stream."""
    bits = as_bits(data)
    bits_per_matrix = M_ROWS * Q_COLS
    require_length(bits, 38 * bits_per_matrix, "binary_matrix_rank")
    n_matrices = bits.size // bits_per_matrix
    matrices = bits[: n_matrices * bits_per_matrix].reshape(
        n_matrices, M_ROWS, Q_COLS
    )

    full = 0
    minus1 = 0
    for i in range(n_matrices):
        rank = rank_packed(pack_rows(matrices[i]), Q_COLS)
        if rank == M_ROWS:
            full += 1
        elif rank == M_ROWS - 1:
            minus1 += 1
    rest = n_matrices - full - minus1

    chi2 = (
        (full - P_FULL * n_matrices) ** 2 / (P_FULL * n_matrices)
        + (minus1 - P_MINUS1 * n_matrices) ** 2 / (P_MINUS1 * n_matrices)
        + (rest - P_REST * n_matrices) ** 2 / (P_REST * n_matrices)
    )
    p = float(math.exp(-chi2 / 2.0))
    return TestResult(
        "binary_matrix_rank",
        p,
        statistics={
            "chi2": float(chi2),
            "n_matrices": float(n_matrices),
            "full_rank": float(full),
            "rank_minus1": float(minus1),
        },
    )
