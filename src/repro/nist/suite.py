"""The full 15-test NIST suite runner (reproduces Table 1's rows)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError
from repro.nist.bits import BitsLike, as_bits
from repro.obs import runtime as obs
from repro.parallel.pool import WorkerPool, resolve_workers
from repro.nist.cusum import cumulative_sums
from repro.nist.dft import dft
from repro.nist.excursions import random_excursion, random_excursion_variant
from repro.nist.frequency import frequency_within_block, monobit
from repro.nist.linear_complexity import linear_complexity
from repro.nist.matrix_rank import binary_matrix_rank
from repro.nist.result import DEFAULT_ALPHA, TestResult
from repro.nist.runs import longest_run_ones_in_a_block, runs
from repro.nist.serial import approximate_entropy, serial
from repro.nist.templates import (
    non_overlapping_template_matching,
    overlapping_template_matching,
)
from repro.nist.universal import maurers_universal

#: The 15 tests in Table 1's order.
ALL_TESTS: Tuple[Tuple[str, Callable[[BitsLike], TestResult]], ...] = (
    ("monobit", monobit),
    ("frequency_within_block", frequency_within_block),
    ("runs", runs),
    ("longest_run_ones_in_a_block", longest_run_ones_in_a_block),
    ("binary_matrix_rank", binary_matrix_rank),
    ("dft", dft),
    ("non_overlapping_template_matching", non_overlapping_template_matching),
    ("overlapping_template_matching", overlapping_template_matching),
    ("maurers_universal", maurers_universal),
    ("linear_complexity", linear_complexity),
    ("serial", serial),
    ("approximate_entropy", approximate_entropy),
    ("cumulative_sums", cumulative_sums),
    ("random_excursion", random_excursion),
    ("random_excursion_variant", random_excursion_variant),
)


@dataclass(frozen=True)
class SuiteReport:
    """Results of one suite run over one bitstream."""

    results: Tuple[TestResult, ...]
    skipped: Tuple[Tuple[str, str], ...]
    n_bits: int

    @property
    def all_passed(self) -> bool:
        """True when every applicable test passed."""
        return all(result.passed for result in self.results)

    def result(self, name: str) -> TestResult:
        """Look up one test's result by name."""
        for candidate in self.results:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no result for test {name!r}")

    def to_table(self) -> str:
        """Render the report in the shape of the paper's Table 1."""
        width = max(len(r.name) for r in self.results) if self.results else 20
        lines = [f"{'NIST Test Name':<{width}}  P-value  Status"]
        for result in self.results:
            p = result.p_value
            p_text = ">0.999" if p > 0.999 else f"{p:.3f}"
            lines.append(f"{result.name:<{width}}  {p_text:>7}  {result.status}")
        for name, reason in self.skipped:
            lines.append(f"{name:<{width}}  {'--':>7}  N/A ({reason})")
        return "\n".join(lines)


def run_suite(
    data: BitsLike,
    alpha: float = DEFAULT_ALPHA,
    tests: Optional[Sequence[str]] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    test_timeout_s: Optional[float] = None,
) -> SuiteReport:
    """Run the (selected) NIST tests over one bitstream.

    Tests whose minimum stream-length requirements are not met are
    reported as skipped rather than failed, matching the reference
    suite's "not applicable" behavior.

    ``parallel``/``max_workers`` run the tests concurrently on thread
    workers — every test is a pure read-only function of the stream, so
    results are identical to the serial run and are assembled in
    canonical test order regardless of completion order.
    ``test_timeout_s`` bounds each test; a test that exceeds it is
    reported as skipped (``"timed out"``).  If no worker pool can be
    created the runner silently degrades to the serial loop.
    ``parallel=None`` enables the concurrent path exactly when
    ``max_workers`` or ``test_timeout_s`` is given.
    """
    bits = as_bits(data)
    selected = ALL_TESTS
    if tests is not None:
        wanted = set(tests)
        unknown = wanted - {name for name, _ in ALL_TESTS}
        if unknown:
            raise ValueError(f"unknown test name(s): {sorted(unknown)}")
        selected = tuple(t for t in ALL_TESTS if t[0] in wanted)
    if parallel is None:
        parallel = max_workers is not None or test_timeout_s is not None

    results: List[TestResult] = []
    skipped: List[Tuple[str, str]] = []
    for name, outcome in _evaluate_tests(
        bits, selected, parallel, max_workers, test_timeout_s
    ):
        if isinstance(outcome, InsufficientDataError):
            skipped.append((name, str(outcome)))
            continue
        if outcome is None:
            skipped.append(
                (name, f"timed out after {test_timeout_s:g}s")
            )
            continue
        # Rebuild unconditionally with the requested alpha: a float
        # inequality guard here saves nothing and trips on rounding.
        results.append(
            TestResult(
                outcome.name,
                outcome.p_value,
                p_values=outcome.p_values,
                statistics=outcome.statistics,
                alpha=alpha,
                family_wise=outcome.family_wise,
            )
        )
    if obs.enabled():
        for result in results:
            obs.counter_add(
                "drange_nist_tests_total",
                result="passed" if result.passed else "failed",
            )
        if skipped:
            obs.counter_add(
                "drange_nist_tests_total", len(skipped), result="skipped"
            )
    return SuiteReport(
        results=tuple(results), skipped=tuple(skipped), n_bits=bits.size
    )


def _evaluate_tests(
    bits: np.ndarray,
    selected: Sequence[Tuple[str, Callable[[BitsLike], TestResult]]],
    parallel: bool,
    max_workers: Optional[int],
    test_timeout_s: Optional[float],
) -> List[Tuple[str, object]]:
    """Evaluate tests, serially or on a thread pool, in canonical order.

    Each entry of the returned list is ``(name, outcome)`` where the
    outcome is a :class:`TestResult`, an :class:`InsufficientDataError`
    (not applicable), or ``None`` (timed out).  Any other exception
    propagates, exactly as the serial loop would raise it.
    """
    evaluated: List[Tuple[str, object]] = []
    if parallel and len(selected) > 1:
        workers = resolve_workers(max_workers)
        if test_timeout_s is not None:
            # Timeout enforcement needs a live executor; the serial
            # fallback a 1-worker pool resolves to cannot interrupt a
            # running test.
            workers = max(workers, 2)
        pool = WorkerPool(max_workers=workers, backend="thread")

        def run_one(task: Tuple[str, Callable[[BitsLike], TestResult]]):
            task_name, test = task
            with obs.span(f"nist.{task_name}", n_bits=bits.size):
                return test(bits)

        outcomes = pool.execute(
            run_one, list(selected), timeout_s=test_timeout_s
        )
        for (name, _), outcome in zip(selected, outcomes):
            if outcome.ok:
                evaluated.append((name, outcome.value))
            elif outcome.timed_out:
                evaluated.append((name, None))
            elif isinstance(outcome.error, InsufficientDataError):
                evaluated.append((name, outcome.error))
            else:
                assert outcome.error is not None
                raise outcome.error
        return evaluated
    for name, test in selected:
        try:
            with obs.span(f"nist.{name}", n_bits=bits.size):
                evaluated.append((name, test(bits)))
        except InsufficientDataError as exc:
            evaluated.append((name, exc))
    return evaluated


def p_value_uniformity(p_values: Sequence[float], bins: int = 10) -> float:
    """NIST's second pass/fail criterion: uniformity of P-values.

    The reference suite's final analysis histogram-bins each test's
    P-values over the tested sequences into ten bins and chi-square
    tests the histogram against uniformity, reporting
    ``igamc(9/2, chi2/2)``; the distribution is considered uniform when
    that value is at least 1e-4.
    """
    from scipy.special import gammaincc

    values = np.asarray(list(p_values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one p-value")
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    counts, _ = np.histogram(values, bins=bins, range=(0.0, 1.0))
    expected = values.size / bins
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    return float(gammaincc((bins - 1) / 2.0, chi2 / 2.0))


def acceptable_proportion_range(alpha: float, k_sequences: int) -> Tuple[float, float]:
    """NIST's acceptable range for the proportion of passing sequences.

    Section 7.1 of the paper: ``(1 − α) ± 3·sqrt(α(1−α)/k)``.
    """
    if k_sequences <= 0:
        raise ValueError(f"k_sequences must be positive, got {k_sequences}")
    center = 1.0 - alpha
    spread = 3.0 * np.sqrt(alpha * (1.0 - alpha) / k_sequences)
    return max(center - spread, 0.0), min(center + spread, 1.0)
