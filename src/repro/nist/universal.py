"""Maurer's "universal statistical" test (SP 800-22 §2.9)."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc

from repro.nist.bits import BitsLike, as_bits, pattern_codes, require_length
from repro.nist.result import TestResult

#: (L, expected value, variance) per SP 800-22 table 2-9 (L = 6..16).
_TABLE = {
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
    9: (8.1764248, 3.311),
    10: (9.1723243, 3.356),
    11: (10.170032, 3.384),
    12: (11.168765, 3.401),
    13: (12.168070, 3.410),
    14: (13.167693, 3.416),
    15: (14.167488, 3.419),
    16: (15.167379, 3.421),
}

#: Minimum stream length for each block size L (n ≥ (Q + K)·L with
#: Q = 10·2^L and K ≥ 1000·2^L, per the SP 800-22 guidance).
_MIN_N = {L: (10 + 1000) * (1 << L) * L for L in _TABLE}


def _choose_l(n: int) -> int:
    """Largest block size whose minimum stream length fits ``n``."""
    usable = [L for L, minimum in _MIN_N.items() if n >= minimum]
    if not usable:
        return 0
    return max(usable)


def maurers_universal(data: BitsLike, block_size: int = None) -> TestResult:
    """Compressibility statistic over L-bit blocks."""
    bits = as_bits(data)
    require_length(bits, _MIN_N[6], "maurers_universal")
    L = block_size if block_size is not None else _choose_l(bits.size)
    if L not in _TABLE:
        raise ValueError(f"block_size must be in {sorted(_TABLE)}, got {L}")

    q_blocks = 10 * (1 << L)
    total_blocks = bits.size // L
    k_blocks = total_blocks - q_blocks
    if k_blocks <= 0:
        raise ValueError(
            f"stream too short for L={L}: needs more than {q_blocks} blocks"
        )

    codes = pattern_codes(bits[: total_blocks * L], L, wrap=False)[::L]
    last_seen = np.zeros(1 << L, dtype=np.int64)
    # Initialization segment: record last occurrence of each pattern.
    for i in range(q_blocks):
        last_seen[codes[i]] = i + 1

    distances = np.zeros(k_blocks, dtype=np.float64)
    for i in range(q_blocks, total_blocks):
        code = codes[i]
        distances[i - q_blocks] = (i + 1) - last_seen[code]
        last_seen[code] = i + 1

    fn = float(np.log2(distances).sum() / k_blocks)
    expected, variance = _TABLE[L]
    # Finite-sample correction factor c (SP 800-22 §2.9.4).
    c = 0.7 - 0.8 / L + (4.0 + 32.0 / L) * k_blocks ** (-3.0 / L) / 15.0
    sigma = c * math.sqrt(variance / k_blocks)
    p = float(erfc(abs(fn - expected) / (math.sqrt(2.0) * sigma)))
    return TestResult(
        "maurers_universal",
        p,
        statistics={"fn": fn, "expected": expected, "L": float(L), "K": float(k_blocks)},
    )
