"""Frequency tests: monobit (2.1) and frequency-within-block (2.2)."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc, gammaincc

from repro.nist.bits import BitsLike, as_bits, require_length, to_pm1
from repro.nist.result import TestResult


def monobit(data: BitsLike) -> TestResult:
    """SP 800-22 §2.1 — proportion of ones vs zeros over the stream."""
    bits = as_bits(data)
    require_length(bits, 100, "monobit")
    s_n = to_pm1(bits).sum()
    s_obs = abs(s_n) / math.sqrt(bits.size)
    p = float(erfc(s_obs / math.sqrt(2.0)))
    return TestResult(
        "monobit",
        p,
        statistics={"s_n": float(s_n), "s_obs": float(s_obs), "n": float(bits.size)},
    )


def frequency_within_block(data: BitsLike, block_size: int = 128) -> TestResult:
    """SP 800-22 §2.2 — proportion of ones within M-bit blocks."""
    bits = as_bits(data)
    require_length(bits, 100, "frequency_within_block")
    if block_size < 2:
        # NIST recommends M >= 20, but its own worked example uses M=3;
        # only structurally impossible sizes are rejected.
        raise ValueError(f"block_size must be >= 2, got {block_size}")
    n_blocks = bits.size // block_size
    if n_blocks < 1:
        raise ValueError(
            f"stream of {bits.size} bits has no {block_size}-bit blocks"
        )
    trimmed = bits[: n_blocks * block_size].reshape(n_blocks, block_size)
    proportions = trimmed.mean(axis=1)
    chi2 = 4.0 * block_size * float(((proportions - 0.5) ** 2).sum())
    p = float(gammaincc(n_blocks / 2.0, chi2 / 2.0))
    return TestResult(
        "frequency_within_block",
        p,
        statistics={
            "chi2": chi2,
            "n_blocks": float(n_blocks),
            "block_size": float(block_size),
        },
    )
