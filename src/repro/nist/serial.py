"""Serial test (SP 800-22 §2.11) and approximate entropy (§2.12)."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gammaincc

from repro.nist.bits import BitsLike, as_bits, pattern_counts, require_length
from repro.nist.result import TestResult


def _psi_squared(bits: np.ndarray, m: int) -> float:
    """ψ²_m statistic over circularly-extended m-bit patterns."""
    if m <= 0:
        return 0.0
    counts = pattern_counts(bits, m, wrap=True)
    n = bits.size
    return float((counts**2).sum() * (2.0**m) / n - n)


def serial(data: BitsLike, m: int = 16) -> TestResult:
    """Frequency uniformity of all overlapping m-bit patterns."""
    bits = as_bits(data)
    require_length(bits, 1 << (m + 2), "serial")
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    psi_m = _psi_squared(bits, m)
    psi_m1 = _psi_squared(bits, m - 1)
    psi_m2 = _psi_squared(bits, m - 2)
    delta1 = psi_m - psi_m1
    delta2 = psi_m - 2.0 * psi_m1 + psi_m2
    p1 = float(gammaincc(2.0 ** (m - 2), delta1 / 2.0))
    p2 = float(gammaincc(2.0 ** (m - 3), delta2 / 2.0))
    return TestResult(
        "serial",
        min(p1, p2),
        p_values=(p1, p2),
        statistics={"delta1": delta1, "delta2": delta2, "m": float(m)},
    )


def approximate_entropy(data: BitsLike, m: int = 10) -> TestResult:
    """Compares frequencies of m- and (m+1)-bit patterns (ApEn)."""
    bits = as_bits(data)
    require_length(bits, 1 << (m + 5), "approximate_entropy")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    n = bits.size

    def phi(block: int) -> float:
        counts = pattern_counts(bits, block, wrap=True)
        probs = counts[counts > 0] / n
        return float((probs * np.log(probs)).sum())

    ap_en = phi(m) - phi(m + 1)
    chi2 = 2.0 * n * (math.log(2.0) - ap_en)
    p = float(gammaincc(2.0 ** (m - 1), chi2 / 2.0))
    return TestResult(
        "approximate_entropy",
        p,
        statistics={"ap_en": ap_en, "chi2": chi2, "m": float(m)},
    )
