"""Linear algebra over GF(2) for the binary-matrix-rank test.

Matrices are held bit-packed: one Python/NumPy ``uint64`` per row holds
up to 64 columns, so elimination steps are single XOR operations.
"""

from __future__ import annotations

import numpy as np


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack an (r, c) 0/1 matrix into one uint64 per row (c ≤ 64)."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    rows, cols = matrix.shape
    if cols > 64:
        raise ValueError(f"at most 64 columns supported, got {cols}")
    weights = (np.uint64(1) << np.arange(cols, dtype=np.uint64))[::-1]
    return (matrix * weights).sum(axis=1, dtype=np.uint64)


def rank_packed(rows: np.ndarray, cols: int) -> int:
    """Rank of a bit-packed GF(2) matrix via Gaussian elimination."""
    work = list(int(r) for r in rows)
    rank = 0
    for col in range(cols - 1, -1, -1):
        pivot_bit = 1 << col
        pivot_index = None
        for i in range(rank, len(work)):
            if work[i] & pivot_bit:
                pivot_index = i
                break
        if pivot_index is None:
            continue
        work[rank], work[pivot_index] = work[pivot_index], work[rank]
        pivot_row = work[rank]
        for i in range(len(work)):
            if i != rank and (work[i] & pivot_bit):
                work[i] ^= pivot_row
        rank += 1
        if rank == len(work):
            break
    return rank


def rank_gf2(matrix: np.ndarray) -> int:
    """Rank of a dense 0/1 matrix over GF(2)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    return rank_packed(pack_rows(matrix), matrix.shape[1])
