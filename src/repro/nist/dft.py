"""Discrete Fourier transform (spectral) test (SP 800-22 §2.6)."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc

from repro.nist.bits import BitsLike, as_bits, require_length, to_pm1
from repro.nist.result import TestResult


def dft(data: BitsLike) -> TestResult:
    """Detects periodic features via the peak heights of the DFT."""
    bits = as_bits(data)
    require_length(bits, 1000, "dft")
    n = bits.size
    x = to_pm1(bits)
    spectrum = np.abs(np.fft.rfft(x))[: n // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * n)
    n0 = 0.95 * n / 2.0
    n1 = float((spectrum < threshold).sum())
    d = (n1 - n0) / math.sqrt(n * 0.95 * 0.05 / 4.0)
    p = float(erfc(abs(d) / math.sqrt(2.0)))
    return TestResult(
        "dft",
        p,
        statistics={"n1": n1, "n0": n0, "d": float(d), "threshold": threshold},
    )
