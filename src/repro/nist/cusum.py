"""Cumulative sums (cusum) test (SP 800-22 §2.13)."""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.nist.bits import BitsLike, as_bits, require_length, to_pm1
from repro.nist.result import TestResult


def _cusum_p_value(z: float, n: int) -> float:
    """P-value of a maximum partial-sum excursion ``z`` over ``n`` steps."""
    sqrt_n = math.sqrt(n)
    total = 1.0
    # Summation bounds follow the NIST reference implementation, which
    # truncates toward zero (C integer conversion), not floor.
    k_low = int((-n / z + 1.0) / 4.0)
    k_high = int((n / z - 1.0) / 4.0)
    for k in range(k_low, k_high + 1):
        total -= norm.cdf((4.0 * k + 1.0) * z / sqrt_n) - norm.cdf(
            (4.0 * k - 1.0) * z / sqrt_n
        )
    k_low2 = int((-n / z - 3.0) / 4.0)
    for k in range(k_low2, k_high + 1):
        total += norm.cdf((4.0 * k + 3.0) * z / sqrt_n) - norm.cdf(
            (4.0 * k + 1.0) * z / sqrt_n
        )
    return float(min(max(total, 0.0), 1.0))


def cumulative_sums(data: BitsLike) -> TestResult:
    """Maximum excursion of the random walk, forward and backward.

    Two P-values (mode 0: forward, mode 1: backward); headline is the
    minimum, and both must clear the significance level.
    """
    bits = as_bits(data)
    require_length(bits, 100, "cumulative_sums")
    x = to_pm1(bits)
    n = bits.size

    forward = np.abs(np.cumsum(x)).max()
    backward = np.abs(np.cumsum(x[::-1])).max()

    p_forward = _cusum_p_value(float(forward), n)
    p_backward = _cusum_p_value(float(backward), n)
    return TestResult(
        "cumulative_sums",
        min(p_forward, p_backward),
        p_values=(p_forward, p_backward),
        statistics={"z_forward": float(forward), "z_backward": float(backward)},
    )
