"""Runs tests: runs (2.3) and longest-run-of-ones-in-a-block (2.4)."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc, gammaincc

from repro.nist.bits import BitsLike, as_bits, require_length
from repro.nist.result import TestResult

#: (min n, block size M, category lower edges, category probabilities)
#: per SP 800-22 §2.4.4; the last edge is open-ended.
_LONGEST_RUN_TABLES = (
    (
        750_000,
        10_000,
        (10, 11, 12, 13, 14, 15, 16),
        (0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727),
    ),
    (
        6_272,
        128,
        (4, 5, 6, 7, 8, 9),
        (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124),
    ),
    (
        128,
        8,
        (1, 2, 3, 4),
        (0.2148, 0.3672, 0.2305, 0.1875),
    ),
)


def runs(data: BitsLike) -> TestResult:
    """SP 800-22 §2.3 — total number of runs in the stream."""
    bits = as_bits(data)
    require_length(bits, 100, "runs")
    n = bits.size
    pi = float(bits.mean())
    tau = 2.0 / math.sqrt(n)
    if abs(pi - 0.5) >= tau:
        # The prerequisite monobit condition fails; SP 800-22 sets p=0.
        return TestResult("runs", 0.0, statistics={"pi": pi, "v_obs": 0.0})
    v_obs = 1.0 + float((bits[1:] != bits[:-1]).sum())
    num = abs(v_obs - 2.0 * n * pi * (1.0 - pi))
    den = 2.0 * math.sqrt(2.0 * n) * pi * (1.0 - pi)
    p = float(erfc(num / den))
    return TestResult("runs", p, statistics={"pi": pi, "v_obs": v_obs})


def _longest_run_per_block(blocks: np.ndarray) -> np.ndarray:
    """Longest run of ones in each row of a 2-D 0/1 array."""
    n_blocks, m = blocks.shape
    padded = np.zeros((n_blocks, m + 2), dtype=np.int8)
    padded[:, 1:-1] = blocks
    diffs = np.diff(padded, axis=1)
    longest = np.zeros(n_blocks, dtype=np.int64)
    for i in range(n_blocks):
        starts = np.where(diffs[i] == 1)[0]
        ends = np.where(diffs[i] == -1)[0]
        if starts.size:
            longest[i] = int((ends - starts).max())
    return longest


def longest_run_ones_in_a_block(data: BitsLike) -> TestResult:
    """SP 800-22 §2.4 — longest run of ones within M-bit blocks."""
    bits = as_bits(data)
    require_length(bits, 128, "longest_run_ones_in_a_block")
    for min_n, block_size, edges, probabilities in _LONGEST_RUN_TABLES:
        if bits.size >= min_n:
            break
    n_blocks = bits.size // block_size
    blocks = bits[: n_blocks * block_size].reshape(n_blocks, block_size)
    longest = _longest_run_per_block(blocks)

    k = len(edges) - 1
    counts = np.zeros(len(edges), dtype=np.float64)
    counts[0] = (longest <= edges[0]).sum()
    for i in range(1, k):
        counts[i] = (longest == edges[i]).sum()
    counts[k] = (longest >= edges[k]).sum()

    expected = n_blocks * np.asarray(probabilities)
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    p = float(gammaincc(k / 2.0, chi2 / 2.0))
    return TestResult(
        "longest_run_ones_in_a_block",
        p,
        statistics={"chi2": chi2, "block_size": float(block_size), "n_blocks": float(n_blocks)},
    )
