"""Typed core for :mod:`repro.lint`.

Everything the analyzer passes between layers is defined here as a
frozen dataclass or enum, so the engine, the rules and the reporters
share one vocabulary and none of them grow ad-hoc dict payloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


class Severity(enum.IntEnum):
    """How seriously a finding should be taken.

    The integer ordering is meaningful: the engine compares against
    :attr:`LintConfig.fail_on` to decide the process exit code.
    """

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class RuleMeta:
    """Static description of one rule.

    ``include``/``exclude`` are substring patterns matched against the
    POSIX form of each file path; an empty ``include`` means the rule
    applies everywhere.  This keeps path scoping declarative — rules
    never inspect paths themselves.
    """

    code: str
    name: str
    summary: str
    severity: Severity
    rationale: str
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, posix_path: str) -> bool:
        if any(pattern in posix_path for pattern in self.exclude):
            return False
        if not self.include:
            return True
        return any(pattern in posix_path for pattern in self.include)


@dataclass(frozen=True)
class Violation:
    """One finding, anchored to ``path:line:col``."""

    code: str
    message: str
    path: str
    line: int
    col: int
    severity: Severity

    @property
    def anchor(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.name.lower(),
        }


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: noqa[...]`` comment entry.

    ``codes`` is empty for a bare ``# repro: noqa`` (suppress every rule
    on that line); otherwise it holds the specific rule codes listed.
    """

    path: str
    line: int
    codes: Tuple[str, ...]

    def matches(self, violation: Violation) -> bool:
        if violation.line != self.line:
            return False
        return not self.codes or violation.code in self.codes


@dataclass(frozen=True)
class LintConfig:
    """Engine configuration (rule selection, severities, exit policy)."""

    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    fail_on: Severity = Severity.WARNING
    check_unused_suppressions: bool = True

    def rule_enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    def severity_for(self, meta: RuleMeta) -> Severity:
        return self.severity_overrides.get(meta.code, meta.severity)


@dataclass(frozen=True)
class FileReport:
    """Per-file result: findings plus parse status."""

    path: str
    violations: Tuple[Violation, ...]
    parse_error: Optional[str] = None


@dataclass(frozen=True)
class LintResult:
    """Aggregate result over a whole run."""

    reports: Tuple[FileReport, ...]
    config: LintConfig

    @property
    def violations(self) -> Tuple[Violation, ...]:
        out = []
        for report in self.reports:
            out.extend(report.violations)
        return tuple(
            sorted(out, key=lambda v: (v.path, v.line, v.col, v.code))
        )

    @property
    def files_checked(self) -> int:
        return len(self.reports)

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def exit_code(self) -> int:
        threshold = self.config.fail_on
        if any(v.severity >= threshold for v in self.violations):
            return 1
        return 0
