"""Parsing of ``# repro: noqa[RULE,...]`` suppression comments.

Comments are found with :mod:`tokenize`, never with substring search,
so a string literal that merely *contains* the marker text is not a
suppression.  A suppression applies to violations reported on the same
physical line.  The engine tracks which suppressions actually silenced
something; stale ones are reported as :data:`UNUSED_SUPPRESSION_CODE`
findings so the codebase cannot accumulate dead waivers.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import List

from repro.lint.types import Suppression

#: Code used for the engine's own "unused suppression" finding.
UNUSED_SUPPRESSION_CODE = "NOQ001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?", re.IGNORECASE
)


def parse_suppressions(source: str, path: str) -> List[Suppression]:
    """Extract every suppression comment from ``source``.

    Tokenization errors are swallowed (the engine reports the parse
    failure separately via :func:`ast.parse`); suppressions found before
    the bad token are still honoured.
    """
    suppressions: List[Suppression] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            raw_codes = match.group("codes")
            codes = (
                tuple(
                    code.strip().upper()
                    for code in raw_codes.split(",")
                    if code.strip()
                )
                if raw_codes
                else ()
            )
            suppressions.append(
                Suppression(path=path, line=token.start[0], codes=codes)
            )
    except tokenize.TokenError:
        pass
    return suppressions
