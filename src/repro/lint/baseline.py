"""The baseline ratchet: grandfather old findings, forbid new ones.

A baseline file (``lint-baseline.json``, committed at the repo root)
records how many findings of each ``(path, code)`` pair are tolerated.
Runs with ``--baseline`` then enforce a one-way ratchet:

* **new findings fail** — any ``(path, code)`` count above its
  baselined allowance is reported and exits nonzero;
* **baselined counts shrink monotonically** — when the tree now has
  *fewer* findings than the baseline records, the stale allowance must
  be ratcheted down with ``--update-baseline`` (the run fails until it
  is), so headroom for regressions never silently accumulates.

The committed baseline for this repo is empty — the PR that introduced
the flow rules also swept the tree clean — so in practice the ratchet
is a belt-and-braces guarantee that it *stays* clean, and a migration
path if a future rule lands with unfixable findings.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.lint.types import LintResult, Violation

__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "BaselineDelta",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "counts_for",
    "reconcile_baseline",
]

#: Bump when the baseline file shape changes incompatibly.
BASELINE_VERSION = 1

_KEY_SEP = "::"


class BaselineError(ValueError):
    """The baseline file is missing, unreadable, or malformed."""


def baseline_key(violation: Violation) -> str:
    return f"{violation.path}{_KEY_SEP}{violation.code}"


def load_baseline(path: "pathlib.Path | str") -> Dict[str, int]:
    """``{path::code: allowed_count}`` from a baseline file."""
    file_path = pathlib.Path(path)
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {file_path}: {exc}")
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {file_path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "entries" not in payload:
        raise BaselineError(
            f"baseline {file_path} must be an object with an 'entries' key"
        )
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {file_path} has version {version!r}; this tool "
            f"understands version {BASELINE_VERSION}"
        )
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise BaselineError(f"baseline {file_path}: 'entries' must be a dict")
    out: Dict[str, int] = {}
    for key, count in entries.items():
        if (
            not isinstance(key, str)
            or _KEY_SEP not in key
            or not isinstance(count, int)
            or count <= 0
        ):
            raise BaselineError(
                f"baseline {file_path}: bad entry {key!r}: {count!r} "
                f"(want 'path::CODE' -> positive int)"
            )
        out[key] = count
    return out


def counts_for(result: LintResult) -> Dict[str, int]:
    """Current ``{path::code: count}`` over ``result``'s violations."""
    counts: Dict[str, int] = {}
    for violation in result.violations:
        key = baseline_key(violation)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(
    path: "pathlib.Path | str", counts: Dict[str, int]
) -> None:
    """Write ``counts`` (dropping zeros) as a baseline file."""
    payload = {
        "version": BASELINE_VERSION,
        "entries": {
            key: count
            for key, count in sorted(counts.items())
            if count > 0
        },
    }
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@dataclass
class BaselineDelta:
    """Outcome of reconciling current findings against a baseline."""

    #: Findings beyond the baselined allowance, in report order.
    new_violations: List[Violation] = field(default_factory=list)
    #: Findings covered by the baseline (suppressed from failure).
    baselined: List[Violation] = field(default_factory=list)
    #: ``{key: (baseline_count, current_count)}`` where current <
    #: baseline — the allowance must be ratcheted down.
    stale: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.new_violations and not self.stale


def reconcile_baseline(
    result: LintResult, baseline: Dict[str, int]
) -> BaselineDelta:
    """Split current findings into new-vs-baselined and find stale keys.

    Within one ``(path, code)`` group the *first* ``allowance`` findings
    (in path/line order) are treated as baselined and the rest as new;
    the split is deterministic, and which specific lines are excused is
    irrelevant to the ratchet — only counts are enforced.
    """
    delta = BaselineDelta()
    seen: Dict[str, int] = {}
    for violation in result.violations:
        key = baseline_key(violation)
        allowance = baseline.get(key, 0)
        used = seen.get(key, 0)
        if used < allowance:
            seen[key] = used + 1
            delta.baselined.append(violation)
        else:
            delta.new_violations.append(violation)
    for key, allowance in baseline.items():
        current = seen.get(key, 0)
        if current < allowance:
            delta.stale[key] = (allowance, current)
    return delta
