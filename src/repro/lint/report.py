"""Reporters: render a :class:`~repro.lint.types.LintResult`.

Text output is one ``path:line:col CODE severity message`` row per
finding (clickable anchors in most terminals/editors) plus a summary.
JSON output is a stable, versioned schema for CI and tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.rules.base import REGISTRY
from repro.lint.types import LintResult

#: Bump when the JSON shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    lines: List[str] = []
    for violation in result.violations:
        lines.append(
            f"{violation.anchor} {violation.code} "
            f"[{violation.severity.name.lower()}] {violation.message}"
        )
    counts = result.counts_by_code()
    total = sum(counts.values())
    if total:
        breakdown = ", ".join(f"{code}×{n}" for code, n in counts.items())
        lines.append("")
        lines.append(
            f"{total} violation(s) in {result.files_checked} file(s): "
            f"{breakdown}"
        )
    else:
        lines.append(
            f"ok: {result.files_checked} file(s) checked, no violations"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload: Dict[str, object] = {
        "version": JSON_SCHEMA_VERSION,
        "violations": [v.to_dict() for v in result.violations],
        "summary": {
            "files_checked": result.files_checked,
            "total": len(result.violations),
            "by_code": result.counts_by_code(),
            "exit_code": result.exit_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_listing() -> str:
    """Human-readable catalogue of every registered rule."""
    lines: List[str] = []
    for code in sorted(REGISTRY):
        meta = REGISTRY[code].meta
        scope = (
            ", ".join(meta.include) if meta.include else "all paths"
        )
        lines.append(
            f"{meta.code} ({meta.name}) [{meta.severity.name.lower()}]"
        )
        lines.append(f"  {meta.summary}")
        lines.append(f"  scope: {scope}")
        if meta.exclude:
            lines.append(f"  except: {', '.join(meta.exclude)}")
        lines.append(f"  why: {meta.rationale}")
        lines.append("")
    return "\n".join(lines).rstrip()
