"""Reporters: render a :class:`~repro.lint.types.LintResult`.

Text output is one ``path:line:col CODE severity message`` row per
finding (clickable anchors in most terminals/editors) plus a summary.
JSON output is a stable, versioned schema for CI and tooling.  SARIF
output follows the SARIF 2.1.0 standard so CI can publish findings to
code-scanning UIs with rule metadata attached.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.rules.base import REGISTRY
from repro.lint.types import LintResult, Severity

#: Bump when the JSON shape changes incompatibly.
JSON_SCHEMA_VERSION = 1

#: SARIF 2.1.0 constants.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity -> SARIF result level.
_SARIF_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

#: Engine-reported codes that have no registered rule class.
_ENGINE_RULES = {
    "PAR001": (
        "parse-error",
        "file cannot be read or parsed as Python",
    ),
    "NOQ001": (
        "unused-suppression",
        "`# repro: noqa` comment that silences nothing",
    ),
}


def render_text(result: LintResult) -> str:
    lines: List[str] = []
    for violation in result.violations:
        lines.append(
            f"{violation.anchor} {violation.code} "
            f"[{violation.severity.name.lower()}] {violation.message}"
        )
    counts = result.counts_by_code()
    total = sum(counts.values())
    if total:
        breakdown = ", ".join(f"{code}×{n}" for code, n in counts.items())
        lines.append("")
        lines.append(
            f"{total} violation(s) in {result.files_checked} file(s): "
            f"{breakdown}"
        )
    else:
        lines.append(
            f"ok: {result.files_checked} file(s) checked, no violations"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload: Dict[str, object] = {
        "version": JSON_SCHEMA_VERSION,
        "violations": [v.to_dict() for v in result.violations],
        "summary": {
            "files_checked": result.files_checked,
            "total": len(result.violations),
            "by_code": result.counts_by_code(),
            "exit_code": result.exit_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """Render ``result`` as a SARIF 2.1.0 log (one run, one tool)."""
    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for code in sorted(REGISTRY):
        meta = REGISTRY[code].meta
        rule_index[code] = len(rules)
        rules.append(
            {
                "id": meta.code,
                "name": meta.name,
                "shortDescription": {"text": meta.summary},
                "fullDescription": {"text": meta.rationale},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[meta.severity]
                },
            }
        )
    for code, (name, summary) in sorted(_ENGINE_RULES.items()):
        if code in rule_index:
            continue
        rule_index[code] = len(rules)
        rules.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": "warning"},
            }
        )

    results: List[Dict[str, object]] = []
    for violation in result.violations:
        entry: Dict[str, object] = {
            "ruleId": violation.code,
            "level": _SARIF_LEVELS[violation.severity],
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": max(violation.col + 1, 1),
                        },
                    }
                }
            ],
        }
        if violation.code in rule_index:
            entry["ruleIndex"] = rule_index[violation.code]
        results.append(entry)

    payload: Dict[str, object] = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/CMU-SAFARI/D-RaNGe"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_listing() -> str:
    """Human-readable catalogue of every registered rule."""
    lines: List[str] = []
    for code in sorted(REGISTRY):
        meta = REGISTRY[code].meta
        scope = (
            ", ".join(meta.include) if meta.include else "all paths"
        )
        lines.append(
            f"{meta.code} ({meta.name}) [{meta.severity.name.lower()}]"
        )
        lines.append(f"  {meta.summary}")
        lines.append(f"  scope: {scope}")
        if meta.exclude:
            lines.append(f"  except: {', '.join(meta.exclude)}")
        lines.append(f"  why: {meta.rationale}")
        lines.append("")
    return "\n".join(lines).rstrip()
