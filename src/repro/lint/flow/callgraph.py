"""Lightweight module-level call graph.

Maps each function/method in a module to the *local* callees it
invokes: ``self.helper(...)`` resolves to ``Class.helper`` when the
enclosing class defines it, and a bare ``helper(...)`` resolves to the
module-level ``helper`` when one exists.  Calls into other modules are
deliberately out of scope — the flow rules only propagate contracts
(like "which locks are held at entry") within one module, where the
call sites are all visible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["CallSite", "CallGraph", "local_callee"]


@dataclass(frozen=True)
class CallSite:
    """One intra-module call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int


@dataclass
class CallGraph:
    """Adjacency over qualified names (``Class.method`` or ``func``)."""

    sites: List[CallSite] = field(default_factory=list)

    def add(self, caller: str, callee: str, line: int) -> None:
        self.sites.append(CallSite(caller, callee, line))

    def callers_of(self, callee: str) -> Tuple[CallSite, ...]:
        return tuple(site for site in self.sites if site.callee == callee)

    def callees_of(self, caller: str) -> Tuple[str, ...]:
        seen: Set[str] = set()
        out: List[str] = []
        for site in self.sites:
            if site.caller == caller and site.callee not in seen:
                seen.add(site.callee)
                out.append(site.callee)
        return tuple(out)


def local_callee(
    call: ast.Call,
    enclosing_class: Optional[str],
    class_methods: Dict[str, Set[str]],
    module_functions: Set[str],
) -> Optional[str]:
    """Qualified name of the local target of ``call``, if resolvable.

    ``self.m(...)`` maps into the enclosing class; ``f(...)`` maps to a
    module-level function.  Anything else (other objects, imports,
    builtins) returns ``None``.
    """
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and enclosing_class is not None
        and func.attr in class_methods.get(enclosing_class, set())
    ):
        return f"{enclosing_class}.{func.attr}"
    if isinstance(func, ast.Name) and func.id in module_functions:
        return func.id
    return None
