"""Per-module flow summary shared by every flow-aware rule.

:func:`analyze_module` builds, once per file and cached on the
:class:`~repro.lint.rules.base.FileContext`:

* one CFG per function/method (module level and one class level deep),
* the lock-state fixpoint of each CFG,
* a module-level call graph,
* propagated *entry* lock states for private helpers: a ``_helper``
  only ever called with ``self._lock`` held is analyzed with that lock
  in its entry state, so ``_pop_locked``-style helpers (and unsuffixed
  ones like a batcher's ``_take_batch``) do not raise false alarms.

Propagation runs to an interprocedural fixpoint: entry states start
empty, each round re-runs the per-function dataflow, and a private
function's entry becomes the must-join of the lock states observed at
its call sites.  States only grow from empty toward the join, so the
iteration terminates.  Public (non-underscore) functions always keep
an empty entry state — callers outside the module are invisible, and
assuming nothing is the conservative choice for a must-analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.callgraph import CallGraph, local_callee
from repro.lint.flow.cfg import CFG, build_cfg
from repro.lint.flow.dataflow import (
    EMPTY_LOCKS,
    LockState,
    held_locks,
    join_locks,
    lock_transfer,
    run_forward,
)

__all__ = [
    "FunctionFlow",
    "ModuleFlow",
    "analyze_module",
    "normalize_lock",
]

_MAX_ROUNDS = 10


def normalize_lock(name: Optional[str]) -> Optional[str]:
    """Strip a leading ``self.`` so lock names match annotations.

    ``with self._cond:`` and a ``# guarded-by: _cond`` annotation talk
    about the same lock; normalising at the boundary keeps every rule
    comparison on bare attribute names.
    """
    if name is None:
        return None
    if name.startswith("self."):
        return name[len("self."):]
    return name


@dataclass
class Acquisition:
    """One ``with <lock>:`` entry and the locks already held there."""

    qualname: str
    lock: str
    held_before: Tuple[str, ...]
    line: int


@dataclass
class FunctionFlow:
    """Flow facts for one function: CFG + fixpoint lock states."""

    qualname: str
    func: "ast.FunctionDef | ast.AsyncFunctionDef"
    cls: Optional[str]
    cfg: CFG
    entry_state: LockState = EMPTY_LOCKS
    #: ``{nid: (state_in, state_out)}`` for reachable nodes.
    states: Dict[int, Tuple[LockState, LockState]] = field(default_factory=dict)

    def held_at(self, nid: int) -> Tuple[str, ...]:
        """Normalized lock names held *before* node ``nid`` executes."""
        pair = self.states.get(nid)
        if pair is None:
            return ()
        names = []
        for name in held_locks(pair[0]):
            normalized = normalize_lock(name)
            if normalized is not None:
                names.append(normalized)
        return tuple(names)


@dataclass
class ModuleFlow:
    """Everything the flow rules need about one module."""

    functions: Dict[str, FunctionFlow]
    classes: Dict[str, ast.ClassDef]
    call_graph: CallGraph
    acquisitions: List[Acquisition]


def _collect_functions(
    tree: ast.Module,
) -> List[Tuple[str, Optional[str], "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    out: List[Tuple[str, Optional[str], ast.AST]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node.name, None, node))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((f"{node.name}.{item.name}", node.name, item))
    return out  # type: ignore[return-value]


def _is_private(qualname: str) -> bool:
    short = qualname.rsplit(".", 1)[-1]
    return short.startswith("_") and not short.startswith("__")


def analyze_module(context) -> ModuleFlow:
    """The cached :class:`ModuleFlow` for ``context``'s module."""
    cache = getattr(context, "cache", None)
    if cache is not None and "flow" in cache:
        return cache["flow"]
    flow = _analyze(context.tree, context.resolve)
    if cache is not None:
        cache["flow"] = flow
    return flow


def _analyze(tree: ast.Module, resolve) -> ModuleFlow:
    classes = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }
    class_methods: Dict[str, Set[str]] = {
        name: {
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name, cls in classes.items()
    }
    module_functions = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }

    functions: Dict[str, FunctionFlow] = {}
    for qualname, cls_name, func in _collect_functions(tree):
        functions[qualname] = FunctionFlow(
            qualname=qualname,
            func=func,
            cls=cls_name,
            cfg=build_cfg(func, resolve),
        )

    # Interprocedural fixpoint over private-helper entry states.
    for _round in range(_MAX_ROUNDS):
        call_graph = CallGraph()
        call_site_states: Dict[str, List[LockState]] = {}
        for flow in functions.values():
            flow.states = run_forward(
                flow.cfg, flow.entry_state, lock_transfer
            )
            for node in flow.cfg.nodes:
                pair = flow.states.get(node.nid)
                if pair is None:
                    continue
                for root in flow.cfg.node_expressions(node):
                    for sub in ast.walk(root):
                        if not isinstance(sub, ast.Call):
                            continue
                        callee = local_callee(
                            sub, flow.cls, class_methods, module_functions
                        )
                        if callee is None:
                            continue
                        call_graph.add(
                            flow.qualname, callee, getattr(sub, "lineno", 0)
                        )
                        call_site_states.setdefault(callee, []).append(
                            pair[0]
                        )
        changed = False
        for qualname, flow in functions.items():
            if not _is_private(qualname):
                continue
            observed = call_site_states.get(qualname)
            if not observed:
                continue
            entry = observed[0]
            for state in observed[1:]:
                entry = join_locks(entry, state)
            if entry != flow.entry_state:
                flow.entry_state = entry
                changed = True
        if not changed:
            break

    acquisitions: List[Acquisition] = []
    for flow in functions.values():
        for node in flow.cfg.nodes:
            if node.kind != "with_enter" or node.lock is None:
                continue
            pair = flow.states.get(node.nid)
            if pair is None:
                continue
            lock = normalize_lock(node.lock)
            if lock is None:
                continue
            held = tuple(
                h for h in flow.held_at(node.nid) if h != lock
            )
            acquisitions.append(
                Acquisition(
                    qualname=flow.qualname,
                    lock=lock,
                    held_before=held,
                    line=node.line,
                )
            )
    acquisitions.sort(key=lambda a: (a.line, a.qualname))

    return ModuleFlow(
        functions=functions,
        classes=classes,
        call_graph=call_graph,
        acquisitions=acquisitions,
    )
