"""Flow-aware analysis for :mod:`repro.lint`.

This subpackage turns the linter from a per-node AST walker into a
dataflow analyzer:

* :mod:`repro.lint.flow.cfg` builds per-function control-flow graphs
  (branches, loops, ``try/finally``, ``with``, early returns) with
  explicit ``with_enter``/``with_exit`` pseudo-nodes so lock regions
  are visible as graph structure.
* :mod:`repro.lint.flow.dataflow` is a generic forward worklist engine
  plus the lock-held-set abstract domain (a multiset of lock names, so
  re-entrant ``RLock`` nesting is modelled by counts).
* :mod:`repro.lint.flow.analysis` assembles a per-module summary —
  one CFG + lock-state fixpoint per function, a module-level call
  graph, and call-site lock propagation into private helpers — cached
  on the :class:`~repro.lint.rules.base.FileContext` so every flow
  rule shares a single analysis pass per file.
"""

from repro.lint.flow.cfg import CFG, CFGNode, build_cfg
from repro.lint.flow.dataflow import (
    EMPTY_LOCKS,
    LockState,
    acquire,
    held_locks,
    join_locks,
    lock_transfer,
    release,
    run_forward,
)
from repro.lint.flow.analysis import (
    FunctionFlow,
    ModuleFlow,
    analyze_module,
    normalize_lock,
)

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "EMPTY_LOCKS",
    "LockState",
    "acquire",
    "release",
    "held_locks",
    "join_locks",
    "lock_transfer",
    "run_forward",
    "FunctionFlow",
    "ModuleFlow",
    "analyze_module",
    "normalize_lock",
]
