"""Per-function control-flow graphs for the flow rules.

The graph is statement-granular: every simple statement becomes one
node, and compound statements contribute *header* nodes (the ``if``
test, the loop header, the ``with`` context expressions) plus the
nodes of their bodies.  Two pseudo-node kinds make lock reasoning
possible without special cases downstream:

``with_enter`` / ``with_exit``
    Bracket each ``with`` item.  When the context expression resolves
    to a plain dotted name (``self._lock``) the nodes carry it in
    ``lock``; the dataflow transfer function turns these into
    acquire/release effects.  Crucially, *every* exit from the body —
    fall-through, ``return``, ``raise``, ``break``, ``continue`` —
    routes through the ``with_exit`` node, mirroring how ``with``
    releases on all paths.

``finally_enter``
    Entry of a ``finally`` suite.  Early exits from the protected body
    route through it the same way, so "the bump lives in ``finally``"
    satisfies an every-path contract like EPOCH001.

Exception flow is approximated with a single edge from each
``try_enter`` node to every handler: an exception may strike anywhere
in the body, so the handler must be assumed reachable with the state
held at try entry.  That is conservative for must-analyses (the lock
set at try entry under-approximates nothing the body releases) and
sufficient for the path queries the contract rules run.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg"]

#: Node kinds.  ``entry``/``exit`` are the unique function boundaries.
KIND_ENTRY = "entry"
KIND_EXIT = "exit"
KIND_STMT = "stmt"
KIND_WITH_ENTER = "with_enter"
KIND_WITH_EXIT = "with_exit"
KIND_TRY_ENTER = "try_enter"
KIND_FINALLY_ENTER = "finally_enter"

#: Statement types treated as opaque single nodes (their bodies define
#: other scopes or, for ``match``, structure the flow rules don't need).
_OPAQUE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class CFGNode:
    """One vertex: a statement (or pseudo-event) plus its location."""

    __slots__ = ("nid", "kind", "stmt", "lock", "line")

    def __init__(
        self,
        nid: int,
        kind: str,
        stmt: Optional[ast.AST] = None,
        lock: Optional[str] = None,
    ) -> None:
        self.nid = nid
        self.kind = kind
        self.stmt = stmt
        self.lock = lock
        self.line = getattr(stmt, "lineno", 0) if stmt is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = type(self.stmt).__name__ if self.stmt is not None else "-"
        extra = f" lock={self.lock}" if self.lock else ""
        return f"<CFGNode {self.nid} {self.kind} {label} L{self.line}{extra}>"


class CFG:
    """A function's control-flow graph with entry/exit sentinels."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.succ: Dict[int, List[int]] = {}
        self.entry = self.add_node(KIND_ENTRY)
        self.exit = self.add_node(KIND_EXIT)

    def add_node(
        self,
        kind: str,
        stmt: Optional[ast.AST] = None,
        lock: Optional[str] = None,
    ) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt, lock)
        self.nodes.append(node)
        self.succ[node.nid] = []
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode) -> None:
        if dst.nid not in self.succ[src.nid]:
            self.succ[src.nid].append(dst.nid)

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {node.nid: [] for node in self.nodes}
        for src, dsts in self.succ.items():
            for dst in dsts:
                preds[dst].append(src)
        return preds

    def node_expressions(self, node: CFGNode) -> Iterator[ast.AST]:
        """Expression roots *executed at* this node.

        For compound statements only the header expressions are
        yielded — body statements have their own nodes — so a rule may
        ``ast.walk`` each yielded root without double-counting.
        """
        stmt = node.stmt
        if stmt is None:
            return
        if node.kind == KIND_WITH_ENTER:
            # The with-item context expression evaluates at enter time.
            assert isinstance(stmt, (ast.With, ast.AsyncWith))
            for item in stmt.items:
                yield item.context_expr
                if item.optional_vars is not None:
                    yield item.optional_vars
            return
        if node.kind in (KIND_WITH_EXIT, KIND_TRY_ENTER, KIND_FINALLY_ENTER):
            return
        if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
            yield stmt.test
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt.target
            yield stmt.iter
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.type is not None:
                yield stmt.type
        elif isinstance(stmt, _OPAQUE_STMTS):
            return  # Nested scopes run later, under unknown lock state.
        else:
            yield stmt

    def reaches(
        self,
        src: int,
        dst: int,
        avoiding: Optional[Set[int]] = None,
    ) -> bool:
        """Is there a path ``src -> dst`` that avoids ``avoiding`` nodes?

        ``src`` itself may be in ``avoiding`` (the query is about
        intermediate and destination nodes); ``dst`` may not.
        """
        blocked = avoiding or set()
        if dst in blocked:
            return False
        seen = {src}
        stack = [src]
        while stack:
            current = stack.pop()
            if current == dst:
                return True
            for nxt in self.succ[current]:
                if nxt in seen or nxt in blocked:
                    continue
                seen.add(nxt)
                stack.append(nxt)
        return False


class _Loop:
    """Book-keeping for the innermost enclosing loop."""

    __slots__ = ("head", "cleanup_depth", "break_exits")

    def __init__(self, head: CFGNode, cleanup_depth: int) -> None:
        self.head = head
        self.cleanup_depth = cleanup_depth
        self.break_exits: List[CFGNode] = []


class _Builder:
    """Recursive-descent CFG construction with a cleanup stack.

    The cleanup stack records, innermost last, the ``with_exit`` and
    ``finally_enter`` nodes an early exit must thread through.  A
    ``return``/``raise`` routes through the whole stack to ``exit``;
    ``break``/``continue`` route only through entries pushed inside
    the loop.
    """

    def __init__(self, resolve: Callable[[ast.AST], Optional[str]]) -> None:
        self.cfg = CFG()
        self._resolve = resolve
        self._loops: List[_Loop] = []
        # Entries: ("with", exit_node) | ("finally", enter_node, frontier)
        self._cleanups: List[Tuple] = []

    # -- helpers -------------------------------------------------------
    def _connect(self, frontier: Sequence[CFGNode], dst: CFGNode) -> None:
        for node in frontier:
            self.cfg.add_edge(node, dst)

    def _route_cleanups(
        self, frontier: List[CFGNode], down_to: int
    ) -> List[CFGNode]:
        """Thread ``frontier`` through cleanups above stack depth ``down_to``."""
        current = frontier
        for entry in reversed(self._cleanups[down_to:]):
            if entry[0] == "with":
                exit_node = entry[1]
                self._connect(current, exit_node)
                current = [exit_node]
            else:
                enter_node, finally_frontier = entry[1], entry[2]
                self._connect(current, enter_node)
                current = list(finally_frontier)
        return current

    def _lock_name(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, (ast.Name, ast.Attribute)):
            return self._resolve(expr)
        return None

    # -- statement dispatch --------------------------------------------
    def build_body(
        self, body: Sequence[ast.stmt], frontier: List[CFGNode]
    ) -> List[CFGNode]:
        for stmt in body:
            if not frontier:
                break  # Unreachable code after a jump.
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(
        self, stmt: ast.stmt, frontier: List[CFGNode]
    ) -> List[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._build_jump_to_exit(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            return self._build_jump_to_exit(stmt, frontier)
        if isinstance(stmt, ast.Break):
            return self._build_break(stmt, frontier)
        if isinstance(stmt, ast.Continue):
            return self._build_continue(stmt, frontier)
        node = self.cfg.add_node(KIND_STMT, stmt)
        self._connect(frontier, node)
        return [node]

    def _build_if(self, stmt: ast.If, frontier: List[CFGNode]) -> List[CFGNode]:
        test = self.cfg.add_node(KIND_STMT, stmt)
        self._connect(frontier, test)
        then_frontier = self.build_body(stmt.body, [test])
        if stmt.orelse:
            else_frontier = self.build_body(stmt.orelse, [test])
        else:
            else_frontier = [test]
        return then_frontier + else_frontier

    @staticmethod
    def _is_always_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _build_while(
        self, stmt: ast.While, frontier: List[CFGNode]
    ) -> List[CFGNode]:
        head = self.cfg.add_node(KIND_STMT, stmt)
        self._connect(frontier, head)
        loop = _Loop(head, len(self._cleanups))
        self._loops.append(loop)
        body_frontier = self.build_body(stmt.body, [head])
        self._connect(body_frontier, head)
        self._loops.pop()
        if self._is_always_true(stmt.test):
            # ``while True`` only leaves via break (or return/raise).
            exits: List[CFGNode] = []
        elif stmt.orelse:
            exits = self.build_body(stmt.orelse, [head])
        else:
            exits = [head]
        return exits + loop.break_exits

    def _build_for(
        self, stmt: "ast.For | ast.AsyncFor", frontier: List[CFGNode]
    ) -> List[CFGNode]:
        head = self.cfg.add_node(KIND_STMT, stmt)
        self._connect(frontier, head)
        loop = _Loop(head, len(self._cleanups))
        self._loops.append(loop)
        body_frontier = self.build_body(stmt.body, [head])
        self._connect(body_frontier, head)
        self._loops.pop()
        if stmt.orelse:
            exits = self.build_body(stmt.orelse, [head])
        else:
            exits = [head]
        return exits + loop.break_exits

    def _build_with(
        self, stmt: "ast.With | ast.AsyncWith", frontier: List[CFGNode]
    ) -> List[CFGNode]:
        exit_nodes: List[CFGNode] = []
        current = frontier
        for item in stmt.items:
            lock = self._lock_name(item.context_expr)
            enter = self.cfg.add_node(KIND_WITH_ENTER, stmt, lock=lock)
            self._connect(current, enter)
            current = [enter]
            exit_node = self.cfg.add_node(KIND_WITH_EXIT, stmt, lock=lock)
            self._cleanups.append(("with", exit_node))
            exit_nodes.append(exit_node)
        body_frontier = self.build_body(stmt.body, current)
        for exit_node in reversed(exit_nodes):
            self._cleanups.pop()
            self._connect(body_frontier, exit_node)
            body_frontier = [exit_node]
        return body_frontier

    def _build_try(self, stmt: ast.Try, frontier: List[CFGNode]) -> List[CFGNode]:
        has_finally = bool(stmt.finalbody)
        if has_finally:
            finally_enter = self.cfg.add_node(KIND_FINALLY_ENTER, stmt)
            # Build the finally suite *before* pushing it as a cleanup:
            # jumps inside finally route only through outer cleanups.
            finally_frontier = self.build_body(stmt.finalbody, [finally_enter])
            self._cleanups.append(("finally", finally_enter, finally_frontier))

        try_enter = self.cfg.add_node(KIND_TRY_ENTER, stmt)
        self._connect(frontier, try_enter)
        body_frontier = self.build_body(stmt.body, [try_enter])
        if stmt.orelse:
            body_frontier = self.build_body(stmt.orelse, body_frontier)
        ends = list(body_frontier)
        for handler in stmt.handlers:
            handler_node = self.cfg.add_node(KIND_STMT, handler)
            # Exceptional edge: any point in the body may raise; the
            # handler sees (at most) the state held at try entry.
            self.cfg.add_edge(try_enter, handler_node)
            ends.extend(self.build_body(handler.body, [handler_node]))
        if has_finally:
            self._cleanups.pop()
            self._connect(ends, finally_enter)
            return list(finally_frontier)
        return ends

    def _build_jump_to_exit(
        self, stmt: ast.stmt, frontier: List[CFGNode]
    ) -> List[CFGNode]:
        node = self.cfg.add_node(KIND_STMT, stmt)
        self._connect(frontier, node)
        current = self._route_cleanups([node], 0)
        self._connect(current, self.cfg.exit)
        return []

    def _build_break(
        self, stmt: ast.Break, frontier: List[CFGNode]
    ) -> List[CFGNode]:
        node = self.cfg.add_node(KIND_STMT, stmt)
        self._connect(frontier, node)
        if not self._loops:
            self._connect([node], self.cfg.exit)
            return []
        loop = self._loops[-1]
        current = self._route_cleanups([node], loop.cleanup_depth)
        loop.break_exits.extend(current)
        return []

    def _build_continue(
        self, stmt: ast.Continue, frontier: List[CFGNode]
    ) -> List[CFGNode]:
        node = self.cfg.add_node(KIND_STMT, stmt)
        self._connect(frontier, node)
        if not self._loops:
            self._connect([node], self.cfg.exit)
            return []
        loop = self._loops[-1]
        current = self._route_cleanups([node], loop.cleanup_depth)
        self._connect(current, loop.head)
        return []


def build_cfg(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
    resolve: Optional[Callable[[ast.AST], Optional[str]]] = None,
) -> CFG:
    """Build the CFG of one function.

    ``resolve`` maps a ``with`` context expression to a dotted name
    (typically :meth:`FileContext.resolve <repro.lint.rules.base.FileContext.resolve>`);
    when omitted a plain attribute-chain fallback is used.
    """
    if resolve is None:
        resolve = _fallback_resolve
    builder = _Builder(resolve)
    frontier = builder.build_body(func.body, [builder.cfg.entry])
    builder._connect(frontier, builder.cfg.exit)
    return builder.cfg


def _fallback_resolve(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
