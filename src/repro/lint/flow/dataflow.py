"""Forward dataflow engine and the lock-held-set abstract domain.

The domain is a *must* analysis: a lock is in the state at a program
point only if **every** path to that point holds it.  States are
canonicalised as sorted ``(lock_name, count)`` tuples; counts model
re-entrant acquisition, so ``with self._lock: with self._lock: ...``
carries count 2 inside and the inner exit decrements back to 1 rather
than clearing the lock — exactly the ``threading.RLock`` contract the
serving layer relies on.

Join is pointwise-minimum over counts (names absent on either side
drop out), which is the meet of the multiset lattice and makes the
worklist iteration monotone: states only shrink, so the fixpoint
terminates on any CFG.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Tuple

from repro.lint.flow.cfg import (
    CFG,
    CFGNode,
    KIND_WITH_ENTER,
    KIND_WITH_EXIT,
)

__all__ = [
    "LockState",
    "EMPTY_LOCKS",
    "acquire",
    "release",
    "held_locks",
    "join_locks",
    "lock_transfer",
    "run_forward",
]

#: Canonical lock state: sorted tuple of (name, count>=1) pairs.
LockState = Tuple[Tuple[str, int], ...]

EMPTY_LOCKS: LockState = ()


def acquire(state: LockState, name: str) -> LockState:
    counts = dict(state)
    counts[name] = counts.get(name, 0) + 1
    return tuple(sorted(counts.items()))


def release(state: LockState, name: str) -> LockState:
    counts = dict(state)
    current = counts.get(name, 0)
    if current <= 1:
        counts.pop(name, None)
    else:
        counts[name] = current - 1
    return tuple(sorted(counts.items()))


def held_locks(state: LockState) -> Tuple[str, ...]:
    """Names of locks held (count >= 1) in ``state``, sorted."""
    return tuple(name for name, _count in state)


def join_locks(a: LockState, b: LockState) -> LockState:
    """Must-join: pointwise minimum of the two count maps."""
    if a == b:
        return a
    counts_b = dict(b)
    merged = []
    for name, count in a:
        other = counts_b.get(name, 0)
        low = min(count, other)
        if low > 0:
            merged.append((name, low))
    return tuple(merged)


def lock_transfer(node: CFGNode, state: LockState) -> LockState:
    """Lock effect of one CFG node.

    ``with_enter``/``with_exit`` pseudo-nodes acquire/release their
    resolved lock; an explicit bare ``x.acquire()`` / ``x.release()``
    expression statement is honoured too, so code predating the
    ``with`` idiom still analyzes correctly.
    """
    if node.lock is not None:
        if node.kind == KIND_WITH_ENTER:
            return acquire(state, node.lock)
        if node.kind == KIND_WITH_EXIT:
            return release(state, node.lock)
    explicit = _explicit_lock_call(node)
    if explicit is not None:
        name, is_acquire = explicit
        return acquire(state, name) if is_acquire else release(state, name)
    return state


def _explicit_lock_call(node: CFGNode) -> Optional[Tuple[str, bool]]:
    import ast

    stmt = node.stmt
    if node.kind != "stmt" or not isinstance(stmt, ast.Expr):
        return None
    call = stmt.value
    if not isinstance(call, ast.Call) or not isinstance(
        call.func, ast.Attribute
    ):
        return None
    if call.func.attr not in ("acquire", "release"):
        return None
    target = call.func.value
    parts = []
    current = target
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    name = ".".join(reversed(parts))
    return name, call.func.attr == "acquire"


def run_forward(
    cfg: CFG,
    entry_state: LockState,
    transfer: Callable[[CFGNode, LockState], LockState] = lock_transfer,
) -> Dict[int, Tuple[LockState, LockState]]:
    """Worklist fixpoint; returns ``{nid: (state_in, state_out)}``.

    Unreachable nodes are absent from the result.  ``state_in`` is the
    join over predecessors' ``state_out``; the entry node's input is
    ``entry_state``.
    """
    preds = cfg.predecessors()
    states_in: Dict[int, LockState] = {}
    states_out: Dict[int, LockState] = {}
    worklist: deque = deque([cfg.entry.nid])
    queued = {cfg.entry.nid}
    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        if nid == cfg.entry.nid:
            state_in = entry_state
        else:
            incoming = [states_out[p] for p in preds[nid] if p in states_out]
            if not incoming:
                continue  # Not yet reachable.
            state_in = incoming[0]
            for other in incoming[1:]:
                state_in = join_locks(state_in, other)
        state_out = transfer(cfg.nodes[nid], state_in)
        if (
            nid in states_out
            and states_out[nid] == state_out
            and states_in[nid] == state_in
        ):
            continue
        states_in[nid] = state_in
        states_out[nid] = state_out
        for succ in cfg.succ[nid]:
            if succ not in queued:
                queued.add(succ)
                worklist.append(succ)
    return {
        nid: (states_in[nid], states_out[nid]) for nid in states_in
    }
