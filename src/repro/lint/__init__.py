"""repro.lint — AST-based entropy-hygiene & determinism analyzer.

A plugin-architecture static analyzer encoding this repository's
invariants as mechanical checks:

* **ENT001** no module-global PRNG (``random.*`` / ``np.random.*``) in
  library code — entropy comes from the injected NoiseSource.
* **ENT002** no constant-seeded generators outside tests/examples.
* **ENT003** no logging/printing of raw entropy buffers.
* **DET001** no wall clock / OS entropy in deterministic sim paths.
* **DET002** no unordered-set iteration in deterministic paths.
* **COR001** no float ``==`` on p-values/probabilities.
* **COR002** no mutable default arguments.

Violations are suppressible per line with ``# repro: noqa[CODE]``;
stale suppressions are themselves reported (NOQ001).  See
``docs/static_analysis.md`` for the full catalogue and the suppression
policy.

Programmatic use::

    from repro.lint import Linter, LintConfig

    result = Linter(LintConfig()).lint_paths(["src/repro"])
    assert result.exit_code == 0, result.violations
"""

from repro.lint.engine import PARSE_ERROR_CODE, Linter
from repro.lint.report import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rule_listing,
    render_text,
)
from repro.lint.rules import REGISTRY, FileContext, Rule, register
from repro.lint.suppressions import UNUSED_SUPPRESSION_CODE
from repro.lint.types import (
    FileReport,
    LintConfig,
    LintResult,
    RuleMeta,
    Severity,
    Suppression,
    Violation,
)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "PARSE_ERROR_CODE",
    "REGISTRY",
    "UNUSED_SUPPRESSION_CODE",
    "FileContext",
    "FileReport",
    "LintConfig",
    "LintResult",
    "Linter",
    "Rule",
    "RuleMeta",
    "Severity",
    "Suppression",
    "Violation",
    "register",
    "render_json",
    "render_rule_listing",
    "render_text",
]
