"""repro.lint — flow-aware static analyzer for the reproduction.

A plugin-architecture analyzer encoding this repository's invariants
as mechanical checks.  Syntactic rules walk the AST; the CONC/EPOCH
families run real dataflow over per-function CFGs
(:mod:`repro.lint.flow`) with a lock-held-set abstract state and
intra-module call-graph propagation.

* **ENT001** no module-global PRNG (``random.*`` / ``np.random.*``) in
  library code — entropy comes from the injected NoiseSource.
* **ENT002** no constant-seeded generators outside tests/examples.
* **ENT003** no logging/printing of raw entropy buffers.
* **DET001** no wall clock / OS entropy in deterministic sim paths.
* **DET002** no unordered-set iteration in deterministic paths.
* **COR001** no float ``==`` on p-values/probabilities.
* **COR002** no mutable default arguments.
* **DOC001** public API surfaces carry docstrings.
* **CONC001** attributes declared ``# guarded-by: <lock>`` are only
  touched with that lock in the must-held set.
* **CONC002** no blocking call (sleep/wait/submit/harvest) under a
  held lock.
* **CONC003** no two locks acquired in opposite orders in one module.
* **EPOCH001** sensing-state mutations bump ``state_epoch`` on every
  CFG path to exit.
* **OBS001** metric-name literals are declared in the obs catalog.
* **OBS002** every catalog entry has a use site (project phase).

Violations are suppressible per line with ``# repro: noqa[CODE]``;
stale suppressions are themselves reported (NOQ001).  Reporters cover
text, JSON and SARIF 2.1.0; :mod:`repro.lint.baseline` implements the
monotone baseline ratchet.  See ``docs/static_analysis.md`` for the
full catalogue, the ``# guarded-by:`` convention and the workflow.

Programmatic use::

    from repro.lint import Linter, LintConfig

    result = Linter(LintConfig()).lint_paths(["src/repro"])
    assert result.exit_code == 0, result.violations
"""

from repro.lint.baseline import (
    BASELINE_VERSION,
    BaselineDelta,
    BaselineError,
    load_baseline,
    reconcile_baseline,
    write_baseline,
)
from repro.lint.engine import PARSE_ERROR_CODE, Linter
from repro.lint.report import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_rule_listing,
    render_sarif,
    render_text,
)
from repro.lint.rules import REGISTRY, FileContext, Rule, register
from repro.lint.suppressions import UNUSED_SUPPRESSION_CODE
from repro.lint.types import (
    FileReport,
    LintConfig,
    LintResult,
    RuleMeta,
    Severity,
    Suppression,
    Violation,
)

__all__ = [
    "BASELINE_VERSION",
    "JSON_SCHEMA_VERSION",
    "PARSE_ERROR_CODE",
    "REGISTRY",
    "SARIF_VERSION",
    "UNUSED_SUPPRESSION_CODE",
    "BaselineDelta",
    "BaselineError",
    "FileContext",
    "FileReport",
    "LintConfig",
    "LintResult",
    "Linter",
    "Rule",
    "RuleMeta",
    "Severity",
    "Suppression",
    "Violation",
    "load_baseline",
    "reconcile_baseline",
    "register",
    "render_json",
    "render_rule_listing",
    "render_sarif",
    "render_text",
    "write_baseline",
]
