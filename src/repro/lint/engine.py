"""The lint engine: file discovery, rule dispatch, suppression filtering.

:class:`Linter` is deliberately dumb about rules — it instantiates
whatever the registry offers, scoped by each rule's declared paths and
the run's :class:`~repro.lint.types.LintConfig`, then reconciles the
findings against ``# repro: noqa[...]`` comments.  Suppressions that
silence nothing are themselves reported (:data:`NOQ001
<repro.lint.suppressions.UNUSED_SUPPRESSION_CODE>`), so waivers cannot
outlive the code they excused.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, List, Mapping, Optional, Sequence, Type

from repro.lint import rules as _rules  # noqa: F401  (registers built-ins)
from repro.lint.rules.base import REGISTRY, FileContext, Rule
from repro.lint.suppressions import UNUSED_SUPPRESSION_CODE, parse_suppressions
from repro.lint.types import (
    FileReport,
    LintConfig,
    LintResult,
    Severity,
    Violation,
)

#: Code reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "PAR001"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules"}


def _iter_python_files(paths: Iterable[str]) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    files.append(candidate)
        else:
            files.append(path)
    return files


class Linter:
    """Run the registered rules over sources, honouring suppressions."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        registry: Optional[Mapping[str, Type[Rule]]] = None,
    ) -> None:
        self.config = config or LintConfig()
        self._registry = dict(registry if registry is not None else REGISTRY)
        unknown = [
            code
            for code in (self.config.select or ()) + tuple(self.config.ignore)
            if code not in self._registry and code != UNUSED_SUPPRESSION_CODE
        ]
        if unknown:
            raise ValueError(
                f"unknown rule code(s) {unknown}; known: "
                f"{sorted(self._registry)}"
            )

    # ------------------------------------------------------------------
    def lint_paths(self, paths: Sequence[str]) -> LintResult:
        reports = tuple(
            self.lint_file(path) for path in _iter_python_files(paths)
        )
        return LintResult(reports=reports, config=self.config)

    def lint_file(self, path: "pathlib.Path | str") -> FileReport:
        file_path = pathlib.Path(path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            return FileReport(
                path=file_path.as_posix(),
                violations=(
                    Violation(
                        code=PARSE_ERROR_CODE,
                        message=f"cannot read file: {exc}",
                        path=file_path.as_posix(),
                        line=1,
                        col=0,
                        severity=Severity.ERROR,
                    ),
                ),
                parse_error=str(exc),
            )
        return self.lint_source(source, path=file_path.as_posix())

    def lint_source(self, source: str, path: str = "<memory>") -> FileReport:
        posix = pathlib.PurePath(path).as_posix()
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            return FileReport(
                path=posix,
                violations=(
                    Violation(
                        code=PARSE_ERROR_CODE,
                        message=f"syntax error: {exc.msg}",
                        path=posix,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        severity=Severity.ERROR,
                    ),
                ),
                parse_error=exc.msg,
            )

        context = FileContext(posix, source, tree)
        raw: List[Violation] = []
        for code in sorted(self._registry):
            rule_cls = self._registry[code]
            if not self.config.rule_enabled(code):
                continue
            if not rule_cls.meta.applies_to(posix):
                continue
            visitor = rule_cls(context, self.config.severity_for(rule_cls.meta))
            visitor.visit(tree)
            raw.extend(visitor.violations)

        suppressions = parse_suppressions(source, posix)
        kept: List[Violation] = []
        used = [False] * len(suppressions)
        for violation in raw:
            suppressed = False
            for index, suppression in enumerate(suppressions):
                if suppression.matches(violation):
                    used[index] = True
                    suppressed = True
            if not suppressed:
                kept.append(violation)

        if self.config.check_unused_suppressions and self.config.rule_enabled(
            UNUSED_SUPPRESSION_CODE
        ):
            for index, suppression in enumerate(suppressions):
                if used[index]:
                    continue
                listed = (
                    ", ".join(suppression.codes)
                    if suppression.codes
                    else "<all rules>"
                )
                kept.append(
                    Violation(
                        code=UNUSED_SUPPRESSION_CODE,
                        message=(
                            f"unused suppression for {listed}: nothing on "
                            f"this line triggers it — remove the noqa"
                        ),
                        path=posix,
                        line=suppression.line,
                        col=0,
                        severity=Severity.WARNING,
                    )
                )

        kept.sort(key=lambda v: (v.line, v.col, v.code))
        return FileReport(path=posix, violations=tuple(kept))
