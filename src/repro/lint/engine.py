"""The lint engine: file discovery, rule dispatch, suppression filtering.

:class:`Linter` is deliberately dumb about rules — it instantiates
whatever the registry offers, scoped by each rule's declared paths and
the run's :class:`~repro.lint.types.LintConfig`, then reconciles the
findings against ``# repro: noqa[...]`` comments.  Suppressions that
silence nothing are themselves reported (:data:`NOQ001
<repro.lint.suppressions.UNUSED_SUPPRESSION_CODE>`), so waivers cannot
outlive the code they excused.

A run has two phases.  The *file phase* visits each file with every
applicable rule, sharing one ``project`` dict across files so rules
can accumulate cross-file facts.  The *project phase* then calls each
rule's ``finalize_project`` hook (e.g. OBS002's catalog-coverage
check).  Suppression reconciliation is deferred until after finalize,
so a ``# repro: noqa[OBS002]`` in the file a project-phase finding
anchors to both silences it and is correctly counted as used.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Type

from repro.lint import rules as _rules  # noqa: F401  (registers built-ins)
from repro.lint.rules.base import REGISTRY, FileContext, Rule
from repro.lint.suppressions import UNUSED_SUPPRESSION_CODE, parse_suppressions
from repro.lint.types import (
    FileReport,
    LintConfig,
    LintResult,
    Severity,
    Violation,
)

#: Code reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "PAR001"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules"}


def _iter_python_files(paths: Iterable[str]) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    files.append(candidate)
        else:
            files.append(path)
    return files


class Linter:
    """Run the registered rules over sources, honouring suppressions."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        registry: Optional[Mapping[str, Type[Rule]]] = None,
    ) -> None:
        self.config = config or LintConfig()
        self._registry = dict(registry if registry is not None else REGISTRY)
        unknown = [
            code
            for code in (self.config.select or ()) + tuple(self.config.ignore)
            if code not in self._registry and code != UNUSED_SUPPRESSION_CODE
        ]
        if unknown:
            raise ValueError(
                f"unknown rule code(s) {unknown}; known: "
                f"{sorted(self._registry)}"
            )

    # ------------------------------------------------------------------
    def lint_paths(
        self, paths: Sequence[str], *, partial: bool = False
    ) -> LintResult:
        """Lint every Python file under ``paths``.

        ``partial=True`` marks the file list as a subset of the real
        tree (e.g. ``--changed``): project-phase rules — which reason
        about whole-tree coverage, like OBS002's "every catalog entry
        has a use site" — are skipped, because a use site outside the
        subset would read as a false positive.
        """
        project: Dict[str, object] = {}
        analyses = [
            self._analyze_file(path, project)
            for path in _iter_python_files(paths)
        ]
        extra: Dict[str, List[Violation]] = (
            {} if partial else self._finalize_project(project)
        )
        reports = []
        for analysis in analyses:
            reports.append(
                self._reconcile(analysis, extra.pop(analysis.path, []))
            )
        # Project-phase findings anchored in files outside this run's
        # file list (possible when linting a narrow selection) still
        # surface, just without suppression handling for that file.
        for path in sorted(extra):
            reports.append(
                FileReport(path=path, violations=tuple(extra[path]))
            )
        return LintResult(reports=tuple(reports), config=self.config)

    def lint_file(self, path: "pathlib.Path | str") -> FileReport:
        project: Dict[str, object] = {}
        analysis = self._analyze_file(pathlib.Path(path), project)
        extra = self._finalize_project(project)
        return self._reconcile(analysis, extra.get(analysis.path, []))

    def lint_source(self, source: str, path: str = "<memory>") -> FileReport:
        project: Dict[str, object] = {}
        analysis = self._analyze_source(source, path, project)
        extra = self._finalize_project(project)
        return self._reconcile(analysis, extra.get(analysis.path, []))

    # -- file phase ----------------------------------------------------
    def _analyze_file(
        self, path: pathlib.Path, project: Dict[str, object]
    ) -> "_FileAnalysis":
        posix = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return _FileAnalysis(
                path=posix,
                violations=[
                    Violation(
                        code=PARSE_ERROR_CODE,
                        message=f"cannot read file: {exc}",
                        path=posix,
                        line=1,
                        col=0,
                        severity=Severity.ERROR,
                    )
                ],
                suppressions=[],
                parse_error=str(exc),
            )
        return self._analyze_source(source, posix, project)

    def _analyze_source(
        self, source: str, path: str, project: Dict[str, object]
    ) -> "_FileAnalysis":
        posix = pathlib.PurePath(path).as_posix()
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            return _FileAnalysis(
                path=posix,
                violations=[
                    Violation(
                        code=PARSE_ERROR_CODE,
                        message=f"syntax error: {exc.msg}",
                        path=posix,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        severity=Severity.ERROR,
                    )
                ],
                suppressions=[],
                parse_error=exc.msg,
            )

        context = FileContext(posix, source, tree, project=project)
        raw: List[Violation] = []
        for code in sorted(self._registry):
            rule_cls = self._registry[code]
            if not self.config.rule_enabled(code):
                continue
            if not rule_cls.meta.applies_to(posix):
                continue
            visitor = rule_cls(context, self.config.severity_for(rule_cls.meta))
            visitor.visit(tree)
            raw.extend(visitor.violations)

        return _FileAnalysis(
            path=posix,
            violations=raw,
            suppressions=parse_suppressions(source, posix),
        )

    # -- project phase -------------------------------------------------
    def _finalize_project(
        self, project: Dict[str, object]
    ) -> Dict[str, List[Violation]]:
        """Run every enabled rule's finalize hook; group by path."""
        grouped: Dict[str, List[Violation]] = {}
        for code in sorted(self._registry):
            rule_cls = self._registry[code]
            if not self.config.rule_enabled(code):
                continue
            violations = rule_cls.finalize_project(
                project, self.config.severity_for(rule_cls.meta)
            )
            for violation in violations:
                grouped.setdefault(violation.path, []).append(violation)
        return grouped

    def _reconcile(
        self, analysis: "_FileAnalysis", extra: List[Violation]
    ) -> FileReport:
        suppressions = analysis.suppressions
        kept: List[Violation] = []
        used = [False] * len(suppressions)
        for violation in analysis.violations + list(extra):
            suppressed = False
            for index, suppression in enumerate(suppressions):
                if suppression.matches(violation):
                    used[index] = True
                    suppressed = True
            if not suppressed:
                kept.append(violation)

        if self.config.check_unused_suppressions and self.config.rule_enabled(
            UNUSED_SUPPRESSION_CODE
        ):
            for index, suppression in enumerate(suppressions):
                if used[index]:
                    continue
                listed = (
                    ", ".join(suppression.codes)
                    if suppression.codes
                    else "<all rules>"
                )
                kept.append(
                    Violation(
                        code=UNUSED_SUPPRESSION_CODE,
                        message=(
                            f"unused suppression for {listed}: nothing on "
                            f"this line triggers it — remove the noqa"
                        ),
                        path=analysis.path,
                        line=suppression.line,
                        col=0,
                        severity=Severity.WARNING,
                    )
                )

        kept.sort(key=lambda v: (v.line, v.col, v.code))
        return FileReport(
            path=analysis.path,
            violations=tuple(kept),
            parse_error=analysis.parse_error,
        )


@dataclasses.dataclass
class _FileAnalysis:
    """File-phase output awaiting project finalize + reconciliation."""

    path: str
    violations: List[Violation]
    suppressions: List
    parse_error: Optional[str] = None
