"""Command-line front end for :mod:`repro.lint`.

Invoked as ``python -m repro.lint <paths>`` or ``drange lint <paths>``.
Project-level defaults are read from ``[tool.repro-lint]`` in
``pyproject.toml`` (nearest one walking up from the first path), then
overridden by command-line flags.  Exit codes: 0 clean, 1 violations at
or above the fail threshold, 2 usage/config errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.engine import Linter
from repro.lint.report import render_json, render_rule_listing, render_text
from repro.lint.types import LintConfig, Severity


def _find_pyproject(start: pathlib.Path) -> Optional[pathlib.Path]:
    probe = start if start.is_dir() else start.parent
    for directory in [probe, *probe.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def _load_project_config(paths: Sequence[str]) -> Dict[str, object]:
    """``[tool.repro-lint]`` table from the nearest pyproject, or {}."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11: project defaults are optional.
        return {}
    if not paths:
        return {}
    pyproject = _find_pyproject(pathlib.Path(paths[0]).resolve())
    if pyproject is None:
        return {}
    try:
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError):
        return {}
    table = data.get("tool", {}).get("repro-lint", {})
    return table if isinstance(table, dict) else {}


def _build_config(
    args: argparse.Namespace, project: Dict[str, object]
) -> LintConfig:
    select: Optional[Tuple[str, ...]] = None
    if args.select:
        select = tuple(code.upper() for code in args.select)
    elif isinstance(project.get("select"), list):
        select = tuple(str(code).upper() for code in project["select"])

    ignore: Tuple[str, ...] = ()
    if args.ignore:
        ignore = tuple(code.upper() for code in args.ignore)
    elif isinstance(project.get("ignore"), list):
        ignore = tuple(str(code).upper() for code in project["ignore"])

    fail_on = args.fail_on or str(project.get("fail-on", "warning"))

    severity_overrides: Dict[str, Severity] = {}
    raw_severity = project.get("severity", {})
    if isinstance(raw_severity, dict):
        for code, name in raw_severity.items():
            severity_overrides[str(code).upper()] = Severity.parse(str(name))

    return LintConfig(
        select=select,
        ignore=ignore,
        severity_overrides=severity_overrides,
        fail_on=Severity.parse(fail_on),
        check_unused_suppressions=not args.no_unused_suppressions,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based entropy-hygiene and determinism analyzer for the "
            "D-RaNGe reproduction"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="CODE", default=None,
        help="only run these rule codes",
    )
    parser.add_argument(
        "--ignore", nargs="+", metavar="CODE", default=None,
        help="skip these rule codes",
    )
    parser.add_argument(
        "--fail-on", choices=("note", "warning", "error"), default=None,
        help="minimum severity that makes the exit code nonzero "
        "(default: warning)",
    )
    parser.add_argument(
        "--no-unused-suppressions", action="store_true",
        help="do not report stale `# repro: noqa` comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_listing())
        return 0
    if not args.paths:
        print("error: no paths given (try: python -m repro.lint src/repro)",
              file=sys.stderr)
        return 2
    for path in args.paths:
        if not pathlib.Path(path).exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    try:
        config = _build_config(args, _load_project_config(args.paths))
        linter = Linter(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = linter.lint_paths(args.paths)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
