"""Command-line front end for :mod:`repro.lint`.

Invoked as ``python -m repro.lint <paths>`` or ``drange lint <paths>``.
Project-level defaults are read from ``[tool.repro-lint]`` in
``pyproject.toml`` (nearest one walking up from the first path), then
overridden by command-line flags.  Exit codes: 0 clean, 1 violations at
or above the fail threshold (or a dirty baseline), 2 usage/config
errors.

``--changed [BASE]`` narrows the run to Python files reported by
``git diff --name-only BASE`` (default base ``HEAD``) that fall under
the given paths, so a pre-commit hook pays for the files it touched
rather than the whole tree; plain invocations still sweep everything.
A changed-files run is a *partial* sweep, so project-phase rules
(whole-tree coverage checks like OBS002) are skipped — their evidence
may live in files outside the changed set.

``--baseline FILE`` enforces the ratchet described in
:mod:`repro.lint.baseline`; ``--update-baseline`` rewrites the file to
the current counts (the only way an allowance may change).
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.baseline import (
    BaselineError,
    counts_for,
    load_baseline,
    reconcile_baseline,
    write_baseline,
)
from repro.lint.engine import Linter
from repro.lint.report import (
    render_json,
    render_rule_listing,
    render_sarif,
    render_text,
)
from repro.lint.types import LintConfig, Severity


def _find_pyproject(start: pathlib.Path) -> Optional[pathlib.Path]:
    probe = start if start.is_dir() else start.parent
    for directory in [probe, *probe.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def _load_project_config(paths: Sequence[str]) -> Dict[str, object]:
    """``[tool.repro-lint]`` table from the nearest pyproject, or {}."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11: project defaults are optional.
        return {}
    if not paths:
        return {}
    pyproject = _find_pyproject(pathlib.Path(paths[0]).resolve())
    if pyproject is None:
        return {}
    try:
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError):
        return {}
    table = data.get("tool", {}).get("repro-lint", {})
    return table if isinstance(table, dict) else {}


def _build_config(
    args: argparse.Namespace, project: Dict[str, object]
) -> LintConfig:
    select: Optional[Tuple[str, ...]] = None
    if args.select:
        select = tuple(code.upper() for code in args.select)
    elif isinstance(project.get("select"), list):
        select = tuple(str(code).upper() for code in project["select"])

    ignore: Tuple[str, ...] = ()
    if args.ignore:
        ignore = tuple(code.upper() for code in args.ignore)
    elif isinstance(project.get("ignore"), list):
        ignore = tuple(str(code).upper() for code in project["ignore"])

    fail_on = args.fail_on or str(project.get("fail-on", "warning"))

    severity_overrides: Dict[str, Severity] = {}
    raw_severity = project.get("severity", {})
    if isinstance(raw_severity, dict):
        for code, name in raw_severity.items():
            severity_overrides[str(code).upper()] = Severity.parse(str(name))

    return LintConfig(
        select=select,
        ignore=ignore,
        severity_overrides=severity_overrides,
        fail_on=Severity.parse(fail_on),
        check_unused_suppressions=not args.no_unused_suppressions,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based entropy-hygiene and determinism analyzer for the "
            "D-RaNGe reproduction"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="BASE",
        help="only lint Python files changed vs the given git base "
        "(default base: HEAD); still scoped to the given paths",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="enforce the ratchet against this baseline file "
        "(default: the [tool.repro-lint] `baseline` key, if set)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline configured in pyproject.toml",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file to the current finding counts "
        "(requires --baseline or a configured baseline)",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="CODE", default=None,
        help="only run these rule codes",
    )
    parser.add_argument(
        "--ignore", nargs="+", metavar="CODE", default=None,
        help="skip these rule codes",
    )
    parser.add_argument(
        "--fail-on", choices=("note", "warning", "error"), default=None,
        help="minimum severity that makes the exit code nonzero "
        "(default: warning)",
    )
    parser.add_argument(
        "--no-unused-suppressions", action="store_true",
        help="do not report stale `# repro: noqa` comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _changed_files(paths: Sequence[str], base: str) -> List[str]:
    """Python files changed vs ``base`` that fall under ``paths``.

    Raises ``RuntimeError`` when git cannot answer (not a repository,
    unknown base revision, ...).  Untracked files are not reported —
    the flag is a pre-commit accelerator for *edited* files; a full
    sweep still runs in CI.
    """
    anchor = pathlib.Path(paths[0]).resolve()
    cwd = anchor if anchor.is_dir() else anchor.parent
    def _git(*argv: str) -> str:
        proc = subprocess.run(
            ["git", *argv], capture_output=True, text=True, cwd=str(cwd)
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"git {' '.join(argv)} failed: {proc.stderr.strip()}"
            )
        return proc.stdout
    toplevel = pathlib.Path(_git("rev-parse", "--show-toplevel").strip())
    roots = [pathlib.Path(p).resolve() for p in paths]
    changed: List[str] = []
    for line in _git("diff", "--name-only", base, "--").splitlines():
        candidate = (toplevel / line).resolve()
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        for root in roots:
            if candidate == root or root in candidate.parents:
                changed.append(str(candidate))
                break
    return sorted(set(changed))


def _resolve_baseline_path(
    args: argparse.Namespace, project: Dict[str, object]
) -> Optional[pathlib.Path]:
    if args.no_baseline:
        return None
    if args.baseline:
        return pathlib.Path(args.baseline)
    configured = project.get("baseline")
    if isinstance(configured, str) and args.paths:
        pyproject = _find_pyproject(pathlib.Path(args.paths[0]).resolve())
        if pyproject is not None:
            return pyproject.parent / configured
    return None


def _apply_baseline(result, baseline_path: pathlib.Path):
    """``(filtered_result, delta)`` with baselined findings removed."""
    from repro.lint.types import FileReport, LintResult

    baseline = load_baseline(baseline_path)
    delta = reconcile_baseline(result, baseline)
    keep = {id(v) for v in delta.new_violations}
    reports = tuple(
        FileReport(
            path=report.path,
            violations=tuple(
                v for v in report.violations if id(v) in keep
            ),
            parse_error=report.parse_error,
        )
        for report in result.reports
    )
    return LintResult(reports=reports, config=result.config), delta


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_listing())
        return 0
    if not args.paths:
        print("error: no paths given (try: python -m repro.lint src/repro)",
              file=sys.stderr)
        return 2
    for path in args.paths:
        if not pathlib.Path(path).exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    project = _load_project_config(args.paths)
    try:
        config = _build_config(args, project)
        linter = Linter(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline_path(args, project)
    if args.update_baseline and baseline_path is None:
        print(
            "error: --update-baseline needs --baseline FILE (or a "
            "`baseline` key in [tool.repro-lint])",
            file=sys.stderr,
        )
        return 2
    if args.update_baseline and args.changed is not None:
        print(
            "error: --update-baseline needs a full sweep; drop --changed",
            file=sys.stderr,
        )
        return 2

    paths: Sequence[str] = args.paths
    if args.changed is not None:
        try:
            paths = _changed_files(args.paths, args.changed)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print(
                f"ok: no Python files changed vs {args.changed} under "
                f"the given paths"
            )
            return 0

    result = linter.lint_paths(paths, partial=args.changed is not None)

    if args.update_baseline:
        assert baseline_path is not None
        write_baseline(baseline_path, counts_for(result))
        print(
            f"baseline updated: {baseline_path} now allows "
            f"{len(result.violations)} finding(s)"
        )
        return 0

    stale_failure = False
    if baseline_path is not None:
        try:
            result, delta = _apply_baseline(result, baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if delta.baselined:
            print(
                f"note: {len(delta.baselined)} baselined finding(s) "
                f"suppressed ({baseline_path})",
                file=sys.stderr,
            )
        for key, (allowed, current) in sorted(delta.stale.items()):
            stale_failure = True
            print(
                f"stale baseline entry {key}: allows {allowed} but only "
                f"{current} remain — run --update-baseline to ratchet "
                f"down",
                file=sys.stderr,
            )

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    if stale_failure:
        return 1
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
