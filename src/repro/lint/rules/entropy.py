"""Entropy-hygiene rules (ENT...).

D-RaNGe's output is only as trustworthy as the entropy path feeding it.
These rules keep that path disciplined: random bits must come from an
injected :class:`~repro.noise.NoiseSource` or an explicit
``numpy.random.Generator``, never from module-global PRNG state; no
production code may freeze a constant seed; and raw entropy must never
leak into logs or stdout, where it would hand an attacker the very bits
a consumer is about to use as key material.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.lint.rules.base import (
    FileContext,
    Rule,
    constant_seed_argument,
    register,
)
from repro.lint.types import RuleMeta, Severity

_LIBRARY_EXCLUDES = ("repro/lint/", "tests/", "examples/", "benchmarks/")

#: numpy.random attributes that construct *local* generator objects and
#: therefore do not touch the module-global legacy RandomState.
_NUMPY_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: random-module attributes that construct local generator instances.
_STDLIB_CONSTRUCTORS = {"Random", "SystemRandom"}


@register
class GlobalRngRule(Rule):
    """ENT001 — no module-global PRNG state in library code."""

    meta = RuleMeta(
        code="ENT001",
        name="no-global-rng",
        summary="module-global PRNG call in library code",
        severity=Severity.ERROR,
        rationale=(
            "Calls like random.random() or np.random.seed() share hidden "
            "process-wide state; any library draw from it is invisible to "
            "the injected NoiseSource and silently breaks both the "
            "true-randomness claim and test reproducibility. Construct a "
            "numpy.random.Generator (or accept a NoiseSource) instead."
        ),
        include=("repro/",),
        exclude=_LIBRARY_EXCLUDES,
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.context.resolve(node.func)
        if dotted is not None:
            terminal = dotted.rsplit(".", 1)[-1]
            if (
                dotted.startswith("random.")
                and terminal not in _STDLIB_CONSTRUCTORS
            ):
                self.report(
                    node,
                    f"call to stdlib global-state PRNG `{dotted}`; draw from "
                    f"an injected NoiseSource or a local random.Random",
                )
            elif (
                dotted.startswith("numpy.random.")
                and terminal not in _NUMPY_CONSTRUCTORS
            ):
                self.report(
                    node,
                    f"call to numpy legacy global RNG `{dotted}`; use a "
                    f"numpy.random.Generator from default_rng()",
                )
        self.generic_visit(node)


@register
class ConstantSeedRule(Rule):
    """ENT002 — no constant-seeded generators outside tests/examples."""

    meta = RuleMeta(
        code="ENT002",
        name="no-constant-seed",
        summary="generator seeded with a literal constant",
        severity=Severity.ERROR,
        rationale=(
            "A constant seed turns a TRNG path into a fixed pseudo-random "
            "tape: every process emits the same 'random' bits. Constant "
            "seeds belong in tests, examples and benchmarks only; "
            "production paths must thread a caller-supplied seed or None "
            "(OS entropy)."
        ),
        include=(),
        exclude=("tests/", "examples/", "benchmarks/", "repro/lint/"),
    )

    _SEEDED_CONSTRUCTORS = {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "random.Random",
    }

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.context.resolve(node.func)
        is_seed_method = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "seed"
        )
        is_noise_source = dotted is not None and (
            dotted == "NoiseSource" or dotted.endswith(".NoiseSource")
        )
        if (
            (dotted in self._SEEDED_CONSTRUCTORS)
            or is_seed_method
            or is_noise_source
        ):
            seed = constant_seed_argument(node)
            if seed is not None:
                target = dotted or f"<obj>.{node.func.attr}"  # type: ignore[union-attr]
                self.report(
                    node,
                    f"`{target}` seeded with literal constant "
                    f"{seed.value!r}; accept a seed parameter "
                    f"(None = OS entropy) instead",
                )
        self.generic_visit(node)


#: Methods on DRange/samplers that produce raw entropy.
_ENTROPY_PRODUCERS = {"random_bits", "random_bytes", "generate", "generate_fast"}

#: Attribute calls on a tainted buffer that still expose its raw content.
_FULL_CONTENT_VIEWS = {"hex", "tobytes", "tostring", "tolist", "decode"}

_LOG_METHODS = {"debug", "info", "warning", "error", "critical", "exception", "log"}


@register
class EntropyLeakRule(Rule):
    """ENT003 — no printing/logging of raw entropy buffers."""

    meta = RuleMeta(
        code="ENT003",
        name="no-entropy-leak",
        summary="raw entropy buffer printed or logged",
        severity=Severity.ERROR,
        rationale=(
            "Random output that reaches a log file or terminal is burned: "
            "an observer of the log knows the consumer's 'secret' bits. "
            "Log aggregates (counts, means, pass/fail) instead of the "
            "buffer itself. The CLI's generate command is the one "
            "sanctioned emitter and is excluded by path."
        ),
        include=("repro/",),
        exclude=("repro/cli.py", "repro/lint/") + ("tests/", "examples/", "benchmarks/"),
    )

    def __init__(self, context: FileContext, severity: Severity) -> None:
        super().__init__(context, severity)
        self._tainted: Set[str] = set()

    # -- taint collection ------------------------------------------------
    def _producer_call(self, value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        name: Optional[str] = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        return name in _ENTROPY_PRODUCERS

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._producer_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._tainted.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._producer_call(node.value):
            if isinstance(node.target, ast.Name):
                self._tainted.add(node.target.id)
        self.generic_visit(node)

    # -- sink detection --------------------------------------------------
    def _is_sink(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            return True
        dotted = self.context.resolve(func)
        if dotted is not None and dotted.startswith(("sys.stdout", "sys.stderr")):
            return dotted.endswith(".write")
        if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
            base = func.value
            base_name = ""
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            return "log" in base_name.lower()
        return False

    def _leaking_expr(self, expr: ast.AST) -> Optional[str]:
        """Name of the tainted buffer ``expr`` exposes, if any."""
        if isinstance(expr, ast.Name) and expr.id in self._tainted:
            return expr.id
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _FULL_CONTENT_VIEWS
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id in self._tainted
        ):
            return expr.func.value.id
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    leaked = self._leaking_expr(value.value)
                    if leaked is not None:
                        return leaked
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_sink(node):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                leaked = self._leaking_expr(arg)
                if leaked is not None:
                    self.report(
                        node,
                        f"raw entropy buffer `{leaked}` written to a "
                        f"log/stdout sink; emit aggregates "
                        f"(size, mean, pass/fail) instead",
                    )
                    break
        self.generic_visit(node)
