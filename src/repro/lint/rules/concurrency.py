"""CONC rules: lock discipline, checked with real dataflow.

The serving stack (PRs 4–6) is thread-heavy — a watermarked entropy
pool refilled by a background thread, token buckets, metric families —
and its invariants live in lock regions the old per-node walker could
not see.  These rules run the :mod:`repro.lint.flow` lock-set analysis
over each module:

CONC001
    An attribute declared ``# guarded-by: <lock>`` (comment on its
    ``__init__`` assignment) is read or written while the named lock is
    not in the must-held set.  Methods whose names end in ``_locked``
    follow the repo convention that the *caller* holds the lock, so
    accesses inside them are exempt — but calling such a method with no
    lock held is itself reported.
CONC002
    A blocking call (``time.sleep``, ``Condition.wait``/``wait_for``,
    worker-pool ``submit``/``join``, harvest/refill entry points like
    ``request``/``take``/``generate``) is made while holding a lock.
    ``cond.wait()`` with only ``cond`` itself held is fine — waiting
    releases the condition's lock — but any *other* lock held across
    the wait is the classic refill-under-lock deadlock shape.
CONC003
    Two locks are acquired in opposite orders somewhere in the same
    module — the textbook ABBA deadlock.  Re-entrant re-acquisition of
    the same lock is not an ordering pair.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.analysis import FunctionFlow, ModuleFlow, analyze_module
from repro.lint.rules.base import Rule, register
from repro.lint.types import RuleMeta, Severity

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

_LIBRARY_SCOPE = dict(
    include=("repro/",),
    exclude=("tests/", "examples/", "benchmarks/", "docs/"),
)


def guarded_attributes(context, cls: ast.ClassDef) -> Dict[str, Tuple[str, int]]:
    """``{attr: (lock_name, decl_line)}`` from ``# guarded-by:`` comments.

    Annotations sit on ``self.<attr> = ...`` statements (``__init__``
    or class body); the comment names the lock attribute *without* the
    ``self.`` prefix, matching how the analysis normalizes lock names.
    """
    lines = context.source.splitlines()
    guarded: Dict[str, Tuple[str, int]] = {}

    def scan_stmt(stmt: ast.stmt) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            return
        attrs = [
            t.attr
            for t in targets
            if isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
        ]
        if not attrs:
            return
        for lineno in range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1):
            if lineno - 1 >= len(lines):
                break
            match = _GUARDED_RE.search(lines[lineno - 1])
            if match:
                for attr in attrs:
                    guarded[attr] = (match.group(1), stmt.lineno)
                break

    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name != "__init__":
                continue
            for stmt in ast.walk(item):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    scan_stmt(stmt)
        elif isinstance(item, (ast.Assign, ast.AnnAssign)):
            scan_stmt(item)
    return guarded


def _method_flows(flow: ModuleFlow, cls_name: str) -> List[FunctionFlow]:
    return [f for f in flow.functions.values() if f.cls == cls_name]


def _short_name(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


@register
class GuardedAttributeRule(Rule):
    """CONC001: guarded attribute touched outside its lock region."""

    meta = RuleMeta(
        code="CONC001",
        name="guarded-attribute-outside-lock",
        summary=(
            "attribute declared `# guarded-by: <lock>` accessed without "
            "holding that lock"
        ),
        severity=Severity.ERROR,
        rationale=(
            "An unguarded read can observe torn state and an unguarded "
            "write can race the refill/serving threads; either can hand "
            "out stale or duplicated entropy bits that no downstream "
            "health test will flag."
        ),
        **_LIBRARY_SCOPE,
    )

    def visit_Module(self, node: ast.Module) -> None:
        flow = analyze_module(self.context)
        for cls_name, cls in flow.classes.items():
            guarded = guarded_attributes(self.context, cls)
            method_names = {
                _short_name(f.qualname) for f in _method_flows(flow, cls_name)
            }
            for func_flow in _method_flows(flow, cls_name):
                short = _short_name(func_flow.qualname)
                if short == "__init__":
                    continue
                self._check_function(func_flow, guarded, method_names, short)

    def _check_function(
        self,
        func_flow: FunctionFlow,
        guarded: Dict[str, Tuple[str, int]],
        method_names: Set[str],
        short: str,
    ) -> None:
        caller_holds = short.endswith("_locked")
        for node in func_flow.cfg.nodes:
            if node.nid not in func_flow.states:
                continue  # Unreachable: no lock facts, no finding.
            held = set(func_flow.held_at(node.nid))
            reported_attrs: Set[str] = set()
            for root in func_flow.cfg.node_expressions(node):
                for sub in ast.walk(root):
                    if isinstance(sub, ast.Call):
                        self._check_locked_call(sub, held, method_names)
                    if caller_holds or not guarded:
                        continue
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and sub.attr in guarded
                        and sub.attr not in reported_attrs
                    ):
                        lock, decl_line = guarded[sub.attr]
                        if lock not in held:
                            reported_attrs.add(sub.attr)
                            self.report(
                                sub,
                                f"self.{sub.attr} is `# guarded-by: {lock}` "
                                f"(declared at line {decl_line}) but is "
                                f"accessed here without holding {lock}",
                            )

    def _check_locked_call(
        self, call: ast.Call, held: Set[str], method_names: Set[str]
    ) -> None:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr.endswith("_locked")
            and func.attr in method_names
        ):
            return
        if not held:
            self.report(
                call,
                f"self.{func.attr}() expects the caller to hold a lock "
                f"(the `_locked` suffix convention) but no lock is held "
                f"here",
            )


#: Attribute names treated as blocking when called on any object.
_BLOCKING_ATTRS = {
    "sleep",
    "wait",
    "wait_for",
    "submit",
    "join",
    "request",
    "request_bytes",
    "refill_to_high",
    "take",
    "random_bits",
    "random_bytes",
    "harvest",
    "generate",
    "generate_fast",
}

#: Waiting on a condition releases that condition's own lock.
_WAIT_ATTRS = {"wait", "wait_for"}


@register
class BlockingUnderLockRule(Rule):
    """CONC002: blocking call while holding a lock."""

    meta = RuleMeta(
        code="CONC002",
        name="blocking-call-under-lock",
        summary="blocking call (sleep/wait/submit/harvest) under a held lock",
        severity=Severity.ERROR,
        rationale=(
            "Blocking while holding a lock stalls every thread contending "
            "for it; blocking on the *refill* path while holding the pool "
            "lock is a deadlock, because the refill is what would unblock "
            "the waiters."
        ),
        **_LIBRARY_SCOPE,
    )

    def visit_Module(self, node: ast.Module) -> None:
        flow = analyze_module(self.context)
        for func_flow in flow.functions.values():
            for cfg_node in func_flow.cfg.nodes:
                if cfg_node.nid not in func_flow.states:
                    continue
                held = func_flow.held_at(cfg_node.nid)
                if not held:
                    continue
                for root in func_flow.cfg.node_expressions(cfg_node):
                    for sub in ast.walk(root):
                        if isinstance(sub, ast.Call):
                            self._check_call(sub, held)

    def _check_call(self, call: ast.Call, held: Tuple[str, ...]) -> None:
        func = call.func
        dotted = self.context.resolve(func)
        if dotted == "time.sleep":
            attr: Optional[str] = "sleep"
            target: Optional[str] = None
        elif isinstance(func, ast.Attribute) and func.attr in _BLOCKING_ATTRS:
            attr = func.attr
            target = self.context.resolve(func.value)
        else:
            return
        offending = list(held)
        if attr in _WAIT_ATTRS and target is not None:
            normalized = target[len("self."):] if target.startswith(
                "self."
            ) else target
            offending = [lock for lock in offending if lock != normalized]
        if offending:
            locks = ", ".join(sorted(offending))
            self.report(
                call,
                f"blocking call .{attr}() made while holding {locks}; "
                f"release the lock (or move the call outside the `with` "
                f"block) before blocking",
            )


@register
class LockOrderRule(Rule):
    """CONC003: inconsistent lock acquisition order in one module."""

    meta = RuleMeta(
        code="CONC003",
        name="inconsistent-lock-order",
        summary="two locks acquired in opposite orders within a module",
        severity=Severity.ERROR,
        rationale=(
            "If one code path takes A then B while another takes B then "
            "A, two threads can each hold one lock and wait forever on "
            "the other (ABBA deadlock)."
        ),
        **_LIBRARY_SCOPE,
    )

    def visit_Module(self, node: ast.Module) -> None:
        flow = analyze_module(self.context)
        first_seen: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for acq in flow.acquisitions:
            for outer in acq.held_before:
                if outer == acq.lock:
                    continue  # Re-entrant RLock, not an ordering pair.
                pair = (outer, acq.lock)
                reverse = (acq.lock, outer)
                if reverse in first_seen:
                    where, line = first_seen[reverse]
                    self.report(
                        ast.Module(body=[], type_ignores=[]),
                        f"{acq.qualname} acquires {outer} then {acq.lock}, "
                        f"but {where} (line {line}) acquires them in the "
                        f"opposite order — ABBA deadlock risk",
                        line=acq.line,
                        col=0,
                    )
                elif pair not in first_seen:
                    first_seen[pair] = (acq.qualname, acq.line)
