"""Rule plugin framework: base visitor, registry, import resolution.

A rule is an :class:`ast.NodeVisitor` subclass with a ``meta`` class
attribute (:class:`~repro.lint.types.RuleMeta`) registered via
:func:`register`.  The engine instantiates one visitor per (rule, file)
pair, hands it a :class:`FileContext`, runs ``visit`` over the module
tree and collects ``violations``.

:class:`FileContext` pre-resolves the module's import aliases so rules
can ask "what dotted name does this call target?" without each rule
re-implementing import tracking — ``np.random.seed(...)`` resolves to
``numpy.random.seed`` whether numpy was imported as ``np``, via
``import numpy.random as nr``, or ``from numpy import random``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Type

from repro.lint.types import RuleMeta, Severity, Violation


class FileContext:
    """Everything a rule may consult about the file under analysis.

    ``cache`` is per-file scratch space shared by every rule visiting
    the file (the flow analysis memoizes its module summary there);
    ``project`` is shared across *all* files of one engine run so
    project-phase rules can accumulate cross-file facts.
    """

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        project: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.aliases: Dict[str, str] = _collect_aliases(tree)
        self.cache: Dict[str, object] = {}
        self.project: Dict[str, object] = (
            project if project is not None else {}
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name a ``Name``/``Attribute`` chain refers to, if any.

        Local names are rewritten through the module's import aliases;
        returns ``None`` for expressions that are not plain dotted
        chains (subscripts, calls, literals, ...).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.aliases.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object they were bound to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else local
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds ``numpy`` locally but
                    # makes the submodule reachable as an attribute chain,
                    # which `resolve` already handles via the base name.
                    aliases[local] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # Relative imports stay project-local.
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


class Rule(ast.NodeVisitor):
    """Base class for all lint rules."""

    meta: RuleMeta

    def __init__(self, context: FileContext, severity: Severity) -> None:
        self.context = context
        self.severity = severity
        self.violations: List[Violation] = []

    @classmethod
    def finalize_project(
        cls, project: Dict[str, object], severity: Severity
    ) -> List[Violation]:
        """Project-phase hook: violations computed across all files.

        Called once per engine run, after every file has been visited.
        Rules that accumulate cross-file facts in ``context.project``
        override this to turn them into findings; the default has none.
        """
        return []

    def report(
        self,
        node: ast.AST,
        message: str,
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> None:
        self.violations.append(
            Violation(
                code=self.meta.code,
                message=message,
                path=self.context.path,
                line=line if line is not None else getattr(node, "lineno", 1),
                col=col if col is not None else getattr(node, "col_offset", 0),
                severity=self.severity,
            )
        )


#: Registry of every rule class, keyed by code.  Populated at import
#: time by the :func:`register` decorator; :mod:`repro.lint.rules`
#: imports each rule module so importing the package fills this in.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY`."""
    code = cls.meta.code
    if code in REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    REGISTRY[code] = cls
    return cls


def constant_seed_argument(call: ast.Call) -> Optional[ast.expr]:
    """The literal-constant seed argument of ``call``, if one exists.

    Checks the first positional argument and any ``seed=`` keyword;
    returns the offending expression node when it is a numeric or
    string constant (``None`` literals mean "seed from OS entropy" and
    are fine).
    """
    candidates: List[ast.expr] = []
    if call.args:
        candidates.append(call.args[0])
    for keyword in call.keywords:
        if keyword.arg == "seed":
            candidates.append(keyword.value)
    for candidate in candidates:
        if isinstance(candidate, ast.Constant) and isinstance(
            candidate.value, (int, float, str)
        ) and not isinstance(candidate.value, bool):
            return candidate
    return None
