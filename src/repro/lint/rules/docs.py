"""Documentation rules (DOC...) for the public API surface.

The packages other code builds on — :mod:`repro.core`, :mod:`repro.obs`
and :mod:`repro.parallel` — are the repo's public API: examples, docs
and downstream experiments import from them directly.  Their public
functions, classes and methods must therefore say what they do; an
undocumented public name forces every reader back into the
implementation.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.lint.rules.base import Rule, register
from repro.lint.types import RuleMeta, Severity

#: Packages whose public names form the documented API surface.
_DOCUMENTED_PATHS = (
    "repro/backends/",
    "repro/core/",
    "repro/dram/modules.py",
    "repro/fleet/",
    "repro/obs/",
    "repro/parallel/",
    "repro/serving/",
)


@register
class PublicDocstringRule(Rule):
    """DOC001 — public API names must carry docstrings."""

    meta = RuleMeta(
        code="DOC001",
        name="public-docstring",
        summary="public function/class without a docstring in an API package",
        severity=Severity.WARNING,
        rationale=(
            "repro.core, repro.obs and repro.parallel are the import "
            "surface for examples, docs and downstream experiments; an "
            "undocumented public name there forces readers into the "
            "implementation to learn the contract. Give every public "
            "module-level function, class and public method of a public "
            "class a docstring (leading-underscore names and nested "
            "helpers are exempt)."
        ),
        include=_DOCUMENTED_PATHS,
        exclude=(),
    )

    def __init__(self, context, severity) -> None:  # noqa: D107 - base init
        super().__init__(context, severity)
        #: Enclosing scopes as ("class"|"function", is_public) pairs.
        self._scopes: List[Tuple[str, bool]] = []

    def _is_checkable(self, name: str) -> bool:
        """True when a def/class at the current scope needs a docstring.

        Checked positions: module level, and directly inside public
        classes (including nested public classes).  Anything beneath a
        function — closures, local classes — is an implementation
        detail; dunder methods follow language-defined contracts and
        leading-underscore names are private by convention.
        """
        if name.startswith("_"):
            return False
        if any(kind == "function" for kind, _ in self._scopes):
            return False
        return all(public for _, public in self._scopes)

    def _maybe_report(self, node: ast.AST, name: str, kind: str) -> None:
        if self._is_checkable(name) and ast.get_docstring(node) is None:
            self.report(
                node,
                f"public {kind} `{name}` has no docstring; the API "
                f"packages are the documented surface",
            )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._maybe_report(node, node.name, "class")
        self._scopes.append(("class", not node.name.startswith("_")))
        self.generic_visit(node)
        self._scopes.pop()

    def _visit_function(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        kind = "method" if self._scopes else "function"
        self._maybe_report(node, name, kind)
        self._scopes.append(("function", False))
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
