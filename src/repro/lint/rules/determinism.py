"""Determinism rules (DET...) for the simulator's reproducible paths.

The hash-seeded process-variation field (``repro.dram.variation``) and
everything layered on it must be bit-reproducible: the same seed has to
produce the same device, the same marginal cells and the same sampled
stream on every run, or characterization results and regression tests
stop meaning anything.  These rules keep wall-clock reads, OS entropy
and iteration-order nondeterminism out of those paths.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, register
from repro.lint.types import RuleMeta, Severity

#: Paths that must stay bit-reproducible given (master_seed, noise_seed).
_DETERMINISTIC_PATHS = (
    "repro/backends/",
    "repro/dram/",
    "repro/sim/",
    "repro/faults/models.py",
    "repro/fleet/",
    "repro/core/",
    "repro/memctrl/",
    "repro/parallel/",
    "repro/serving/",
)

_WALL_CLOCK_AND_OS_ENTROPY = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
}


@register
class WallClockRule(Rule):
    """DET001 — no wall clock / OS entropy in deterministic sim paths."""

    meta = RuleMeta(
        code="DET001",
        name="no-wall-clock",
        summary="wall-clock or OS-entropy call in a deterministic path",
        severity=Severity.ERROR,
        rationale=(
            "The simulator's contract is bit-reproducibility given "
            "(master_seed, noise_seed). A time.time()/os.urandom() call "
            "inside repro.dram / repro.sim / repro.core makes device "
            "populations and sampled streams differ across runs, which "
            "invalidates characterization results and makes regressions "
            "undiagnosable. Model time with the timing parameters; get "
            "nondeterminism only from NoiseSource(seed=None)."
        ),
        include=_DETERMINISTIC_PATHS,
        exclude=(),
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.context.resolve(node.func)
        if dotted in _WALL_CLOCK_AND_OS_ENTROPY:
            self.report(
                node,
                f"`{dotted}()` is nondeterministic across runs; "
                f"deterministic sim paths must derive everything from "
                f"the injected seeds",
            )
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    """DET002 — no iteration over unordered sets in deterministic paths."""

    meta = RuleMeta(
        code="DET002",
        name="no-unordered-iteration",
        summary="iteration over an unordered set in a deterministic path",
        severity=Severity.WARNING,
        rationale=(
            "Set iteration order varies with insertion history and hash "
            "randomization. When loop order feeds seeded draws (one "
            "rng call per element), the same seed yields different "
            "streams run-to-run. Iterate sorted(...) or a list/tuple; "
            "dicts are insertion-ordered on py>=3.7 and are exempt."
        ),
        include=_DETERMINISTIC_PATHS,
        exclude=(),
    )

    def _check_iterable(self, node: ast.AST, iterable: ast.expr) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            self.report(
                iterable,
                "iterating a set literal/comprehension has no stable "
                "order; wrap in sorted(...)",
            )
            return
        if isinstance(iterable, ast.Call):
            dotted = self.context.resolve(iterable.func)
            if dotted in {"set", "frozenset"}:
                self.report(
                    iterable,
                    f"iterating `{dotted}(...)` has no stable order; "
                    f"wrap in sorted(...)",
                )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._check_iterable(node, generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
