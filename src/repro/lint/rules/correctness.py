"""Correctness rules (COR...) for statistical code.

The NIST/DIEHARD layers traffic in p-values and probabilities — floats
produced by long chains of transcendental math.  Exact equality on such
values is almost always a latent bug (a pass/fail branch that can never
fire, or fires on rounding noise), and mutable default arguments are a
classic source of cross-call state leaks in long-lived services.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.rules.base import Rule, register
from repro.lint.types import RuleMeta, Severity

#: Name components that mark a value as a probability-like float.
_PROBABILITY_PARTS = {
    "p",
    "pv",
    "pval",
    "pvalue",
    "pvalues",
    "prob",
    "probs",
    "probability",
    "probabilities",
    "alpha",
    "entropy",
}


def _probability_name(node: ast.expr) -> Optional[str]:
    """The probability-ish identifier ``node`` refers to, if any."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    parts = name.lower().split("_")
    if any(part in _PROBABILITY_PARTS for part in parts):
        return name
    return None


@register
class FloatEqualityRule(Rule):
    """COR001 — no float ``==``/``!=`` on p-values/probabilities."""

    meta = RuleMeta(
        code="COR001",
        name="no-float-equality",
        summary="exact equality on a float/probability value",
        severity=Severity.WARNING,
        rationale=(
            "p-values and probabilities come out of floating-point "
            "pipelines; `p == 0.05` or `prob != 1.0` compares rounding "
            "noise and yields branches that never (or spuriously) fire. "
            "Use ordered comparisons against a threshold, math.isclose, "
            "or a <= guard for degenerate-denominator checks."
        ),
        include=(),
        exclude=("tests/", "benchmarks/", "repro/lint/"),
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            flagged = False
            for operand in pair:
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    self.report(
                        node,
                        f"exact equality against float literal "
                        f"{operand.value!r}; use an ordered comparison or "
                        f"math.isclose",
                    )
                    flagged = True
                    break
            if flagged:
                continue
            for operand in pair:
                name = _probability_name(operand)
                if name is not None:
                    self.report(
                        node,
                        f"exact equality on probability-like value "
                        f"`{name}`; compare against a threshold instead",
                    )
                    break
        self.generic_visit(node)


_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
    "collections.deque",
}


@register
class MutableDefaultRule(Rule):
    """COR002 — no mutable default arguments."""

    meta = RuleMeta(
        code="COR002",
        name="no-mutable-default",
        summary="mutable default argument",
        severity=Severity.WARNING,
        rationale=(
            "Default values are evaluated once at definition time; a "
            "list/dict/set default is shared across every call, so state "
            "from one request bleeds into the next — fatal in a "
            "long-lived RNG service. Default to None and construct "
            "inside the function."
        ),
        include=(),
        exclude=(),
    )

    def _check_default(self, node: ast.AST, default: ast.expr) -> None:
        mutable = isinstance(
            default,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        )
        if not mutable and isinstance(default, ast.Call):
            dotted = self.context.resolve(default.func)
            mutable = dotted in _MUTABLE_FACTORIES
        if mutable:
            self.report(
                default,
                "mutable default argument is shared across calls; "
                "default to None and build inside the function",
                line=default.lineno,
            )

    def _check_args(self, node: ast.AST, args: ast.arguments) -> None:
        for default in args.defaults:
            self._check_default(node, default)
        for default in args.kw_defaults:
            if default is not None:
                self._check_default(node, default)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node, node.args)
        self.generic_visit(node)
