"""EPOCH rules: the ``state_epoch`` invalidation contract.

PR 3's compiled sampling plans and probability planes cache per-device
state and are invalidated by monotonic ``state_epoch`` counters.  The
contract is absolute: *every* method that mutates sensing-relevant
state must bump its epoch attribute on *every* control-flow path to
exit — a single missed path serves bits sampled from a stale plan,
which SP 800-90B health tests cannot detect after the fact.

EPOCH001 encodes the mutation lists of the three epoch-bearing classes
(:class:`~repro.dram.bank.Bank`, :class:`~repro.dram.device.DramDevice`,
:class:`~repro.faults.injector.FaultInjector`) and asks the CFG a path
question for each mutation site M: does a path ``entry → M → exit``
exist that avoids every bump statement?  Bump-before-mutation (the
injector's style), bump-after on the same branch, and bump-in-
``finally`` all satisfy the contract; a branch that mutates and falls
through without bumping does not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.lint.flow.analysis import ModuleFlow, analyze_module
from repro.lint.flow.cfg import CFG, KIND_STMT
from repro.lint.rules.base import Rule, register
from repro.lint.types import RuleMeta, Severity


@dataclass(frozen=True)
class EpochContract:
    """What counts as a mutation, and what counts as the bump."""

    bump_attr: str
    #: Plain ``self.<attr> = ...`` assignments that invalidate caches.
    value_attrs: FrozenSet[str] = frozenset()
    #: Containers whose item-assignment / mutating-method calls count.
    container_attrs: FrozenSet[str] = frozenset()
    #: Methods returning aliases of protected mutable state: a local
    #: bound from ``x = self.<method>(...)`` is tracked and ``x[...] =``
    #: counts as a mutation.
    alias_methods: FrozenSet[str] = frozenset()


#: Mutation lists per epoch-bearing class (keyed by class name so test
#: fixtures exercising e.g. ``Bank`` under a matching path light up).
CONTRACTS: Dict[str, EpochContract] = {
    "Bank": EpochContract(
        bump_attr="_epoch",
        container_attrs=frozenset({"_rows"}),
        alias_methods=frozenset({"_row_bits"}),
    ),
    "DramDevice": EpochContract(
        bump_attr="_epoch",
        value_attrs=frozenset({"_temperature_c", "_vdd_ratio"}),
    ),
    "FaultInjector": EpochContract(
        bump_attr="_fault_epoch",
        container_attrs=frozenset({"_schedule"}),
    ),
    "QuacPlane": EpochContract(
        bump_attr="_epoch_seen",
        container_attrs=frozenset({"_probs"}),
    ),
}

#: Method names that mutate a container in place.
_MUTATOR_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


def _is_self_attr(node: ast.AST, names: FrozenSet[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in names
    )


def _iter_assign_targets(stmt: ast.stmt) -> List[ast.expr]:
    if isinstance(stmt, ast.Assign):
        flat: List[ast.expr] = []
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        return flat
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    return []


def _is_bump(stmt: ast.stmt, bump_attr: str) -> bool:
    """Any assignment (plain or augmented) to ``self.<bump_attr>``."""
    for target in _iter_assign_targets(stmt):
        if _is_self_attr(target, frozenset({bump_attr})):
            return not isinstance(stmt, ast.Delete)
    return False


def _mutation_description(
    stmt: ast.stmt, contract: EpochContract, aliases: Set[str]
) -> str:
    """Non-empty description when ``stmt`` mutates contract state."""
    for target in _iter_assign_targets(stmt):
        if _is_self_attr(target, contract.value_attrs):
            return f"self.{target.attr}"
        if isinstance(target, ast.Subscript):
            base = target.value
            if _is_self_attr(base, contract.container_attrs):
                return f"self.{base.attr}[...]"
            if isinstance(base, ast.Name) and base.id in aliases:
                return f"{base.id}[...] (alias of protected state)"
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and _is_self_attr(func.value, contract.container_attrs)
        ):
            return f"self.{func.value.attr}.{func.attr}()"
    return ""


def _collect_aliases(
    func: "ast.FunctionDef | ast.AsyncFunctionDef", contract: EpochContract
) -> Set[str]:
    """Locals bound from ``x = self.<alias_method>(...)`` anywhere."""
    if not contract.alias_methods:
        return set()
    aliases: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "self"
            and value.func.attr in contract.alias_methods
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


@register
class EpochBumpRule(Rule):
    """EPOCH001: sensing-state mutation without a bump on every path."""

    meta = RuleMeta(
        code="EPOCH001",
        name="epoch-bump-missing-on-path",
        summary=(
            "sensing-relevant state mutated without bumping state_epoch "
            "on every path to exit"
        ),
        severity=Severity.ERROR,
        rationale=(
            "Compiled sampling plans and probability planes are cached "
            "per epoch; a mutation that reaches exit without a bump on "
            "some path lets a stale plan keep serving bits for state "
            "that no longer exists."
        ),
        include=(
            "repro/dram/bank.py",
            "repro/dram/device.py",
            "repro/dram/quac.py",
            "repro/faults/injector.py",
        ),
    )

    def visit_Module(self, node: ast.Module) -> None:
        flow = analyze_module(self.context)
        for cls_name in flow.classes:
            contract = CONTRACTS.get(cls_name)
            if contract is None:
                continue
            for func_flow in flow.functions.values():
                if func_flow.cls != cls_name:
                    continue
                short = func_flow.qualname.rsplit(".", 1)[-1]
                if short == "__init__":
                    continue  # Construction precedes any cached plan.
                self._check_function(func_flow.cfg, func_flow.func, contract)

    def _check_function(
        self,
        cfg: CFG,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        contract: EpochContract,
    ) -> None:
        aliases = _collect_aliases(func, contract)
        bump_nodes: Set[int] = set()
        mutations: List = []
        for cfg_node in cfg.nodes:
            if cfg_node.kind != KIND_STMT or cfg_node.stmt is None:
                continue
            stmt = cfg_node.stmt
            if not isinstance(stmt, ast.stmt):
                continue
            if _is_bump(stmt, contract.bump_attr):
                bump_nodes.add(cfg_node.nid)
                continue
            description = _mutation_description(stmt, contract, aliases)
            if description:
                mutations.append((cfg_node, description))
        for cfg_node, description in mutations:
            unbumped_before = cfg.reaches(
                cfg.entry.nid, cfg_node.nid, avoiding=bump_nodes
            )
            unbumped_after = cfg.reaches(
                cfg_node.nid, cfg.exit.nid, avoiding=bump_nodes
            )
            if unbumped_before and unbumped_after:
                self.report(
                    cfg_node.stmt,
                    f"{description} is mutated here but "
                    f"self.{contract.bump_attr} is not bumped on every "
                    f"path to exit — cached plans keyed on state_epoch "
                    f"go stale",
                )
