"""Rule registry: importing this package registers every built-in rule.

Rules self-register via :func:`repro.lint.rules.base.register`; the
imports below are what triggers that.  Third-party or experiment-local
rules can use the same decorator before constructing a
:class:`~repro.lint.engine.Linter`.
"""

from repro.lint.rules import (  # noqa: F401
    concurrency,
    correctness,
    determinism,
    docs,
    entropy,
    epoch,
    obscontract,
)
from repro.lint.rules.base import REGISTRY, FileContext, Rule, register

__all__ = ["REGISTRY", "FileContext", "Rule", "register"]
