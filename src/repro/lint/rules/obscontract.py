"""OBS rules: the declared-metric ``CATALOG`` contract.

PR 5 made metric families declarative: every name the stack emits must
be declared in :data:`repro.obs.catalog.CATALOG` (so typos raise at
runtime) and documented.  That contract is only enforced where code
actually *runs*, though — a metric emitted from a cold error path with
a typo'd name is a latent crash, and a catalog entry nothing emits is
dead documentation.  These rules close both gaps statically:

OBS001
    A string-literal metric name passed to an emission call
    (``counter_add``/``gauge_set``/``observe``/``bound_*``/registry
    ``counter``/``gauge``/``histogram``/``value``) is not declared in
    the live ``CATALOG``.
OBS002
    A ``CATALOG`` entry has no use site anywhere in the swept tree.
    This is a *project-phase* rule: per-file visits collect catalog
    entries and ``drange_*`` string usages into the shared project
    state, and the engine's finalize hook reports leftovers anchored
    at the catalog declaration lines.  It only fires when the sweep
    included both the catalog and at least one other file, so linting
    a single unrelated module never produces spurious coverage noise.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.rules.base import Rule, register
from repro.lint.types import RuleMeta, Severity, Violation

#: Facade / bound-handle entry points whose first argument is a name.
_FACADE_FUNCS = {
    "counter_add",
    "gauge_set",
    "observe",
    "bound_counter",
    "bound_gauge",
    "bound_histogram",
    "_instrument",
}

#: Registry methods; only ``drange_``-prefixed literals are checked so
#: unrelated objects with a ``counter(...)`` method don't false-alarm.
_REGISTRY_METHODS = {"counter", "gauge", "histogram", "value"}

_CATALOG_PATH_SUFFIX = "repro/obs/catalog.py"

#: Project-state keys shared between per-file visits and finalize.
_KEY_ENTRIES = "obs_catalog_entries"
_KEY_USES = "obs_metric_uses"
_KEY_SCANNED = "obs_nonconfig_files"


def _live_catalog() -> Dict[str, object]:
    from repro.obs.catalog import CATALOG

    return CATALOG


def _metric_name_argument(call: ast.Call) -> Optional[Tuple[str, ast.expr]]:
    """``(attr_or_func_name, first_literal_arg)`` when checkable."""
    func = call.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    arg: Optional[ast.expr] = call.args[0] if call.args else None
    if arg is None:
        for keyword in call.keywords:
            if keyword.arg == "name":
                arg = keyword.value
                break
    if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
        return None
    return name, arg


@register
class UndeclaredMetricRule(Rule):
    """OBS001: metric name literal not declared in the catalog."""

    meta = RuleMeta(
        code="OBS001",
        name="undeclared-metric-name",
        summary=(
            "metric name passed to counter/gauge/histogram/bound_* is "
            "not declared in repro.obs.catalog.CATALOG"
        ),
        severity=Severity.ERROR,
        rationale=(
            "The catalog is the contract between emission sites, the "
            "exporters and the docs; an undeclared name raises at "
            "runtime — but only when that code path runs, which for "
            "error-path metrics may be never until production."
        ),
        include=("repro/",),
        exclude=(
            "tests/",
            "examples/",
            "benchmarks/",
            "docs/",
            _CATALOG_PATH_SUFFIX,
        ),
    )

    def visit_Call(self, call: ast.Call) -> None:
        checked = _metric_name_argument(call)
        if checked is not None:
            name, arg = checked
            value = arg.value  # type: ignore[attr-defined]
            assert isinstance(value, str)
            if name in _FACADE_FUNCS or (
                name in _REGISTRY_METHODS and value.startswith("drange_")
            ):
                if value not in _live_catalog():
                    self.report(
                        arg,
                        f"metric name {value!r} is not declared in "
                        f"repro.obs.catalog.CATALOG; add an entry (and a "
                        f"docs row) or fix the typo",
                    )
        self.generic_visit(call)


@register
class UnusedCatalogEntryRule(Rule):
    """OBS002: catalog entry with no use site in the swept tree."""

    meta = RuleMeta(
        code="OBS002",
        name="unused-catalog-entry",
        summary="CATALOG declares a metric no swept code ever emits",
        severity=Severity.WARNING,
        rationale=(
            "An entry nothing emits is dead documentation: dashboards "
            "and alerts built on it silently watch a flatline.  Either "
            "wire up the emission or delete the declaration."
        ),
        include=("repro/",),
        exclude=("tests/", "examples/", "benchmarks/", "docs/"),
    )

    def visit_Module(self, node: ast.Module) -> None:
        project = self.context.project
        if self.context.path.endswith(_CATALOG_PATH_SUFFIX):
            project[_KEY_ENTRIES] = {
                "path": self.context.path,
                "entries": self._catalog_entry_lines(node),
            }
            return
        project[_KEY_SCANNED] = int(project.get(_KEY_SCANNED, 0)) + 1
        uses: Set[str] = project.setdefault(_KEY_USES, set())  # type: ignore[assignment]
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Constant)
                and isinstance(sub.value, str)
                and sub.value.startswith("drange_")
            ):
                uses.add(sub.value)

    @staticmethod
    def _catalog_entry_lines(tree: ast.Module) -> Dict[str, int]:
        """``{metric_name: decl_line}`` from the ``CATALOG = {...}`` literal."""
        entries: Dict[str, int] = {}
        for stmt in tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "CATALOG" for t in targets
            ):
                continue
            value = stmt.value if isinstance(stmt, ast.Assign) else stmt.value
            if isinstance(value, ast.Dict):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        entries[key.value] = key.lineno
        return entries

    @classmethod
    def finalize_project(
        cls, project: Dict[str, object], severity: Severity
    ) -> List[Violation]:
        declared = project.get(_KEY_ENTRIES)
        if not isinstance(declared, dict) or not project.get(_KEY_SCANNED):
            return []  # Need the catalog AND at least one other file.
        uses = project.get(_KEY_USES, set())
        assert isinstance(uses, set)
        violations: List[Violation] = []
        entries = declared["entries"]
        assert isinstance(entries, dict)
        for name in sorted(entries):
            if name in uses:
                continue
            violations.append(
                Violation(
                    code=cls.meta.code,
                    message=(
                        f"catalog entry {name!r} has no use site in the "
                        f"swept tree — wire up the emission or delete "
                        f"the declaration (and its docs row)"
                    ),
                    path=str(declared["path"]),
                    line=int(entries[name]),
                    col=0,
                    severity=severity,
                )
            )
        return violations
