"""Data-bus bandwidth accounting over command traces.

Converts a timestamped command trace into occupancy statistics: how
long the data bus carried bursts, what fraction of the window was
idle, and the achieved transfer rate.  This is the measurement side of
the Section 7.3 interference study — the analytic workload model
predicts idle fractions, and this module verifies them on the traces
the scheduler actually produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import CommandKind
from repro.dram.timing import TimingParameters
from repro.sim.trace import CommandTrace


@dataclass(frozen=True)
class BusStatistics:
    """Occupancy summary of one trace window."""

    window_ns: float
    read_bursts: int
    write_bursts: int
    busy_ns: float

    @property
    def utilization(self) -> float:
        """Fraction of the window the data bus carried bursts."""
        if self.window_ns <= 0:
            return 0.0
        return min(self.busy_ns / self.window_ns, 1.0)

    @property
    def idle_fraction(self) -> float:
        """Fraction of the window available for D-RaNGe bursts."""
        return 1.0 - self.utilization

    @property
    def transfers(self) -> int:
        """Total bursts moved."""
        return self.read_bursts + self.write_bursts


def bus_statistics(
    trace: CommandTrace,
    timings: TimingParameters,
    window_ns: float = None,
) -> BusStatistics:
    """Data-bus occupancy of ``trace`` over ``window_ns``.

    Each READ/WRITE occupies the bus for one burst; bursts from a
    well-formed trace cannot overlap (the engine enforces tCCD ≥ burst
    pacing), so busy time is simply bursts × burst duration.
    """
    if window_ns is None:
        window_ns = trace.duration_ns + timings.tcl_ns + timings.burst_ns
    if window_ns < trace.duration_ns:
        raise ValueError(
            f"window {window_ns} ns shorter than the trace span "
            f"{trace.duration_ns} ns"
        )
    reads = trace.count(CommandKind.READ)
    writes = trace.count(CommandKind.WRITE)
    busy = (reads + writes) * timings.burst_ns
    return BusStatistics(
        window_ns=window_ns,
        read_bursts=reads,
        write_bursts=writes,
        busy_ns=busy,
    )


def achieved_bandwidth_gbps(
    stats: BusStatistics, bytes_per_burst: int = 64
) -> float:
    """Payload bandwidth the trace achieved, in GB/s."""
    if stats.window_ns <= 0:
        return 0.0
    return stats.transfers * bytes_per_burst / stats.window_ns
