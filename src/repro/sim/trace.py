"""Timestamped command traces produced by the timing engine.

A :class:`CommandTrace` is the interchange format between the timing
engine (:mod:`repro.sim.engine`) and the energy model
(:mod:`repro.power.model`), mirroring how the paper feeds Ramulator
output traces into DRAMPower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.dram.commands import CommandKind


@dataclass(frozen=True)
class TimedCommand:
    """One command with the issue time the engine assigned to it."""

    kind: CommandKind
    bank: Optional[int]
    issue_ns: float

    def __post_init__(self) -> None:
        if self.issue_ns < 0:
            raise ValueError(f"issue_ns must be non-negative, got {self.issue_ns}")


class CommandTrace:
    """An append-only, time-ordered sequence of issued commands."""

    def __init__(self) -> None:
        self._commands: List[TimedCommand] = []

    def append(self, kind: CommandKind, bank: Optional[int], issue_ns: float) -> None:
        """Record a command issued at ``issue_ns``."""
        if self._commands and issue_ns < self._commands[-1].issue_ns:
            raise ValueError(
                f"trace must be time-ordered: {issue_ns} < "
                f"{self._commands[-1].issue_ns}"
            )
        self._commands.append(TimedCommand(kind, bank, issue_ns))

    def __len__(self) -> int:
        return len(self._commands)

    def __iter__(self) -> Iterator[TimedCommand]:
        return iter(self._commands)

    def __getitem__(self, index: int) -> TimedCommand:
        return self._commands[index]

    @property
    def duration_ns(self) -> float:
        """Time of the last command in the trace (0 for an empty trace)."""
        if not self._commands:
            return 0.0
        return self._commands[-1].issue_ns

    def count(self, kind: CommandKind) -> int:
        """Number of commands of ``kind`` in the trace."""
        return sum(1 for command in self._commands if command.kind is kind)
