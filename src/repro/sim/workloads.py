"""Synthetic memory workloads for the system-interference study.

The paper (Section 7.3, "Low System Interference") runs SPEC CPU2006
workloads in simulation and measures how much *idle* DRAM bandwidth is
left for D-RaNGe commands, concluding D-RaNGe can sustain an average
(max, min) of 83.1 (98.3, 49.1) Mb/s with no significant slowdown.

SPEC CPU2006 traces are proprietary, so this module substitutes a
catalog of synthetic workloads whose memory intensities follow the
well-published characterization of the suite (memory-bound outliers
like ``mcf``/``lbm``/``libquantum`` at one end, compute-bound ``povray``
/``gamess`` at the other).  Each workload is summarized by its average
DRAM bandwidth demand; the interference experiment converts demand into
idle-bus fraction and thence into achievable TRNG throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.noise import NoiseSource


@dataclass(frozen=True)
class Workload:
    """One synthetic workload with a steady-state bandwidth demand."""

    name: str
    mpki: float
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.mpki < 0:
            raise ConfigurationError(f"mpki must be non-negative, got {self.mpki}")
        if self.bandwidth_gbps < 0:
            raise ConfigurationError(
                f"bandwidth_gbps must be non-negative, got {self.bandwidth_gbps}"
            )

    def bus_utilization(self, channel_capacity_gbps: float) -> float:
        """Fraction of the channel this workload keeps busy, in [0, 1]."""
        if channel_capacity_gbps <= 0:
            raise ConfigurationError(
                f"channel capacity must be positive, got {channel_capacity_gbps}"
            )
        return min(self.bandwidth_gbps / channel_capacity_gbps, 1.0)

    def idle_fraction(self, channel_capacity_gbps: float) -> float:
        """Fraction of the channel left idle for D-RaNGe commands."""
        return 1.0 - self.bus_utilization(channel_capacity_gbps)


#: Synthetic stand-ins for the SPEC CPU2006 suite.  MPKI and bandwidth
#: values follow the published memory-intensity ordering of the suite
#: (e.g. the characterizations in the memory-scheduling papers the
#: authors cite [74, 107, 108]); absolute numbers are representative,
#: not measured.
SPEC_CPU2006 = (
    Workload("perlbench", 0.8, 0.42),
    Workload("bzip2", 3.5, 1.15),
    Workload("gcc", 6.2, 1.50),
    Workload("bwaves", 18.7, 2.35),
    Workload("gamess", 0.1, 0.12),
    Workload("mcf", 67.8, 3.25),
    Workload("milc", 25.8, 2.60),
    Workload("zeusmp", 4.7, 1.30),
    Workload("gromacs", 0.7, 0.38),
    Workload("cactusADM", 4.4, 1.25),
    Workload("leslie3d", 20.9, 2.45),
    Workload("namd", 0.3, 0.21),
    Workload("gobmk", 0.6, 0.34),
    Workload("dealII", 5.2, 1.35),
    Workload("soplex", 21.2, 2.50),
    Workload("povray", 0.1, 0.10),
    Workload("calculix", 1.4, 0.55),
    Workload("hmmer", 0.9, 0.45),
    Workload("sjeng", 0.4, 0.28),
    Workload("GemsFDTD", 15.6, 2.20),
    Workload("libquantum", 25.4, 2.80),
    Workload("h264ref", 1.3, 0.52),
    Workload("tonto", 0.5, 0.30),
    Workload("lbm", 31.9, 3.10),
    Workload("omnetpp", 21.5, 2.40),
    Workload("astar", 9.2, 1.70),
    Workload("wrf", 8.1, 1.60),
    Workload("sphinx3", 12.9, 1.95),
    Workload("xalancbmk", 23.9, 2.55),
)


def spec_workloads() -> Sequence[Workload]:
    """The synthetic SPEC CPU2006 catalog."""
    return SPEC_CPU2006


@dataclass(frozen=True)
class MemoryRequest:
    """One DRAM request in a generated access trace."""

    arrival_ns: float
    bank: int
    row: int
    word: int
    is_write: bool


def generate_request_trace(
    workload: Workload,
    duration_ns: float,
    channel_capacity_gbps: float,
    banks: int = 8,
    rows: int = 4096,
    words_per_row: int = 16,
    write_fraction: float = 0.3,
    row_locality: float = 0.6,
    noise: Optional[NoiseSource] = None,
) -> List[MemoryRequest]:
    """Poisson request trace matching the workload's bandwidth demand.

    Request rate is derived from the demand assuming 64-byte transfers;
    ``row_locality`` is the probability that a request hits the previous
    row in its bank (open-row locality), which the FR-FCFS scheduler in
    :mod:`repro.memctrl.scheduler` exploits.
    """
    if duration_ns <= 0:
        raise ConfigurationError(f"duration_ns must be positive, got {duration_ns}")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    if not 0.0 <= row_locality <= 1.0:
        raise ConfigurationError(f"row_locality must be in [0, 1], got {row_locality}")
    noise = noise if noise is not None else NoiseSource()

    bytes_per_request = 64.0
    requests_per_ns = workload.bandwidth_gbps / 8.0 / bytes_per_request
    expected = requests_per_ns * duration_ns
    count = int(noise.integers(max(int(expected * 0.9), 1), int(expected * 1.1) + 2))

    arrivals = np.sort(noise.uniform(count) * duration_ns)
    last_row = np.zeros(banks, dtype=np.int64)
    out: List[MemoryRequest] = []
    bank_choices = noise.integers(0, banks, count)
    row_choices = noise.integers(0, rows, count)
    word_choices = noise.integers(0, words_per_row, count)
    locality_draws = noise.uniform(count)
    write_draws = noise.uniform(count)
    for i in range(count):
        bank = int(bank_choices[i])
        if locality_draws[i] < row_locality:
            row = int(last_row[bank])
        else:
            row = int(row_choices[i])
            last_row[bank] = row
        out.append(
            MemoryRequest(
                arrival_ns=float(arrivals[i]),
                bank=bank,
                row=row,
                word=int(word_choices[i]),
                is_write=bool(write_draws[i] < write_fraction),
            )
        )
    return out
