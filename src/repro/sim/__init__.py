"""DRAM command-timing simulation (the reproduction's mini-Ramulator).

The paper uses Ramulator [2, 76] to time Algorithm 2's core loop and
DRAMPower to convert command traces into energy.  This package provides
the timing half: :mod:`repro.sim.engine` enforces JEDEC inter-command
constraints and assigns issue timestamps to command streams,
:mod:`repro.sim.trace` defines the timestamped trace records, and
:mod:`repro.sim.workloads` synthesizes memory-intensity traces for the
system-interference study (Section 7.3).
"""

from repro.sim.bandwidth import BusStatistics, bus_statistics
from repro.sim.engine import TimingEngine
from repro.sim.trace import CommandTrace, TimedCommand

__all__ = [
    "BusStatistics",
    "CommandTrace",
    "TimedCommand",
    "TimingEngine",
    "bus_statistics",
]
