"""Constraint-based DRAM command timing engine.

Given a stream of commands for one channel, the engine computes the
earliest cycle-aligned time each command may legally issue under the
JEDEC constraints of the active :class:`~repro.dram.timing
.TimingParameters`, and tracks the resulting bank/bus state.  It plays
the role Ramulator [2, 76] plays in the paper: timing Algorithm 2's core
loop (Figure 8, Equation 1), giving access latencies to the latency
study, and emitting timestamped traces for the energy model.

Supported constraints:

======================= =======================================================
ACT                     tRP after PRE (same bank), tRC after previous ACT
                        (same bank), tRRD after any ACT (same rank), at most
                        four ACTs per rolling tFAW window
READ                    tRCD after ACT (reducible — D-RaNGe's knob), tCCD
                        after any column command, write-to-read turnaround
                        (tCWL + burst + tWTR)
WRITE                   tRCD after ACT, tCCD, read-to-write turnaround
                        (tCL + burst + bus turnaround − tCWL)
PRE                     tRAS after ACT, tRTP after READ, write recovery
                        (tCWL + burst + tWR) after WRITE
REF                     tRP after the last PRE; occupies the rank for tRFC
======================= =======================================================

The command bus carries one command per clock; the engine serializes
commands that would otherwise collide on the bus.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.dram.commands import CommandKind
from repro.dram.timing import TimingParameters
from repro.errors import ProtocolError
from repro.sim.trace import CommandTrace
from repro.units import cycles_to_ns, ns_to_cycles

#: Data-bus turnaround dead time between a read burst and a write burst.
BUS_TURNAROUND_NS = 2.5

#: ACTs allowed inside one rolling tFAW window.
FAW_ACTS = 4


class _BankState:
    """Mutable per-bank timing state."""

    __slots__ = ("last_act_ns", "last_pre_ns", "last_read_ns", "last_write_ns", "open_row")

    def __init__(self) -> None:
        self.last_act_ns = float("-inf")
        self.last_pre_ns = float("-inf")
        self.last_read_ns = float("-inf")
        self.last_write_ns = float("-inf")
        self.open_row: Optional[int] = None


class TimingEngine:
    """Assigns legal issue times to a channel's command stream.

    Parameters
    ----------
    timings:
        The active timing set.  Pass a preset with a reduced tRCD (via
        :meth:`TimingParameters.with_trcd`) to model D-RaNGe's
        failure-inducing accesses, or give per-command overrides through
        ``trcd_ns`` arguments.
    banks:
        Banks in the rank the engine models.
    """

    def __init__(self, timings: TimingParameters, banks: int = 8) -> None:
        if banks <= 0:
            raise ValueError(f"banks must be positive, got {banks}")
        self._timings = timings
        self._banks: Dict[int, _BankState] = {i: _BankState() for i in range(banks)}
        self._now_ns = 0.0
        self._bus_free_ns = 0.0
        self._last_act_any_ns = float("-inf")
        self._act_history: Deque[float] = deque(maxlen=FAW_ACTS)
        self._last_col_ns = float("-inf")
        self._last_read_issue_ns = float("-inf")
        self._last_write_issue_ns = float("-inf")
        self._ref_busy_until_ns = 0.0
        self._trace = CommandTrace()
        # Bank-group state (DDR4): banks are striped across groups; the
        # last ACT / column command per group enforces the long timings.
        self._groups = max(int(getattr(timings, "bank_groups", 1) or 1), 1)
        self._last_act_group: Dict[int, float] = {}
        self._last_col_group: Dict[int, float] = {}

    def bank_group(self, bank: int) -> int:
        """Bank-group index of ``bank`` (banks striped across groups)."""
        return bank % self._groups

    @property
    def timings(self) -> TimingParameters:
        """Timing set the engine enforces."""
        return self._timings

    @property
    def now_ns(self) -> float:
        """Issue time of the most recent command."""
        return self._now_ns

    @property
    def trace(self) -> CommandTrace:
        """Timestamped trace of everything issued so far."""
        return self._trace

    def _bank(self, bank: int) -> _BankState:
        try:
            return self._banks[bank]
        except KeyError:
            raise ProtocolError(f"bank {bank} unknown to the engine") from None

    def _align(self, t_ns: float) -> float:
        """Snap a time to the command-clock grid (round up)."""
        cycles = ns_to_cycles(max(t_ns, 0.0), self._timings.clock_mhz)
        return cycles_to_ns(cycles, self._timings.clock_mhz)

    def _claim_bus(self, earliest_ns: float) -> float:
        """Earliest command-bus slot at or after ``earliest_ns``."""
        t = self._align(max(earliest_ns, self._bus_free_ns, self._ref_busy_until_ns))
        cycle_ns = cycles_to_ns(1, self._timings.clock_mhz)
        self._bus_free_ns = t + cycle_ns
        return t

    def activate(self, bank: int, row: int) -> float:
        """Issue an ACT; returns its issue time in ns."""
        state = self._bank(bank)
        if state.open_row is not None:
            raise ProtocolError(
                f"bank {bank}: ACT while row {state.open_row} is open"
            )
        t = self._timings
        earliest = max(
            state.last_pre_ns + t.trp_ns,
            state.last_act_ns + t.trc_ns,
            self._last_act_any_ns + t.trrd_ns,
        )
        if self._groups > 1 and t.trrd_l_ns is not None:
            group_last = self._last_act_group.get(self.bank_group(bank))
            if group_last is not None:
                earliest = max(earliest, group_last + t.trrd_l_ns)
        if len(self._act_history) == FAW_ACTS:
            earliest = max(earliest, self._act_history[0] + t.tfaw_ns)
        issue = self._claim_bus(earliest)
        state.last_act_ns = issue
        state.open_row = row
        self._last_act_any_ns = issue
        self._last_act_group[self.bank_group(bank)] = issue
        self._act_history.append(issue)
        self._now_ns = issue
        self._trace.append(CommandKind.ACT, bank, issue)
        return issue

    def read(self, bank: int, trcd_ns: Optional[float] = None) -> float:
        """Issue a READ; ``trcd_ns`` overrides the ACT→READ gap."""
        state = self._bank(bank)
        if state.open_row is None:
            raise ProtocolError(f"bank {bank}: READ with no open row")
        t = self._timings
        trcd = t.trcd_ns if trcd_ns is None else trcd_ns
        earliest = max(
            state.last_act_ns + trcd,
            self._last_col_ns + t.tccd_ns,
            # Write-to-read turnaround.
            self._last_write_issue_ns + t.tcwl_ns + t.burst_ns + t.twtr_ns,
        )
        if self._groups > 1 and t.tccd_l_ns is not None:
            group_last = self._last_col_group.get(self.bank_group(bank))
            if group_last is not None:
                earliest = max(earliest, group_last + t.tccd_l_ns)
        issue = self._claim_bus(earliest)
        state.last_read_ns = issue
        self._last_col_ns = issue
        self._last_col_group[self.bank_group(bank)] = issue
        self._last_read_issue_ns = issue
        self._now_ns = issue
        self._trace.append(CommandKind.READ, bank, issue)
        return issue

    def write(self, bank: int) -> float:
        """Issue a WRITE."""
        state = self._bank(bank)
        if state.open_row is None:
            raise ProtocolError(f"bank {bank}: WRITE with no open row")
        t = self._timings
        earliest = max(
            state.last_act_ns + t.trcd_ns,
            self._last_col_ns + t.tccd_ns,
            # Read-to-write: the write burst must start after the read
            # burst drains plus bus turnaround.
            self._last_read_issue_ns
            + t.tcl_ns
            + t.burst_ns
            + BUS_TURNAROUND_NS
            - t.tcwl_ns,
        )
        if self._groups > 1 and t.tccd_l_ns is not None:
            group_last = self._last_col_group.get(self.bank_group(bank))
            if group_last is not None:
                earliest = max(earliest, group_last + t.tccd_l_ns)
        issue = self._claim_bus(earliest)
        state.last_write_ns = issue
        self._last_col_ns = issue
        self._last_col_group[self.bank_group(bank)] = issue
        self._last_write_issue_ns = issue
        self._now_ns = issue
        self._trace.append(CommandKind.WRITE, bank, issue)
        return issue

    def precharge(self, bank: int) -> float:
        """Issue a PRE."""
        state = self._bank(bank)
        t = self._timings
        earliest = max(
            state.last_act_ns + t.tras_ns,
            state.last_read_ns + t.trtp_ns,
            state.last_write_ns + t.tcwl_ns + t.burst_ns + t.twr_ns,
        )
        issue = self._claim_bus(earliest)
        state.last_pre_ns = issue
        state.open_row = None
        self._now_ns = issue
        self._trace.append(CommandKind.PRE, bank, issue)
        return issue

    def refresh(self) -> float:
        """Issue an all-bank REF; the rank is busy for tRFC afterwards."""
        t = self._timings
        earliest = 0.0
        for state in self._banks.values():
            if state.open_row is not None:
                raise ProtocolError("REF requires all banks precharged")
            earliest = max(earliest, state.last_pre_ns + t.trp_ns)
        issue = self._claim_bus(earliest)
        self._ref_busy_until_ns = issue + t.trfc_ns
        self._now_ns = issue
        self._trace.append(CommandKind.REF, None, issue)
        return issue

    def read_data_available_ns(self, read_issue_ns: float) -> float:
        """Time the last beat of a READ's data arrives at the controller."""
        t = self._timings
        return read_issue_ns + t.tcl_ns + t.burst_ns

    def idle_until(self, t_ns: float) -> None:
        """Advance the engine clock without issuing commands."""
        if t_ns < self._now_ns:
            raise ValueError(
                f"cannot move time backwards: {t_ns} < {self._now_ns}"
            )
        self._now_ns = t_ns
        self._bus_free_ns = max(self._bus_free_ns, t_ns)
