"""Small unit-conversion helpers used throughout the library.

The DRAM literature mixes nanoseconds, clock cycles, megabits per second
and joules freely; these helpers keep conversions explicit and in one
place.  All simulator-internal times are kept in **nanoseconds** (floats)
and converted to cycles only at the memory-controller boundary.
"""

from __future__ import annotations

import math

#: Nanoseconds per second.
NS_PER_S = 1e9

#: Bits per megabit (decimal, as used for Mb/s figures in the paper).
BITS_PER_MEGABIT = 1e6


def ns_to_cycles(time_ns: float, clock_mhz: float) -> int:
    """Return the smallest cycle count covering ``time_ns`` at ``clock_mhz``.

    DRAM timing parameters are specified in nanoseconds but enforced by
    the controller in whole clock cycles, always rounding up.
    """
    if clock_mhz <= 0:
        raise ValueError(f"clock_mhz must be positive, got {clock_mhz}")
    return max(0, math.ceil(time_ns * clock_mhz / 1e3 - 1e-9))


def cycles_to_ns(cycles: float, clock_mhz: float) -> float:
    """Convert a cycle count at ``clock_mhz`` into nanoseconds."""
    if clock_mhz <= 0:
        raise ValueError(f"clock_mhz must be positive, got {clock_mhz}")
    return cycles * 1e3 / clock_mhz


def bits_per_ns_to_mbps(bits_per_ns: float) -> float:
    """Convert a rate in bits/ns into the paper's Mb/s (1e6 bits/s)."""
    return bits_per_ns * NS_PER_S / BITS_PER_MEGABIT


def mbps(bits: float, time_ns: float) -> float:
    """Throughput in Mb/s for ``bits`` generated over ``time_ns``."""
    if time_ns <= 0:
        raise ValueError(f"time_ns must be positive, got {time_ns}")
    return bits_per_ns_to_mbps(bits / time_ns)


def joules_per_bit(total_joules: float, bits: int) -> float:
    """Energy efficiency in J/bit; raises on a zero-bit denominator."""
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    return total_joules / bits


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert Celsius to Kelvin (used by the thermal-noise model)."""
    return temp_c + 273.15
