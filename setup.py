"""Setup shim: enables legacy editable installs on offline hosts.

The project metadata lives in pyproject.toml; this file exists so
``pip install -e . --no-use-pep517`` works without the ``wheel`` package.
"""
from setuptools import setup

setup()
